//! DMA frame-forwarding engine: a gateway between two CAN wires.
//!
//! A [`Dma`] device bridges two [`SharedCanBus`] wires without per-frame
//! CPU work: the guest programs a routing table once (id-range match,
//! optional id rewrite, direction, optional IRQ on forward) and the
//! engine then examines every delivery completing on either wire and
//! re-enqueues matches on the other wire after a store-and-forward
//! latency — all from device ticks, never from guest instructions. A
//! gateway ECU is typically a machine that programs its routes and
//! parks in a `wfi` loop; its core sleeps while the engine forwards.
//!
//! # Register map (offsets from [`crate::DMA_BASE`])
//!
//! Global registers:
//!
//! | off  | name          | read                    | write                  |
//! |------|---------------|-------------------------|------------------------|
//! | 0x00 | CTRL          | bit0 enable             | same                   |
//! | 0x04 | `FWD_LATENCY` | store-and-forward cycles| same                   |
//! | 0x08 | FORWARDED     | total frames forwarded  | —                      |
//! | 0x0C | DROPPED       | `NO_ROUTE` + `QUEUE_OVERFLOW` (legacy sum) | —   |
//! | 0x10 | `NO_ROUTE`    | frames no route matched | —                      |
//! | 0x14 | `QUEUE_OVERFLOW` | frames lost to a full forward queue | —       |
//! | 0x18 | `FWD_CAPACITY`| per-direction queue depth (reset 8) | same (min 1) |
//! | 0x1C | `FWD_POLICY`  | 0 drop-newest / 1 drop-lowest-priority | same    |
//!
//! [`DMA_ROUTES`] route slots at `0x40 + i * 0x20`:
//!
//! | off  | name    | read               | write                           |
//! |------|---------|--------------------|---------------------------------|
//! | +0x00| CTRL    | bits as written    | bit0 enable, bit1 direction (0 = A→B, 1 = B→A), bit2 IRQ on forward |
//! | +0x04| LO      | id-range low       | same (raw id, inclusive)        |
//! | +0x08| HI      | id-range high      | same (raw id, inclusive)        |
//! | +0x0C| REWRITE | as written         | bit31 enable; low 29 bits: forwarded id = base + (id − LO) |
//! | +0x10| COUNT   | frames via route   | —                               |
//!
//! # Timing, the forward queue, and determinism
//!
//! A delivery completing on wire A at core cycle `T` is examined by the
//! engine's tick at exactly `T` (the scheduler re-arms the tick through
//! [`Dma::note_wire_progress`], like a CAN controller's RX path) and, on
//! a route match, handed to that direction's **bounded forward queue**.
//! The engine keeps at most one forward in flight per direction: the
//! head of an idle direction's queue is enqueued on the target wire
//! immediately at `T + FWD_LATENCY`, and each subsequent forward is
//! dispatched when the engine observes its previous forward complete on
//! the target wire (at `max(arrival + FWD_LATENCY, completion)` — both
//! exact wire stamps, never "whenever the tick ran"). A route match
//! arriving at a full queue is resolved by the `FWD_POLICY` register:
//! **drop-newest** (0, reset) discards the arriving frame;
//! **drop-lowest-priority** (1) evicts whichever frame — queued or
//! arriving — would lose CAN arbitration to all the others. Either way
//! the loss is counted in `QUEUE_OVERFLOW`, separately from the
//! `NO_ROUTE` count of frames no route matched (the legacy `DROPPED`
//! register reads their sum).
//!
//! Because deliveries materialized at a scheduler boundary always
//! complete at or after that boundary, a forward's enqueue time is never
//! in the past of the target wire, so multi-hop timing — including
//! queue occupancy and overflow decisions — is bit-identical for any
//! quantum size or node order. Error frames are protocol signalling,
//! not payloads: the engine never routes them, and an *own* forward
//! aborted by an error frame stays in flight (the wire retransmits it
//! automatically; the next queued forward waits its turn). The engine
//! stops when its host machine halts (devices of a halted node are no
//! longer ticked) — a powered-off gateway forwards nothing; and a
//! gateway node driven to bus-off stalls its direction until recovery
//! (its in-flight forward was purged with the node's queue).

use std::any::Any;
use std::collections::VecDeque;

use alia_can::{CanFrame, CanId, DeliveryKind};

use crate::bus::{Device, DeviceCtx};
use crate::devices::SharedCanBus;

/// Number of route slots in a [`Dma`] engine's table.
pub const DMA_ROUTES: usize = 8;

/// Static configuration of a [`Dma`] gateway device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Window base address (default [`crate::DMA_BASE`]).
    pub base: u32,
    /// IRQ line raised when a route with the IRQ-on-forward bit
    /// forwards a frame (stamped at the forward's enqueue cycle).
    pub irq: u32,
    /// The engine's CAN node id on wire A (must be unique there).
    pub node_a: usize,
    /// The engine's CAN node id on wire B (must be unique there).
    pub node_b: usize,
    /// Reset value of the `FWD_LATENCY` register: store-and-forward
    /// latency in core cycles between a frame completing on one wire
    /// and its forward being enqueued on the other.
    pub latency: u64,
}

impl Default for DmaConfig {
    fn default() -> DmaConfig {
        DmaConfig { base: crate::DMA_BASE, irq: 3, node_a: 0, node_b: 0, latency: 64 }
    }
}

/// One slot of the routing table.
#[derive(Debug, Clone, Copy, Default)]
struct Route {
    enabled: bool,
    /// `false`: matches deliveries on wire A, forwards to wire B.
    /// `true`: the reverse.
    b_to_a: bool,
    irq_on_forward: bool,
    lo: u32,
    hi: u32,
    /// Raw REWRITE register (bit31 = rewrite enable).
    rewrite: u32,
    count: u64,
}

impl Route {
    fn ctrl_word(self) -> u32 {
        u32::from(self.enabled)
            | u32::from(self.b_to_a) << 1
            | u32::from(self.irq_on_forward) << 2
    }
}

/// One frame waiting in a direction's forward queue.
#[derive(Debug, Clone, Copy)]
struct QueuedForward {
    /// Earliest dispatch cycle: the source delivery's completion plus
    /// the store-and-forward latency.
    ready_at: u64,
    frame: CanFrame,
    irq_on_forward: bool,
    /// Matched route index (trace reporting).
    route: u32,
}

/// The DMA frame-forwarding engine (see the module docs for the
/// register map and the timing contract).
#[derive(Debug, Clone)]
pub struct Dma {
    config: DmaConfig,
    wires: [SharedCanBus; 2],
    enabled: bool,
    latency: u64,
    routes: [Route; DMA_ROUTES],
    /// Deliveries examined so far on each wire (including its own
    /// forwards completing, which are skipped but must be consumed).
    seen: [usize; 2],
    /// Bounded forward queue per direction, indexed by *target* side.
    fwd_queue: [VecDeque<QueuedForward>; 2],
    /// Whether a forward is on (or queued for) the target wire and not
    /// yet observed complete, per target side.
    in_flight: [bool; 2],
    fwd_capacity: u32,
    fwd_policy: u32,
    forwarded: u64,
    no_route: u64,
    queue_overflows: u64,
    /// Next cycle the engine wants a tick (`u64::MAX` = idle).
    poll_at: u64,
    /// Structured event tracer (forwards and drops, stamped on the
    /// core-cycle clock). The engine processes deliveries at their
    /// exact arrival cycles (`poll_at` re-arms per arrival), so the
    /// recording order is schedule-independent.
    tracer: alia_obs::Tracer,
}

impl Dma {
    /// Builds a gateway engine between `wire_a` and `wire_b`. The engine
    /// starts disabled with an empty routing table; the guest (or host)
    /// programs and enables it through the register file.
    #[must_use]
    pub fn new(config: DmaConfig, wire_a: &SharedCanBus, wire_b: &SharedCanBus) -> Dma {
        assert!(
            !wire_a.same_wire(wire_b),
            "a DMA gateway must bridge two distinct wires"
        );
        Dma {
            latency: config.latency,
            config,
            wires: [wire_a.clone(), wire_b.clone()],
            enabled: false,
            routes: [Route::default(); DMA_ROUTES],
            seen: [0; 2],
            fwd_queue: [VecDeque::new(), VecDeque::new()],
            in_flight: [false; 2],
            fwd_capacity: 8,
            fwd_policy: 0,
            forwarded: 0,
            no_route: 0,
            queue_overflows: 0,
            poll_at: u64::MAX,
            tracer: alia_obs::Tracer::default(),
        }
    }

    /// The engine's structured event tracer.
    #[must_use]
    pub fn tracer(&self) -> &alia_obs::Tracer {
        &self.tracer
    }

    /// Sets the tracing category mask (see [`alia_obs::category`]).
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.tracer.set_mask(mask);
    }

    /// Publishes the engine's counters into `reg` under `prefix`
    /// (copies of the same values the legacy accessors report).
    pub fn publish_metrics(&self, reg: &mut alia_obs::metrics::Registry, prefix: &str) {
        reg.counter(&format!("{prefix}dma.forwarded"), self.forwarded);
        reg.counter(&format!("{prefix}dma.no_route"), self.no_route);
        reg.counter(&format!("{prefix}dma.queue_overflows"), self.queue_overflows);
        for (i, r) in self.routes.iter().enumerate() {
            if r.count > 0 {
                reg.counter(&format!("{prefix}dma.route{i}.count"), r.count);
            }
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Wire A's handle.
    #[must_use]
    pub fn wire_a(&self) -> &SharedCanBus {
        &self.wires[0]
    }

    /// Wire B's handle.
    #[must_use]
    pub fn wire_b(&self) -> &SharedCanBus {
        &self.wires[1]
    }

    /// Rebinds both wire attachments onto their forked copies: `from`
    /// and `to` are parallel wire sets (the original system's and the
    /// fork's), matched by identity. [`crate::System::fork`]'s device
    /// walk for gateway engines.
    pub(crate) fn rebind_wires(&mut self, from: &[SharedCanBus], to: &[SharedCanBus]) {
        for w in &mut self.wires {
            if let Some(i) = from.iter().position(|x| x.same_wire(w)) {
                *w = to[i].clone();
            }
        }
    }

    /// The engine's node id on the given side (0 = wire A, 1 = wire B).
    #[must_use]
    pub fn node_on(&self, side: usize) -> usize {
        if side == 0 { self.config.node_a } else { self.config.node_b }
    }

    /// Total frames forwarded across all routes.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Total frames lost: no matching route plus forward-queue overflow
    /// (the legacy `DROPPED` register reads this sum).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.no_route + self.queue_overflows
    }

    /// Frames examined while enabled that matched no route.
    #[must_use]
    pub fn no_route(&self) -> u64 {
        self.no_route
    }

    /// Frames lost because a direction's forward queue was full (under
    /// either overflow policy, exactly one frame is lost per overflow).
    #[must_use]
    pub fn queue_overflows(&self) -> u64 {
        self.queue_overflows
    }

    /// Frames forwarded through route `i`.
    #[must_use]
    pub fn route_count(&self, i: usize) -> u64 {
        self.routes[i].count
    }

    /// Whether the engine still has unexamined deliveries on either
    /// wire — the scheduler's "could put traffic on a wire soon" veto,
    /// the analogue of [`crate::CanController::tx_armed`].
    #[must_use]
    pub fn armed(&self) -> bool {
        self.wires[0].deliveries_len() > self.seen[0]
            || self.wires[1].deliveries_len() > self.seen[1]
            || !self.fwd_queue[0].is_empty()
            || !self.fwd_queue[1].is_empty()
    }

    /// Called by the system scheduler after it advanced the wires:
    /// re-arms the engine's tick at the arrival cycle of the first
    /// delivery it has not yet examined on either side. The caller must
    /// follow up with [`crate::Bus::refresh_next_event`].
    pub fn note_wire_progress(&mut self) {
        for (side, wire) in self.wires.iter().enumerate() {
            if let Some(d) = wire.delivery(self.seen[side]) {
                let arrival = d.completed_at.saturating_mul(wire.cycles_per_bit().max(1));
                self.poll_at = self.poll_at.min(arrival);
            }
        }
    }

    /// Examines deliveries on both wires up to core cycle `now`,
    /// forwarding route matches onto the opposite wire at their exact
    /// `arrival + FWD_LATENCY` cycle.
    fn advance(&mut self, now: u64, ctx: &mut DeviceCtx<'_>) {
        self.poll_at = u64::MAX;
        for side in 0..2 {
            loop {
                let wire = &self.wires[side];
                let Some(d) = wire.delivery(self.seen[side]) else { break };
                let arrival = d.completed_at.saturating_mul(wire.cycles_per_bit().max(1));
                if arrival > now {
                    // Completion still in the future of the core clock;
                    // re-tick exactly then.
                    self.poll_at = self.poll_at.min(arrival);
                    break;
                }
                self.seen[side] += 1;
                if d.node == self.node_on(side) {
                    // The engine's own forward: never routed back (the
                    // gateway does not echo). A completed *data* frame
                    // frees the direction for the next queued forward; an
                    // error frame keeps it in flight (the wire is already
                    // retransmitting the aborted forward).
                    if d.kind == DeliveryKind::Data {
                        self.in_flight[side] = false;
                        self.dispatch(side, arrival, ctx);
                    }
                    continue;
                }
                if d.kind != DeliveryKind::Data {
                    // Foreign error frames are protocol signalling, not
                    // payloads: consumed, never forwarded.
                    continue;
                }
                if self.enabled {
                    self.forward(side, d.frame, arrival, ctx);
                }
            }
        }
    }

    /// Routes one delivery that completed on `side` at core cycle
    /// `arrival`: first matching route wins (no match counts as
    /// `NO_ROUTE`); the match joins the target direction's bounded
    /// forward queue, subject to the overflow policy.
    fn forward(&mut self, side: usize, frame: CanFrame, arrival: u64, ctx: &mut DeviceCtx<'_>) {
        let raw = frame.id.raw();
        let matches = |r: &Route| {
            r.enabled && r.b_to_a == (side == 1) && r.lo <= raw && raw <= r.hi
        };
        let Some(i) = self.routes.iter().position(matches) else {
            self.no_route += 1;
            self.tracer.record(
                arrival,
                alia_obs::EventKind::DmaDrop { id: raw, reason: alia_obs::DropReason::NoRoute },
            );
            return;
        };
        let route = &mut self.routes[i];
        let out_raw = if route.rewrite & 1 << 31 != 0 {
            (route.rewrite & 0x1FFF_FFFF).wrapping_add(raw - route.lo)
        } else {
            raw
        };
        let id = match frame.id {
            CanId::Standard(_) => CanId::Standard((out_raw & 0x7FF) as u16),
            CanId::Extended(_) => CanId::Extended(out_raw & 0x1FFF_FFFF),
        };
        let out = CanFrame::new(id, &frame.data[..usize::from(frame.dlc.min(8))]);
        route.count += 1;
        let entry = QueuedForward {
            ready_at: arrival.saturating_add(self.latency),
            frame: out,
            irq_on_forward: route.irq_on_forward,
            route: i as u32,
        };
        let target = 1 - side;
        let cap = self.fwd_capacity.max(1) as usize;
        if self.fwd_queue[target].len() >= cap {
            self.queue_overflows += 1;
            // The overflow event carries the arriving frame's outgoing
            // id even under drop-lowest-priority (where the evicted
            // frame may be an older queued one): it names the overflow
            // occurrence, not the eviction victim.
            self.tracer.record(
                arrival,
                alia_obs::EventKind::DmaDrop {
                    id: out_raw,
                    reason: alia_obs::DropReason::QueueOverflow,
                },
            );
            if self.fwd_policy == 1 {
                // Drop-lowest-priority: evict whichever frame — queued
                // or arriving — loses CAN arbitration to all the others.
                let worst = self.fwd_queue[target]
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        if a.frame.id.wins_over(b.frame.id) {
                            std::cmp::Ordering::Less
                        } else {
                            std::cmp::Ordering::Greater
                        }
                    })
                    .map(|(i, f)| (i, f.frame.id));
                if let Some((wi, wid)) = worst {
                    if entry.frame.id.wins_over(wid) {
                        self.fwd_queue[target].remove(wi);
                        self.fwd_queue[target].push_back(entry);
                    }
                }
                // else: the arriving frame is itself the lowest priority
                // (or ties) — it is the one dropped.
            }
            // Drop-newest (policy 0): the arriving frame is discarded.
        } else {
            self.fwd_queue[target].push_back(entry);
        }
        self.dispatch(target, arrival, ctx);
    }

    /// Puts the head of `target`'s forward queue on the wire, if the
    /// direction is idle: enqueued at `max(ready_at, floor)` — `floor`
    /// is a deterministic wire stamp (the completion that freed the
    /// direction, or the arrival that filled an empty queue), so
    /// dispatch cycles never depend on when the tick happened to run.
    fn dispatch(&mut self, target: usize, floor: u64, ctx: &mut DeviceCtx<'_>) {
        if self.in_flight[target] {
            return;
        }
        let Some(f) = self.fwd_queue[target].pop_front() else { return };
        let at = f.ready_at.max(floor);
        let wire = &self.wires[target];
        wire.enqueue(at / wire.cycles_per_bit().max(1), self.node_on(target), f.frame);
        self.in_flight[target] = true;
        self.forwarded += 1;
        self.tracer
            .record(at, alia_obs::EventKind::DmaForward { route: f.route, id: f.frame.id.raw() });
        if f.irq_on_forward {
            ctx.signals.raise_irq_at(self.config.irq, at);
        }
    }
}

impl Device for Dma {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn read32(&mut self, off: u32, ctx: &mut DeviceCtx<'_>) -> u32 {
        let _ = ctx;
        match off & !3 {
            0x00 => u32::from(self.enabled),
            0x04 => self.latency as u32,
            0x08 => self.forwarded as u32,
            0x0C => self.dropped() as u32,
            0x10 => self.no_route as u32,
            0x14 => self.queue_overflows as u32,
            0x18 => self.fwd_capacity,
            0x1C => self.fwd_policy,
            o if (0x40..0x40 + 0x20 * DMA_ROUTES as u32).contains(&o) => {
                let r = &self.routes[((o - 0x40) / 0x20) as usize];
                match o & 0x1C {
                    0x00 => r.ctrl_word(),
                    0x04 => r.lo,
                    0x08 => r.hi,
                    0x0C => r.rewrite,
                    0x10 => r.count as u32,
                    _ => 0,
                }
            }
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, value: u32, ctx: &mut DeviceCtx<'_>) {
        let _ = ctx;
        match off & !3 {
            0x00 => self.enabled = value & 1 != 0,
            0x04 => self.latency = u64::from(value),
            0x18 => self.fwd_capacity = value.max(1),
            0x1C => self.fwd_policy = value & 1,
            o if (0x40..0x40 + 0x20 * DMA_ROUTES as u32).contains(&o) => {
                let r = &mut self.routes[((o - 0x40) / 0x20) as usize];
                match o & 0x1C {
                    0x00 => {
                        r.enabled = value & 1 != 0;
                        r.b_to_a = value & 2 != 0;
                        r.irq_on_forward = value & 4 != 0;
                    }
                    0x04 => r.lo = value,
                    0x08 => r.hi = value,
                    0x0C => r.rewrite = value,
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn tick(&mut self, ctx: &mut DeviceCtx<'_>) {
        let now = ctx.now;
        self.advance(now, ctx);
    }

    fn next_event(&self) -> Option<u64> {
        (self.poll_at != u64::MAX).then_some(self.poll_at)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusSignals;
    use crate::devices::{CanConfig, CanController};

    fn ctx(now: u64, signals: &mut BusSignals) -> DeviceCtx<'_> {
        DeviceCtx { now, active_irq: 0, signals }
    }

    /// Programs route `i` host-side through the register file.
    fn program_route(d: &mut Dma, i: u32, ctrl: u32, lo: u32, hi: u32, rewrite: u32) {
        let mut s = BusSignals::default();
        let base = 0x40 + i * 0x20;
        d.write32(base + 0x04, lo, &mut ctx(0, &mut s));
        d.write32(base + 0x08, hi, &mut ctx(0, &mut s));
        d.write32(base + 0x0C, rewrite, &mut ctx(0, &mut s));
        d.write32(base, ctrl, &mut ctx(0, &mut s));
    }

    #[test]
    fn forwards_and_rewrites_across_wires() {
        // A source controller on wire A, a sink on wire B, the engine
        // bridging them. The test plays the scheduler: run the wires,
        // note progress, tick at the armed cycles.
        let wa = SharedCanBus::named("a", 4);
        let wb = SharedCanBus::named("b", 2);
        let mut src =
            CanController::attached(CanConfig { node: 0, ..CanConfig::default() }, &wa);
        let mut sink =
            CanController::attached(CanConfig { node: 1, ..CanConfig::default() }, &wb);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 100, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        // Route 0: ids 0x100..=0x17F from A to B, rewritten to 0x300+.
        program_route(&mut dma, 0, 0b001, 0x100, 0x17F, 1 << 31 | 0x300);
        dma.write32(0, 1, &mut ctx(0, &mut s)); // global enable
        src.write32(0, 0x105, &mut ctx(0, &mut s)); // TX_ID
        src.write32(4, 2, &mut ctx(0, &mut s)); // TX_DLC
        src.write32(8, 0xBEEF, &mut ctx(0, &mut s)); // TX_DATA0
        src.write32(16, 1, &mut ctx(0, &mut s)); // TX_GO
        // Scheduler boundary: wire A arbitrates, the engine is armed at
        // the delivery's arrival cycle.
        wa.run_to_cycle(wa.min_quantum_cycles());
        dma.note_wire_progress();
        let arrival = dma.next_event().expect("delivery to examine");
        dma.tick(&mut ctx(arrival, &mut s));
        assert_eq!(dma.forwarded(), 1);
        assert_eq!(dma.route_count(0), 1);
        assert_eq!(dma.dropped(), 0);
        assert_eq!(wb.pending(), 1, "forward enqueued on wire B");
        // Next boundary: wire B transmits the forward.
        wb.run_to_cycle(arrival + 100 + wb.min_quantum_cycles() + wb.cycles_per_bit());
        let fwd = wb.delivery(0).expect("forward transmitted");
        assert_eq!(fwd.frame.id.raw(), 0x305, "rewritten: 0x300 + (0x105 - 0x100)");
        assert_eq!(fwd.node, 6, "sent as the engine's wire-B node");
        assert!(
            fwd.enqueued_at >= (arrival + 100) / wb.cycles_per_bit(),
            "store-and-forward latency respected"
        );
        // The sink receives it; the engine sees its own forward complete
        // on wire B and does not route it back.
        sink.note_wire_progress();
        let at = sink.next_event().expect("sink armed");
        sink.tick(&mut ctx(at, &mut s));
        assert_eq!(sink.rx_count(), 1);
        assert_eq!(sink.read32(24, &mut ctx(at, &mut s)), 0x305);
        assert_eq!(sink.read32(32, &mut ctx(at, &mut s)), 0xBEEF);
        dma.note_wire_progress();
        let own = dma.next_event().expect("own forward to consume");
        dma.tick(&mut ctx(own, &mut s));
        assert_eq!(dma.forwarded(), 1, "no echo of its own forward");
        assert!(!dma.armed(), "everything examined");
    }

    #[test]
    fn unmatched_frames_drop_and_direction_is_honoured() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 0, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        // Route 0 only matches B->A traffic in 0x200..=0x2FF.
        program_route(&mut dma, 0, 0b011, 0x200, 0x2FF, 0);
        dma.write32(0, 1, &mut ctx(0, &mut s));
        // An A-side frame in that range matches nothing (wrong side).
        wa.enqueue(0, 0, CanFrame::new(CanId::Standard(0x210), &[1]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.dropped(), 1);
        assert_eq!(dma.forwarded(), 0);
        // A B-side frame in range forwards to A without rewrite.
        wb.enqueue(0, 0, CanFrame::new(CanId::Standard(0x210), &[2]));
        wb.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.forwarded(), 1);
        assert_eq!(wa.pending(), 1);
        wa.run_to_cycle(400);
        let fwd = wa.delivery(1).expect("forwarded onto wire A");
        assert_eq!(fwd.frame.id.raw(), 0x210, "no rewrite configured");
        assert_eq!(fwd.node, 5);
    }

    #[test]
    fn disabled_engine_consumes_but_never_forwards() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(DmaConfig::default(), &wa, &wb);
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b001, 0, 0x7FF, 0);
        // Global enable left off.
        wa.enqueue(0, 1, CanFrame::new(CanId::Standard(0x100), &[3]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.forwarded(), 0);
        assert_eq!(dma.dropped(), 0, "disabled: not even counted as dropped");
        assert_eq!(wb.pending(), 0);
        assert!(!dma.armed(), "deliveries are still consumed while disabled");
    }

    #[test]
    fn irq_on_forward_is_stamped_at_the_forward_cycle() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { irq: 7, node_a: 5, node_b: 6, latency: 250, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b101, 0, 0x7FF, 0); // enable | A->B | irq
        dma.write32(0, 1, &mut ctx(0, &mut s));
        wa.enqueue(0, 1, CanFrame::new(CanId::Standard(0x42), &[4]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        let arrival = dma.next_event().unwrap();
        dma.tick(&mut ctx(arrival, &mut s));
        assert_eq!(s.timed_irqs, vec![(7, arrival + 250)]);
    }

    #[test]
    fn drop_counters_split_no_route_vs_queue_overflow() {
        // Regression for the DROPPED split: NO_ROUTE and QUEUE_OVERFLOW
        // count separately, and the legacy 0x0C register reads their sum.
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 0, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b001, 0x100, 0x1FF, 0);
        dma.write32(0, 1, &mut ctx(0, &mut s));
        dma.write32(0x18, 1, &mut ctx(0, &mut s)); // FWD_CAPACITY = 1
        assert_eq!(dma.read32(0x18, &mut ctx(0, &mut s)), 1);
        // Three route matches back to back (dispatch one, queue one,
        // overflow one — drop-newest) plus one unroutable id.
        for (k, id) in [0x100u16, 0x101, 0x102, 0x400].iter().enumerate() {
            wa.enqueue(k as u64 * 200, 0, CanFrame::new(CanId::Standard(*id), &[k as u8]));
        }
        wa.run_to_cycle(2_000);
        dma.note_wire_progress();
        dma.tick(&mut ctx(2_000, &mut s));
        assert_eq!(dma.forwarded(), 1, "one in flight");
        assert_eq!(dma.no_route(), 1, "0x400 matched no route");
        assert_eq!(dma.queue_overflows(), 1, "0x102 hit the full queue");
        assert_eq!(dma.dropped(), 2);
        assert_eq!(dma.read32(0x10, &mut ctx(2_000, &mut s)), 1, "NO_ROUTE");
        assert_eq!(dma.read32(0x14, &mut ctx(2_000, &mut s)), 1, "QUEUE_OVERFLOW");
        assert_eq!(dma.read32(0x0C, &mut ctx(2_000, &mut s)), 2, "legacy DROPPED = sum");
        assert!(dma.armed(), "a queued forward keeps the engine armed");
        // The in-flight forward completes on B; the queued one follows.
        wb.run_to_cycle(4_000);
        dma.note_wire_progress();
        dma.tick(&mut ctx(4_000, &mut s));
        wb.run_to_cycle(8_000);
        assert_eq!(dma.forwarded(), 2, "queued forward dispatched after the first");
        let ids: Vec<u32> = (0..2).map(|i| wb.delivery(i).unwrap().frame.id.raw()).collect();
        assert_eq!(ids, vec![0x100, 0x101], "0x102 was the one lost");
    }

    #[test]
    fn drop_lowest_priority_policy_evicts_the_weakest() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 0, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b001, 0x000, 0x7FF, 0);
        dma.write32(0, 1, &mut ctx(0, &mut s));
        dma.write32(0x18, 1, &mut ctx(0, &mut s)); // FWD_CAPACITY = 1
        dma.write32(0x1C, 1, &mut ctx(0, &mut s)); // drop-lowest-priority
        // 0x300 dispatches; 0x180 queues; 0x110 (highest priority)
        // arrives at the full queue and evicts 0x180; then 0x200 arrives
        // and is itself the weakest — dropped.
        for (k, id) in [0x300u16, 0x180, 0x110, 0x200].iter().enumerate() {
            wa.enqueue(k as u64 * 200, 0, CanFrame::new(CanId::Standard(*id), &[k as u8]));
        }
        wa.run_to_cycle(2_000);
        dma.note_wire_progress();
        dma.tick(&mut ctx(2_000, &mut s));
        assert_eq!(dma.queue_overflows(), 2, "0x180 evicted, 0x200 rejected");
        wb.run_to_cycle(4_000);
        dma.note_wire_progress();
        dma.tick(&mut ctx(4_000, &mut s));
        wb.run_to_cycle(8_000);
        assert_eq!(dma.forwarded(), 2);
        let ids: Vec<u32> = (0..2).map(|i| wb.delivery(i).unwrap().frame.id.raw()).collect();
        assert_eq!(ids, vec![0x300, 0x110], "the high-priority newcomer survived");
    }

    #[test]
    #[should_panic(expected = "two distinct wires")]
    fn same_wire_on_both_sides_is_rejected() {
        let w = SharedCanBus::new(4);
        let _ = Dma::new(DmaConfig::default(), &w, &w.clone());
    }
}
