//! DMA frame-forwarding engine: a gateway between two CAN wires.
//!
//! A [`Dma`] device bridges two [`SharedCanBus`] wires without per-frame
//! CPU work: the guest programs a routing table once (id-range match,
//! optional id rewrite, direction, optional IRQ on forward) and the
//! engine then examines every delivery completing on either wire and
//! re-enqueues matches on the other wire after a store-and-forward
//! latency — all from device ticks, never from guest instructions. A
//! gateway ECU is typically a machine that programs its routes and
//! parks in a `wfi` loop; its core sleeps while the engine forwards.
//!
//! # Register map (offsets from [`crate::DMA_BASE`])
//!
//! Global registers:
//!
//! | off  | name          | read                    | write                  |
//! |------|---------------|-------------------------|------------------------|
//! | 0x00 | CTRL          | bit0 enable             | same                   |
//! | 0x04 | `FWD_LATENCY` | store-and-forward cycles| same                   |
//! | 0x08 | FORWARDED     | total frames forwarded  | —                      |
//! | 0x0C | DROPPED       | frames no route matched | —                      |
//!
//! [`DMA_ROUTES`] route slots at `0x40 + i * 0x20`:
//!
//! | off  | name    | read               | write                           |
//! |------|---------|--------------------|---------------------------------|
//! | +0x00| CTRL    | bits as written    | bit0 enable, bit1 direction (0 = A→B, 1 = B→A), bit2 IRQ on forward |
//! | +0x04| LO      | id-range low       | same (raw id, inclusive)        |
//! | +0x08| HI      | id-range high      | same (raw id, inclusive)        |
//! | +0x0C| REWRITE | as written         | bit31 enable; low 29 bits: forwarded id = base + (id − LO) |
//! | +0x10| COUNT   | frames via route   | —                               |
//!
//! # Timing and determinism
//!
//! A delivery completing on wire A at core cycle `T` is examined by the
//! engine's tick at exactly `T` (the scheduler re-arms the tick through
//! [`Dma::note_wire_progress`], like a CAN controller's RX path) and, on
//! a route match, enqueued on wire B at `T + FWD_LATENCY` — an exact
//! cycle stamp, never "whenever the tick ran". Because deliveries
//! materialized at a scheduler boundary always complete at or after that
//! boundary, the forward's enqueue time is never in the past of the
//! target wire, so multi-hop timing is bit-identical for any quantum
//! size or node order. The engine stops when its host machine halts
//! (devices of a halted node are no longer ticked) — a powered-off
//! gateway forwards nothing.

use std::any::Any;

use alia_can::{CanFrame, CanId};

use crate::bus::{Device, DeviceCtx};
use crate::devices::SharedCanBus;

/// Number of route slots in a [`Dma`] engine's table.
pub const DMA_ROUTES: usize = 8;

/// Static configuration of a [`Dma`] gateway device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaConfig {
    /// Window base address (default [`crate::DMA_BASE`]).
    pub base: u32,
    /// IRQ line raised when a route with the IRQ-on-forward bit
    /// forwards a frame (stamped at the forward's enqueue cycle).
    pub irq: u32,
    /// The engine's CAN node id on wire A (must be unique there).
    pub node_a: usize,
    /// The engine's CAN node id on wire B (must be unique there).
    pub node_b: usize,
    /// Reset value of the `FWD_LATENCY` register: store-and-forward
    /// latency in core cycles between a frame completing on one wire
    /// and its forward being enqueued on the other.
    pub latency: u64,
}

impl Default for DmaConfig {
    fn default() -> DmaConfig {
        DmaConfig { base: crate::DMA_BASE, irq: 3, node_a: 0, node_b: 0, latency: 64 }
    }
}

/// One slot of the routing table.
#[derive(Debug, Clone, Copy, Default)]
struct Route {
    enabled: bool,
    /// `false`: matches deliveries on wire A, forwards to wire B.
    /// `true`: the reverse.
    b_to_a: bool,
    irq_on_forward: bool,
    lo: u32,
    hi: u32,
    /// Raw REWRITE register (bit31 = rewrite enable).
    rewrite: u32,
    count: u64,
}

impl Route {
    fn ctrl_word(self) -> u32 {
        u32::from(self.enabled)
            | u32::from(self.b_to_a) << 1
            | u32::from(self.irq_on_forward) << 2
    }
}

/// The DMA frame-forwarding engine (see the module docs for the
/// register map and the timing contract).
#[derive(Debug, Clone)]
pub struct Dma {
    config: DmaConfig,
    wires: [SharedCanBus; 2],
    enabled: bool,
    latency: u64,
    routes: [Route; DMA_ROUTES],
    /// Deliveries examined so far on each wire (including its own
    /// forwards completing, which are skipped but must be consumed).
    seen: [usize; 2],
    forwarded: u64,
    dropped: u64,
    /// Next cycle the engine wants a tick (`u64::MAX` = idle).
    poll_at: u64,
}

impl Dma {
    /// Builds a gateway engine between `wire_a` and `wire_b`. The engine
    /// starts disabled with an empty routing table; the guest (or host)
    /// programs and enables it through the register file.
    #[must_use]
    pub fn new(config: DmaConfig, wire_a: &SharedCanBus, wire_b: &SharedCanBus) -> Dma {
        assert!(
            !wire_a.same_wire(wire_b),
            "a DMA gateway must bridge two distinct wires"
        );
        Dma {
            latency: config.latency,
            config,
            wires: [wire_a.clone(), wire_b.clone()],
            enabled: false,
            routes: [Route::default(); DMA_ROUTES],
            seen: [0; 2],
            forwarded: 0,
            dropped: 0,
            poll_at: u64::MAX,
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> DmaConfig {
        self.config
    }

    /// Wire A's handle.
    #[must_use]
    pub fn wire_a(&self) -> &SharedCanBus {
        &self.wires[0]
    }

    /// Wire B's handle.
    #[must_use]
    pub fn wire_b(&self) -> &SharedCanBus {
        &self.wires[1]
    }

    /// The engine's node id on the given side (0 = wire A, 1 = wire B).
    #[must_use]
    pub fn node_on(&self, side: usize) -> usize {
        if side == 0 { self.config.node_a } else { self.config.node_b }
    }

    /// Total frames forwarded across all routes.
    #[must_use]
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Frames examined while enabled that matched no route.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Frames forwarded through route `i`.
    #[must_use]
    pub fn route_count(&self, i: usize) -> u64 {
        self.routes[i].count
    }

    /// Whether the engine still has unexamined deliveries on either
    /// wire — the scheduler's "could put traffic on a wire soon" veto,
    /// the analogue of [`crate::CanController::tx_armed`].
    #[must_use]
    pub fn armed(&self) -> bool {
        self.wires[0].deliveries_len() > self.seen[0]
            || self.wires[1].deliveries_len() > self.seen[1]
    }

    /// Called by the system scheduler after it advanced the wires:
    /// re-arms the engine's tick at the arrival cycle of the first
    /// delivery it has not yet examined on either side. The caller must
    /// follow up with [`crate::Bus::refresh_next_event`].
    pub fn note_wire_progress(&mut self) {
        for (side, wire) in self.wires.iter().enumerate() {
            if let Some(d) = wire.delivery(self.seen[side]) {
                let arrival = d.completed_at.saturating_mul(wire.cycles_per_bit().max(1));
                self.poll_at = self.poll_at.min(arrival);
            }
        }
    }

    /// Examines deliveries on both wires up to core cycle `now`,
    /// forwarding route matches onto the opposite wire at their exact
    /// `arrival + FWD_LATENCY` cycle.
    fn advance(&mut self, now: u64, ctx: &mut DeviceCtx<'_>) {
        self.poll_at = u64::MAX;
        for side in 0..2 {
            loop {
                let wire = &self.wires[side];
                let Some(d) = wire.delivery(self.seen[side]) else { break };
                let arrival = d.completed_at.saturating_mul(wire.cycles_per_bit().max(1));
                if arrival > now {
                    // Completion still in the future of the core clock;
                    // re-tick exactly then.
                    self.poll_at = self.poll_at.min(arrival);
                    break;
                }
                self.seen[side] += 1;
                if d.node == self.node_on(side) {
                    // The engine's own forward completing: never routed
                    // back (the gateway does not echo).
                    continue;
                }
                if self.enabled {
                    self.forward(side, d.frame, arrival, ctx);
                }
            }
        }
    }

    /// Routes one delivery that completed on `side` at core cycle
    /// `arrival`: first matching route wins; no match counts as dropped.
    fn forward(&mut self, side: usize, frame: CanFrame, arrival: u64, ctx: &mut DeviceCtx<'_>) {
        let raw = frame.id.raw();
        let matches = |r: &Route| {
            r.enabled && r.b_to_a == (side == 1) && r.lo <= raw && raw <= r.hi
        };
        let Some(i) = self.routes.iter().position(matches) else {
            self.dropped += 1;
            return;
        };
        let route = &mut self.routes[i];
        let out_raw = if route.rewrite & 1 << 31 != 0 {
            (route.rewrite & 0x1FFF_FFFF).wrapping_add(raw - route.lo)
        } else {
            raw
        };
        let id = match frame.id {
            CanId::Standard(_) => CanId::Standard((out_raw & 0x7FF) as u16),
            CanId::Extended(_) => CanId::Extended(out_raw & 0x1FFF_FFFF),
        };
        let out = CanFrame::new(id, &frame.data[..usize::from(frame.dlc.min(8))]);
        route.count += 1;
        let irq_on_forward = route.irq_on_forward;
        self.forwarded += 1;
        let at = arrival.saturating_add(self.latency);
        let target = &self.wires[1 - side];
        target.enqueue(at / target.cycles_per_bit().max(1), self.node_on(1 - side), out);
        if irq_on_forward {
            ctx.signals.raise_irq_at(self.config.irq, at);
        }
    }
}

impl Device for Dma {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn read32(&mut self, off: u32, ctx: &mut DeviceCtx<'_>) -> u32 {
        let _ = ctx;
        match off & !3 {
            0x00 => u32::from(self.enabled),
            0x04 => self.latency as u32,
            0x08 => self.forwarded as u32,
            0x0C => self.dropped as u32,
            o if (0x40..0x40 + 0x20 * DMA_ROUTES as u32).contains(&o) => {
                let r = &self.routes[((o - 0x40) / 0x20) as usize];
                match o & 0x1C {
                    0x00 => r.ctrl_word(),
                    0x04 => r.lo,
                    0x08 => r.hi,
                    0x0C => r.rewrite,
                    0x10 => r.count as u32,
                    _ => 0,
                }
            }
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, value: u32, ctx: &mut DeviceCtx<'_>) {
        let _ = ctx;
        match off & !3 {
            0x00 => self.enabled = value & 1 != 0,
            0x04 => self.latency = u64::from(value),
            o if (0x40..0x40 + 0x20 * DMA_ROUTES as u32).contains(&o) => {
                let r = &mut self.routes[((o - 0x40) / 0x20) as usize];
                match o & 0x1C {
                    0x00 => {
                        r.enabled = value & 1 != 0;
                        r.b_to_a = value & 2 != 0;
                        r.irq_on_forward = value & 4 != 0;
                    }
                    0x04 => r.lo = value,
                    0x08 => r.hi = value,
                    0x0C => r.rewrite = value,
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn tick(&mut self, ctx: &mut DeviceCtx<'_>) {
        let now = ctx.now;
        self.advance(now, ctx);
    }

    fn next_event(&self) -> Option<u64> {
        (self.poll_at != u64::MAX).then_some(self.poll_at)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusSignals;
    use crate::devices::{CanConfig, CanController};

    fn ctx(now: u64, signals: &mut BusSignals) -> DeviceCtx<'_> {
        DeviceCtx { now, active_irq: 0, signals }
    }

    /// Programs route `i` host-side through the register file.
    fn program_route(d: &mut Dma, i: u32, ctrl: u32, lo: u32, hi: u32, rewrite: u32) {
        let mut s = BusSignals::default();
        let base = 0x40 + i * 0x20;
        d.write32(base + 0x04, lo, &mut ctx(0, &mut s));
        d.write32(base + 0x08, hi, &mut ctx(0, &mut s));
        d.write32(base + 0x0C, rewrite, &mut ctx(0, &mut s));
        d.write32(base, ctrl, &mut ctx(0, &mut s));
    }

    #[test]
    fn forwards_and_rewrites_across_wires() {
        // A source controller on wire A, a sink on wire B, the engine
        // bridging them. The test plays the scheduler: run the wires,
        // note progress, tick at the armed cycles.
        let wa = SharedCanBus::named("a", 4);
        let wb = SharedCanBus::named("b", 2);
        let mut src =
            CanController::attached(CanConfig { node: 0, ..CanConfig::default() }, &wa);
        let mut sink =
            CanController::attached(CanConfig { node: 1, ..CanConfig::default() }, &wb);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 100, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        // Route 0: ids 0x100..=0x17F from A to B, rewritten to 0x300+.
        program_route(&mut dma, 0, 0b001, 0x100, 0x17F, 1 << 31 | 0x300);
        dma.write32(0, 1, &mut ctx(0, &mut s)); // global enable
        src.write32(0, 0x105, &mut ctx(0, &mut s)); // TX_ID
        src.write32(4, 2, &mut ctx(0, &mut s)); // TX_DLC
        src.write32(8, 0xBEEF, &mut ctx(0, &mut s)); // TX_DATA0
        src.write32(16, 1, &mut ctx(0, &mut s)); // TX_GO
        // Scheduler boundary: wire A arbitrates, the engine is armed at
        // the delivery's arrival cycle.
        wa.run_to_cycle(wa.min_quantum_cycles());
        dma.note_wire_progress();
        let arrival = dma.next_event().expect("delivery to examine");
        dma.tick(&mut ctx(arrival, &mut s));
        assert_eq!(dma.forwarded(), 1);
        assert_eq!(dma.route_count(0), 1);
        assert_eq!(dma.dropped(), 0);
        assert_eq!(wb.pending(), 1, "forward enqueued on wire B");
        // Next boundary: wire B transmits the forward.
        wb.run_to_cycle(arrival + 100 + wb.min_quantum_cycles() + wb.cycles_per_bit());
        let fwd = wb.delivery(0).expect("forward transmitted");
        assert_eq!(fwd.frame.id.raw(), 0x305, "rewritten: 0x300 + (0x105 - 0x100)");
        assert_eq!(fwd.node, 6, "sent as the engine's wire-B node");
        assert!(
            fwd.enqueued_at >= (arrival + 100) / wb.cycles_per_bit(),
            "store-and-forward latency respected"
        );
        // The sink receives it; the engine sees its own forward complete
        // on wire B and does not route it back.
        sink.note_wire_progress();
        let at = sink.next_event().expect("sink armed");
        sink.tick(&mut ctx(at, &mut s));
        assert_eq!(sink.rx_count(), 1);
        assert_eq!(sink.read32(24, &mut ctx(at, &mut s)), 0x305);
        assert_eq!(sink.read32(32, &mut ctx(at, &mut s)), 0xBEEF);
        dma.note_wire_progress();
        let own = dma.next_event().expect("own forward to consume");
        dma.tick(&mut ctx(own, &mut s));
        assert_eq!(dma.forwarded(), 1, "no echo of its own forward");
        assert!(!dma.armed(), "everything examined");
    }

    #[test]
    fn unmatched_frames_drop_and_direction_is_honoured() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { node_a: 5, node_b: 6, latency: 0, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        // Route 0 only matches B->A traffic in 0x200..=0x2FF.
        program_route(&mut dma, 0, 0b011, 0x200, 0x2FF, 0);
        dma.write32(0, 1, &mut ctx(0, &mut s));
        // An A-side frame in that range matches nothing (wrong side).
        wa.enqueue(0, 0, CanFrame::new(CanId::Standard(0x210), &[1]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.dropped(), 1);
        assert_eq!(dma.forwarded(), 0);
        // A B-side frame in range forwards to A without rewrite.
        wb.enqueue(0, 0, CanFrame::new(CanId::Standard(0x210), &[2]));
        wb.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.forwarded(), 1);
        assert_eq!(wa.pending(), 1);
        wa.run_to_cycle(400);
        let fwd = wa.delivery(1).expect("forwarded onto wire A");
        assert_eq!(fwd.frame.id.raw(), 0x210, "no rewrite configured");
        assert_eq!(fwd.node, 5);
    }

    #[test]
    fn disabled_engine_consumes_but_never_forwards() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(DmaConfig::default(), &wa, &wb);
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b001, 0, 0x7FF, 0);
        // Global enable left off.
        wa.enqueue(0, 1, CanFrame::new(CanId::Standard(0x100), &[3]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        dma.tick(&mut ctx(dma.next_event().unwrap(), &mut s));
        assert_eq!(dma.forwarded(), 0);
        assert_eq!(dma.dropped(), 0, "disabled: not even counted as dropped");
        assert_eq!(wb.pending(), 0);
        assert!(!dma.armed(), "deliveries are still consumed while disabled");
    }

    #[test]
    fn irq_on_forward_is_stamped_at_the_forward_cycle() {
        let wa = SharedCanBus::named("a", 1);
        let wb = SharedCanBus::named("b", 1);
        let mut dma = Dma::new(
            DmaConfig { irq: 7, node_a: 5, node_b: 6, latency: 250, ..DmaConfig::default() },
            &wa,
            &wb,
        );
        let mut s = BusSignals::default();
        program_route(&mut dma, 0, 0b101, 0, 0x7FF, 0); // enable | A->B | irq
        dma.write32(0, 1, &mut ctx(0, &mut s));
        wa.enqueue(0, 1, CanFrame::new(CanId::Standard(0x42), &[4]));
        wa.run_to_cycle(200);
        dma.note_wire_progress();
        let arrival = dma.next_event().unwrap();
        dma.tick(&mut ctx(arrival, &mut s));
        assert_eq!(s.timed_irqs, vec![(7, arrival + 250)]);
    }

    #[test]
    #[should_panic(expected = "two distinct wires")]
    fn same_wire_on_both_sides_is_rejected() {
        let w = SharedCanBus::new(4);
        let _ = Dma::new(DmaConfig::default(), &w, &w.clone());
    }
}
