//! Interrupt controllers: the paper's two design points.
//!
//! * [`IrqStyle::SoftwarePreamble`] — the classic scheme (§3.2.1): the
//!   core vectors to a handler which must save and restore context in
//!   software (`push`/`pop` instructions in the handler body), and
//!   back-to-back interrupts pay a full exit + entry.
//! * [`IrqStyle::HardwareStacking`] — the Cortex-M3-like scheme: the core
//!   stacks `r0-r3, r12, lr, pc, psr` in hardware while fetching the
//!   vector in parallel, and a pending interrupt at exit is *tail-chained*
//!   without restoring/re-saving context (Figure 4).

/// Interrupt handling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqStyle {
    /// Software preamble/postamble; single shared vector per style of
    /// classic ARM7 cores.
    SoftwarePreamble,
    /// Hardware stacking with tail-chaining, per-interrupt vectors.
    HardwareStacking,
}

/// Timing parameters of the interrupt path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqTiming {
    /// Hardware cycles on entry, before the first handler instruction
    /// (stacking + vector fetch + refill for the hardware scheme; flush +
    /// vector fetch for the software scheme).
    pub entry: u32,
    /// Hardware cycles on exit.
    pub exit: u32,
    /// Cycles for a tail-chained entry (hardware scheme only).
    pub tail_chain: u32,
}

impl IrqTiming {
    /// Cortex-M3-like numbers: 12-cycle entry/exit, 6-cycle tail-chain.
    #[must_use]
    pub fn hardware_default() -> IrqTiming {
        IrqTiming { entry: 12, exit: 12, tail_chain: 6 }
    }

    /// Classic-core numbers: pipeline refill on exception entry (3) plus
    /// the branch executed from the vector slot (3) and one more refill
    /// reaching the handler — the vector holds an *instruction*, not a
    /// pointer, on ARM7-class cores. The dominant cost (the software
    /// preamble) is executed by the handler itself.
    #[must_use]
    pub fn software_default() -> IrqTiming {
        IrqTiming { entry: 7, exit: 3, tail_chain: 0 }
    }
}

/// Per-interrupt configuration and pending state.
#[derive(Debug, Clone)]
pub struct IrqController {
    style: IrqStyle,
    timing: IrqTiming,
    pending: Vec<bool>,
    pending_count: usize,
    priority: Vec<u8>,
    enabled: Vec<bool>,
    /// IRQ number treated as non-maskable (the paper's NMI-on-FIQ for
    /// watchdogs, §3.1.2), if any.
    pub nmi: Option<u32>,
    /// Count of interrupts taken.
    pub taken: u64,
    /// Count of tail-chained entries.
    pub tail_chained: u64,
}

impl IrqController {
    /// Creates a controller with `lines` interrupt lines, all enabled at
    /// priority 128.
    #[must_use]
    pub fn new(style: IrqStyle, lines: usize) -> IrqController {
        let timing = match style {
            IrqStyle::SoftwarePreamble => IrqTiming::software_default(),
            IrqStyle::HardwareStacking => IrqTiming::hardware_default(),
        };
        IrqController {
            style,
            timing,
            pending: vec![false; lines],
            pending_count: 0,
            priority: vec![128; lines],
            enabled: vec![true; lines],
            nmi: None,
            taken: 0,
            tail_chained: 0,
        }
    }

    /// The scheme in use.
    #[must_use]
    pub fn style(&self) -> IrqStyle {
        self.style
    }

    /// The timing parameters.
    #[must_use]
    pub fn timing(&self) -> IrqTiming {
        self.timing
    }

    /// Overrides the timing parameters.
    pub fn set_timing(&mut self, timing: IrqTiming) {
        self.timing = timing;
    }

    /// Number of interrupt lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.pending.len()
    }

    /// Sets a line's priority (lower value = more urgent).
    ///
    /// # Panics
    ///
    /// Panics on an unknown line.
    pub fn set_priority(&mut self, irq: u32, priority: u8) {
        self.priority[irq as usize] = priority;
    }

    /// Enables or disables a line.
    ///
    /// # Panics
    ///
    /// Panics on an unknown line.
    pub fn set_enabled(&mut self, irq: u32, enabled: bool) {
        self.enabled[irq as usize] = enabled;
    }

    /// Asserts (pends) an interrupt.
    ///
    /// # Panics
    ///
    /// Panics on an unknown line.
    pub fn pend(&mut self, irq: u32) {
        if !self.pending[irq as usize] {
            self.pending[irq as usize] = true;
            self.pending_count += 1;
        }
    }

    /// Whether a given line is pending.
    #[must_use]
    pub fn is_pending(&self, irq: u32) -> bool {
        self.pending.get(irq as usize).copied().unwrap_or(false)
    }

    /// Whether *any* line is pending, eligible or not — one load. The
    /// machine's block engine polls this after every instruction: a
    /// pending line (even masked or held off by `handler_depth`) sends
    /// execution back to the per-step path, which owns interrupt entry
    /// and samples eligibility in full. That keeps block-boundary IRQ
    /// sampling bit-identical to per-step sampling without replicating
    /// the priority/NMI/mask logic in the hot loop.
    #[must_use]
    #[inline]
    pub fn any_pending(&self) -> bool {
        self.pending_count != 0
    }

    /// Whether any eligible interrupt is pending. `masked` is the core's
    /// global interrupt-disable (PRIMASK / `cpsid`); the NMI line ignores
    /// it.
    #[must_use]
    pub fn highest_pending(&self, masked: bool) -> Option<u32> {
        // Fast path for the common steady state: nothing pending at all.
        if self.pending_count == 0 {
            return None;
        }
        let mut best: Option<u32> = None;
        for (i, (&p, &e)) in self.pending.iter().zip(&self.enabled).enumerate() {
            if !p || !e {
                continue;
            }
            let is_nmi = self.nmi == Some(i as u32);
            if masked && !is_nmi {
                continue;
            }
            // NMI always wins; otherwise lowest priority value, then lowest
            // line number.
            best = match best {
                None => Some(i as u32),
                Some(b) => {
                    let b_nmi = self.nmi == Some(b);
                    if is_nmi && !b_nmi {
                        Some(i as u32)
                    } else if !is_nmi && b_nmi {
                        Some(b)
                    } else if self.priority[i] < self.priority[b as usize] {
                        Some(i as u32)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best
    }

    /// Acknowledges (takes) an interrupt: clears pending, counts it.
    ///
    /// # Panics
    ///
    /// Panics on an unknown line.
    pub fn acknowledge(&mut self, irq: u32) {
        if self.pending[irq as usize] {
            self.pending[irq as usize] = false;
            self.pending_count -= 1;
        }
        self.taken += 1;
    }

    /// Records a tail-chained entry.
    pub fn note_tail_chain(&mut self) {
        self.tail_chained += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_selection() {
        let mut c = IrqController::new(IrqStyle::HardwareStacking, 8);
        c.pend(3);
        c.pend(5);
        c.set_priority(5, 10);
        c.set_priority(3, 20);
        assert_eq!(c.highest_pending(false), Some(5));
        c.acknowledge(5);
        assert_eq!(c.highest_pending(false), Some(3));
    }

    #[test]
    fn masking_blocks_all_but_nmi() {
        let mut c = IrqController::new(IrqStyle::HardwareStacking, 8);
        c.pend(2);
        assert_eq!(c.highest_pending(true), None);
        c.nmi = Some(7);
        c.pend(7);
        assert_eq!(c.highest_pending(true), Some(7));
        // NMI beats everything even unmasked.
        c.set_priority(2, 0);
        assert_eq!(c.highest_pending(false), Some(7));
    }

    #[test]
    fn disabled_lines_do_not_fire() {
        let mut c = IrqController::new(IrqStyle::SoftwarePreamble, 4);
        c.pend(1);
        c.set_enabled(1, false);
        assert_eq!(c.highest_pending(false), None);
        c.set_enabled(1, true);
        assert_eq!(c.highest_pending(false), Some(1));
    }

    #[test]
    fn default_timings_differ_by_style() {
        let hw = IrqController::new(IrqStyle::HardwareStacking, 1);
        let sw = IrqController::new(IrqStyle::SoftwarePreamble, 1);
        assert!(hw.timing().entry > sw.timing().entry);
        assert_eq!(sw.timing().tail_chain, 0);
    }

    #[test]
    fn tie_breaks_by_line_number() {
        let mut c = IrqController::new(IrqStyle::HardwareStacking, 4);
        c.pend(2);
        c.pend(1);
        assert_eq!(c.highest_pending(false), Some(1));
    }
}
