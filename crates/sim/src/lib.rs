//! # alia-sim — cycle-approximate simulator for the ALIA cores
//!
//! This crate models the three core design points of Lyons, *"Meeting the
//! Embedded Design Needs of Automotive Applications"* (DATE 2005), plus
//! every memory-system mechanism the paper evaluates:
//!
//! * wait-stated **flash with a streaming prefetch buffer** whose stream is
//!   broken by literal-pool data fetches (§2.2),
//! * **caches with parity** and invalidate-refetch / precise-abort soft-
//!   error recovery, and **TCM with ECC hold-and-repair** (§3.1.3),
//! * classic 4 KB-granule and re-engineered **fine-grain MPUs** (§3.1.1),
//! * **software-preamble and hardware-stacking interrupt schemes** with
//!   tail-chaining and an optional NMI line (§3.2.1, §3.1.2),
//! * the **bit-band alias region** for single-store atomic bit access
//!   (§3.2.3),
//! * an 8-slot **flash patch / breakpoint unit** (§3.2.2), and
//! * an **interruptible, re-startable LDM/STM** option (§3.1.2).
//!
//! # Examples
//!
//! ```
//! use alia_isa::{Assembler, IsaMode};
//! use alia_sim::{Machine, StopReason};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new(IsaMode::T2).assemble(
//!     "mov r0, #0
//!      mov r1, #5
//!      loop: add r0, r0, r1
//!      sub r1, r1, #1
//!      cmp r1, #0
//!      bne loop
//!      bkpt #0",
//! )?;
//! let mut m = Machine::m3_like();
//! m.load_flash(0x100, &program.bytes);
//! m.set_pc(0x100);
//! let result = m.run(10_000);
//! assert_eq!(result.reason, StopReason::Bkpt(0));
//! assert_eq!(m.cpu.regs[0], 15);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod cpu;
mod irq;
mod machine;
mod mem;
mod mpu;
mod patch;
mod timing;

pub use cache::{Cache, CacheConfig, CacheStats, Lookup};
pub use cpu::{add_with_carry, barrel_shift, expand_it, Cpu, EXC_RETURN_HW, EXC_RETURN_SW};
pub use irq::{IrqController, IrqStyle, IrqTiming};
pub use machine::{
    IrqLatency, Machine, MachineConfig, RunResult, StopReason, MMIO_IRQ_ACTIVE,
};
pub use mem::{
    Access, Flash, FlashConfig, FlashStats, MemFault, Mmio, Sram, Tcm, BITBAND_BASE, FLASH_BASE,
    MMIO_BASE, MMIO_CYCLES, MMIO_EXIT, MMIO_IRQ_SET, MMIO_TRACE, SRAM_BASE, TCM_BASE,
};
pub use mpu::{Mpu, MpuError, MpuKind, MpuRegion, Perms};
pub use patch::{FlashPatch, PatchError, PatchKind};
pub use timing::{CoreKind, CoreTiming};
