//! # alia-sim — cycle-approximate simulator for the ALIA cores
//!
//! This crate models the three core design points of Lyons, *"Meeting the
//! Embedded Design Needs of Automotive Applications"* (DATE 2005), plus
//! every memory-system mechanism the paper evaluates:
//!
//! * wait-stated **flash with a streaming prefetch buffer** whose stream is
//!   broken by literal-pool data fetches (§2.2),
//! * **caches with parity** and invalidate-refetch / precise-abort soft-
//!   error recovery, and **TCM with ECC hold-and-repair** (§3.1.3),
//! * classic 4 KB-granule and re-engineered **fine-grain MPUs** (§3.1.1),
//! * **software-preamble and hardware-stacking interrupt schemes** with
//!   tail-chaining and an optional NMI line (§3.2.1, §3.1.2),
//! * the **bit-band alias region** for single-store atomic bit access
//!   (§3.2.3),
//! * an 8-slot **flash patch / breakpoint unit** (§3.2.2), and
//! * an **interruptible, re-startable LDM/STM** option (§3.1.2).
//!
//! # The device bus
//!
//! Every memory access is dispatched through a region table ([`bus`]):
//! 16 entries indexed by `addr >> 28`, each with per-slot bounds, so
//! classification is a table lookup instead of a range-compare chain.
//! Non-RAM regions are serviced through the pluggable [`Device`] trait;
//! machines always carry the instrumentation [`Mmio`] block and can
//! attach a compare-match [`Timer`] and a memory-mapped
//! [`CanController`] (wrapping `alia_can`) via
//! [`MachineConfig::devices`] — guest programs drive them purely with
//! loads and stores and receive their events as interrupts. See
//! `ARCHITECTURE.md` for the full contract (timing, ticking, IRQ
//! signaling, revision counters).
//!
//! # Multi-ECU systems and the network subsystem
//!
//! [`System`] ([`system`]) scales execution from one machine to a
//! network topology: N [`Node`]s (machine + devices + local clock), a
//! set of named [`SharedCanBus`] wires ([`System::add_wire`]) that
//! nodes' CAN controllers arbitrate on, [`Dma`] gateway engines
//! ([`dma`]) that forward frames between wires by guest-programmed
//! routing tables (id-range match, rewrite, store-and-forward latency —
//! no per-frame CPU work), and a deterministic quantum scheduler whose
//! results are independent of quantum size and node service order even
//! across multi-hop gateway paths. A countdown [`Watchdog`] device
//! (NMI-style expiry IRQ, guest-kickable) covers the classic
//! stalled-peer detection scenario.
//!
//! # Host performance
//!
//! The interpreter is built to run "as fast as the hardware allows"
//! without changing a single reported cycle:
//!
//! * **Predecode cache** ([`predecode`]): a generation-stamped,
//!   direct-mapped cache from instruction address to decoded
//!   instruction. Steady-state execution never re-reads instruction
//!   bytes or re-runs the table decoder; only the *timing* side of each
//!   fetch (flash streaming, I-cache, TCM repair, MPU) is replayed, so
//!   cycle counts, `FlashPatch::hits` and `StopReason`s are bit-identical
//!   with the cache on or off ([`Machine::set_predecode_enabled`]). The
//!   cache invalidates on flash loads, flash-patch programming,
//!   host-side RAM mutation and self-modifying stores (tracked by an
//!   address watermark on the store path).
//! * **Zero-allocation hot loop**: `Machine::step` performs no heap
//!   allocation on any path — decode reads a fixed 4-byte window
//!   (`alia_isa::decode_window`), LDM staging uses a fixed register
//!   buffer, IT blocks expand into an inline [`ItQueue`], and the IRQ
//!   drain is allocation-free.
//! * **Pooled, dirty-page-tracked memory arrays**: flash and SRAM
//!   buffers are recycled through a thread-local pool, zeroing only the
//!   4 KiB pages a run actually wrote. Machine construction is O(pages
//!   touched), not O(address space) — ~0.3 µs instead of ~80 µs.
//!
//! `cargo bench -p alia-bench --bench sim_throughput` measures guest
//! MIPS; the `table1` bench measures the full experiment pipeline.
//!
//! # Examples
//!
//! ```
//! use alia_isa::{Assembler, IsaMode};
//! use alia_sim::{Machine, StopReason};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Assembler::new(IsaMode::T2).assemble(
//!     "mov r0, #0
//!      mov r1, #5
//!      loop: add r0, r0, r1
//!      sub r1, r1, #1
//!      cmp r1, #0
//!      bne loop
//!      bkpt #0",
//! )?;
//! let mut m = Machine::m3_like();
//! m.load_flash(0x100, &program.bytes);
//! m.set_pc(0x100);
//! let result = m.run(10_000);
//! assert_eq!(result.reason, StopReason::Bkpt(0));
//! assert_eq!(m.cpu.regs[0], 15);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
mod cache;
mod cpu;
pub mod devices;
pub mod dma;
mod irq;
mod machine;
mod mem;
mod mpu;
mod patch;
pub mod predecode;
pub mod system;
mod threaded;
mod timing;

pub use bus::{
    AttachedDevice, Bus, BusSignals, Device, DeviceClone, DeviceCtx, Region, CAN_BASE,
    DMA_BASE, MMIO_WINDOW_BASE, TIMER_BASE, WATCHDOG_BASE,
};
pub use cache::{Cache, CacheConfig, CacheStats, Lookup};
pub use cpu::{
    add_with_carry, barrel_shift, expand_it, Cpu, ItQueue, EXC_RETURN_HW, EXC_RETURN_SW,
};
pub use devices::{
    CanConfig, CanController, SharedCanBus, Timer, TimerConfig, Watchdog, WatchdogConfig,
};
pub use dma::{Dma, DmaConfig, DMA_ROUTES};
pub use irq::{IrqController, IrqStyle, IrqTiming};
pub use machine::{
    DeviceSpec, IrqLatency, Machine, MachineConfig, MachineSnapshot, RunResult, StopReason,
    MMIO_IRQ_ACTIVE,
};
pub use predecode::{Predecode, PredecodeStats};
pub use system::{Node, System, SystemConfig, SystemRunResult, SystemStop};
pub use mem::{
    Access, Flash, FlashConfig, FlashStats, MemFault, Mmio, Sram, Tcm, BITBAND_BASE, FLASH_BASE,
    MMIO_BASE, MMIO_CYCLES, MMIO_EXIT, MMIO_IRQ_SET, MMIO_TRACE, SRAM_BASE, TCM_BASE,
};
pub use mpu::{Mpu, MpuError, MpuKind, MpuRegion, Perms};
pub use patch::{FlashPatch, PatchError, PatchKind};
pub use timing::{CoreKind, CoreTiming};
