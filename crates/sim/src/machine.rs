//! The assembled machine: core + memory system + interrupt controller.
//!
//! [`Machine`] executes encoded ALIA programs cycle-approximately. Three
//! presets mirror the paper's cores: [`Machine::arm7_like`] (von-Neumann,
//! cacheless), [`Machine::m3_like`] (NVIC, bit-band, flash prefetch) and
//! [`Machine::high_end_like`] (caches, MPU, fault-tolerant RAM,
//! interruptible LDM).

use alia_isa::{decode_window, Flags, Instr, IsaMode, MemSize, Offset, Operand2, Reg};

use crate::bus::{Bus, Region};
use crate::cpu::{add_with_carry, Cpu, EXC_RETURN_HW, EXC_RETURN_SW};
use crate::devices::{
    CanConfig, CanController, SharedCanBus, Timer, TimerConfig, Watchdog, WatchdogConfig,
};
use crate::dma::{Dma, DmaConfig};
use crate::mem::{
    Access, Flash, FlashConfig, MemFault, Mmio, Sram, Tcm, BITBAND_BASE, FLASH_BASE, MMIO_BASE,
    SRAM_BASE, TCM_BASE,
};
use std::sync::Arc;

use crate::predecode::{BlockCache, Entry, Predecode, PredecodeStats, MAX_BLOCK_LEN};
use crate::threaded::{self, BlockExit};
use crate::{Cache, CacheConfig, CoreTiming, FlashPatch, IrqController, IrqStyle, Lookup, Mpu,
    MpuKind};

/// Read: the IRQ number currently being serviced (software-preamble
/// handlers use this to dispatch).
pub const MMIO_IRQ_ACTIVE: u32 = MMIO_BASE + 16;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `bkpt #imm` was executed (normal program exit convention).
    Bkpt(u8),
    /// The program wrote the MMIO exit register.
    MmioExit(u32),
    /// `wfi` executed with no interrupt ever coming.
    WfiIdle,
    /// The cycle budget ran out.
    CycleLimit,
    /// A memory system fault.
    Fault(MemFault),
    /// Bytes at PC did not decode.
    DecodeError {
        /// The address that failed to decode.
        addr: u32,
    },
    /// A flash-patch breakpoint was hit.
    PatchBreakpoint {
        /// The patched address.
        addr: u32,
    },
}

/// The outcome of [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why execution stopped.
    pub reason: StopReason,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions retired (skipped conditional instructions count).
    pub instructions: u64,
}

/// One interrupt service latency observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqLatency {
    /// Interrupt line.
    pub irq: u32,
    /// Cycle at which the line was pended.
    pub pend_cycle: u64,
    /// Cycle at which the first handler instruction began.
    pub entry_cycle: u64,
    /// Whether the entry was tail-chained.
    pub tail_chained: bool,
}

/// A bus device to attach at machine construction (see
/// [`MachineConfig::devices`]). Index 0 on the bus is always the
/// instrumentation MMIO block; configured devices follow in order.
#[derive(Debug, Clone)]
pub enum DeviceSpec {
    /// A compare-match [`Timer`].
    Timer(TimerConfig),
    /// A memory-mapped [`CanController`] owning its private bus
    /// (loopback / host-injected traffic).
    Can(CanConfig),
    /// A memory-mapped [`CanController`] attached to a shared wire:
    /// several machines' controllers arbitrate on one
    /// [`SharedCanBus`], scheduled by [`crate::System`]. The wire's
    /// bit rate overrides the config's `cycles_per_bit`.
    SharedCan(CanConfig, SharedCanBus),
    /// A countdown [`Watchdog`] (NMI-style IRQ on expiry).
    Watchdog(WatchdogConfig),
    /// A [`Dma`] frame-forwarding gateway engine bridging two shared
    /// wires (wire A, then wire B) — the machine becomes a gateway ECU
    /// that forwards by routing table, without per-frame CPU work.
    Dma(DmaConfig, SharedCanBus, SharedCanBus),
}

/// Static machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Instruction encoding executed by the core.
    pub mode: IsaMode,
    /// Core timing parameters.
    pub timing: CoreTiming,
    /// Flash behaviour.
    pub flash: FlashConfig,
    /// SRAM size in bytes.
    pub sram_size: u32,
    /// TCM size in bytes, if fitted.
    pub tcm_size: Option<u32>,
    /// Instruction cache, if fitted.
    pub icache: Option<CacheConfig>,
    /// Data cache, if fitted.
    pub dcache: Option<CacheConfig>,
    /// MPU generation, if fitted.
    pub mpu: Option<MpuKind>,
    /// Interrupt scheme.
    pub irq_style: IrqStyle,
    /// Interrupt lines.
    pub irq_lines: usize,
    /// Whether the bit-band alias region is fitted.
    pub bitband: bool,
    /// Base address of the vector table (one word per line for the
    /// hardware scheme; a single vector for the software scheme).
    pub vector_base: u32,
    /// Whether the host-side predecoded-instruction cache is enabled
    /// (a pure host optimization; cycle counts are identical either way —
    /// see [`crate::predecode`]).
    pub predecode: bool,
    /// Whether the predecode cache is 2-way set-associative (the
    /// default; avoids main-loop/handler slot aliasing in
    /// interrupt-dense workloads). `false` selects the direct-mapped
    /// layout for the bench ablation. Host-only; cycle counts are
    /// identical either way.
    pub predecode_two_way: bool,
    /// Whether the basic-block engine is enabled: decoded straight-line
    /// runs are cached whole and dispatched block-at-a-time by
    /// [`Machine::run`], with the per-step dispatch tax (IRQ drain,
    /// stamp check, cache probe) hoisted to block boundaries and block
    /// exits chained. Host-only; results are bit-identical either way
    /// (`false` selects the per-step path for the bench ablation).
    pub block_cache: bool,
    /// Whether the tier-3 threaded-code engine is enabled: hot blocks
    /// are lowered to pre-resolved handler/operand lists with
    /// superinstruction fusion and batched fetch-timing replay (see
    /// `crates/sim/src/threaded.rs`). Requires the block cache;
    /// host-only, results bit-identical either way (`false` selects
    /// the tier-2 path for the bench ablation).
    pub threaded: bool,
    /// Bus devices to attach beyond the always-present instrumentation
    /// MMIO block (index 0).
    pub devices: Vec<DeviceSpec>,
}

impl MachineConfig {
    /// ARM7TDMI-class: von-Neumann, cacheless, software interrupt scheme.
    #[must_use]
    pub fn arm7_like(mode: IsaMode) -> MachineConfig {
        MachineConfig {
            mode,
            timing: CoreTiming::arm7_like(),
            // Zero-wait memory: the classic core runs at flash speed.
            flash: FlashConfig { seq_cycles: 1, nonseq_cycles: 1, ..FlashConfig::default() },
            sram_size: 1 << 20,
            tcm_size: None,
            icache: None,
            dcache: None,
            mpu: None,
            irq_style: IrqStyle::SoftwarePreamble,
            irq_lines: 32,
            bitband: false,
            vector_base: 0,
            predecode: true,
            predecode_two_way: true,
            block_cache: true,
            threaded: true,
            devices: Vec::new(),
        }
    }

    /// Cortex-M3-class: Harvard, flash prefetch, NVIC, bit-band.
    #[must_use]
    pub fn m3_like() -> MachineConfig {
        MachineConfig {
            mode: IsaMode::T2,
            timing: CoreTiming::m3_like(),
            flash: FlashConfig::default(),
            sram_size: 1 << 20,
            tcm_size: None,
            icache: None,
            dcache: None,
            mpu: None,
            irq_style: IrqStyle::HardwareStacking,
            irq_lines: 32,
            bitband: true,
            vector_base: 0,
            predecode: true,
            predecode_two_way: true,
            block_cache: true,
            threaded: true,
            devices: Vec::new(),
        }
    }

    /// ARM1156T2-class: caches, fine-grain MPU, TCM, interruptible LDM.
    #[must_use]
    pub fn high_end_like() -> MachineConfig {
        MachineConfig {
            mode: IsaMode::T2,
            timing: CoreTiming::high_end_like(),
            flash: FlashConfig { seq_cycles: 1, nonseq_cycles: 6, ..FlashConfig::default() },
            sram_size: 1 << 20,
            tcm_size: Some(64 << 10),
            icache: Some(CacheConfig::default()),
            dcache: Some(CacheConfig::default()),
            mpu: Some(MpuKind::FineGrain),
            irq_style: IrqStyle::HardwareStacking,
            irq_lines: 32,
            bitband: false,
            vector_base: 0,
            predecode: true,
            predecode_two_way: true,
            block_cache: true,
            threaded: true,
            devices: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
struct SwFrame {
    ret_pc: u32,
    flags: Flags,
    primask: bool,
}

/// A basic block being recorded by the per-step path. Recording aborts
/// (the partial run is discarded) whenever execution leaves the
/// straight line — an interrupt, a generation-stamp change, a stop.
#[derive(Debug, Clone)]
struct BlockRec {
    start: u32,
    stamp: u64,
    /// Where the straight line must continue for the next entry to
    /// belong to this block.
    next_pc: u32,
    entries: Vec<Entry>,
}

/// Whether `instr` ends a basic block: control transfers (including
/// anything that *could* write the PC) and IT headers. The classifier
/// is a recording heuristic, not a safety boundary — the block executor
/// independently verifies after every instruction that the PC advanced
/// to the next entry, so a misclassified transfer exits the block
/// rather than corrupting it.
fn ends_block(instr: &Instr) -> bool {
    match instr {
        Instr::B { .. }
        | Instr::Bl { .. }
        | Instr::Bx { .. }
        | Instr::Cbz { .. }
        | Instr::Tbb { .. }
        | Instr::Tbh { .. }
        | Instr::It { .. } => true,
        Instr::Dp { rd, .. } | Instr::Mov { rd, .. } => *rd == Reg::PC,
        Instr::Ldr { rt, .. } | Instr::LdrLit { rt, .. } => *rt == Reg::PC,
        Instr::Ldm { regs, .. } | Instr::Pop { regs, .. } => regs.contains(Reg::PC),
        _ => false,
    }
}

/// Instructions that never join a block and always run on the per-step
/// path: `wfi` fast-forwards the clock past scheduled events (the block
/// executor's cached interrupt horizon would go stale), and `bkpt`
/// always stops.
fn never_in_block(instr: &Instr) -> bool {
    matches!(instr, Instr::Wfi | Instr::Bkpt { .. })
}

/// A frozen copy of a [`Machine`] taken by [`Machine::snapshot`]:
/// restore it into the source machine ([`Machine::restore`]) or fork
/// any number of independent machines from it
/// ([`MachineSnapshot::to_machine`]). Cloning a snapshot is a dirty-page
/// copy, so fanning a warmed-up machine across a campaign costs
/// microseconds per fork, not memsets of the address space.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    state: Box<Machine>,
}

impl MachineSnapshot {
    /// Materializes an independent machine from the snapshot. Each call
    /// yields a fresh fork; the snapshot is unchanged.
    #[must_use]
    pub fn to_machine(&self) -> Machine {
        self.state.as_ref().clone()
    }
}

/// A complete simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Static configuration.
    pub config: MachineConfig,
    /// Architectural state.
    pub cpu: Cpu,
    /// Flash memory.
    pub flash: Flash,
    /// SRAM.
    pub sram: Sram,
    /// TCM, if fitted.
    pub tcm: Option<Tcm>,
    /// The system bus: region table, attached devices, device signals.
    pub bus: Bus,
    /// Instruction cache, if fitted.
    pub icache: Option<Cache>,
    /// Data cache, if fitted.
    pub dcache: Option<Cache>,
    /// MPU, if fitted.
    pub mpu: Option<Mpu>,
    /// Interrupt controller.
    pub irq: IrqController,
    /// Flash patch unit.
    pub patch: FlashPatch,
    pub(crate) cycles: u64,
    pub(crate) instret: u64,
    pub(crate) fetch_window: Option<u32>,
    /// Scheduled interrupts, sorted descending so the earliest is `last()`
    /// and draining is an O(1) `pop`.
    irq_schedule: Vec<(u64, u32)>,
    pend_cycle: Vec<Option<u64>>,
    latencies: Vec<IrqLatency>,
    sw_frames: Vec<SwFrame>,
    active_irq: u32,
    svc_count: u64,
    icache_recoveries: u64,
    dcache_recoveries: u64,
    predecode: Predecode,
    /// The basic-block cache: decoded straight-line runs dispatched
    /// whole by the block engine ([`Machine::run`]'s fast path).
    blocks: BlockCache,
    /// Block under construction: per-step execution records the entries
    /// it retires until the run ends at a control transfer (see
    /// [`Machine::record_entry`]).
    block_rec: Option<BlockRec>,
    /// Recycled staging buffer for block recording (keeps repeated
    /// record attempts allocation-free).
    rec_spare: Vec<Entry>,
    /// Bumped whenever a simulated store lands inside the predecode or
    /// block-cache watermark (self-modifying code); part of the caches'
    /// shared generation stamp.
    code_write_gen: u64,
    /// Cycle bound of the current [`Machine::run_until`] call
    /// (`u64::MAX` outside bounded runs). Caps the WFI fast-forward so a
    /// bounded run never overshoots a scheduler quantum boundary.
    run_limit: u64,
    /// Set when a bounded run reached `run_limit` while asleep in WFI:
    /// the instruction is still in flight, and the next
    /// [`Machine::run`] / [`Machine::run_until`] re-enters the sleep
    /// instead of fetching. Cycle accounting is unchanged — a parked
    /// machine resumes exactly as if the sleep had never been split at
    /// the boundary.
    wfi_parked: bool,
    /// Cycle at which the current (or most recent) WFI sleep began —
    /// the architectural sleep-entry moment. A sleep that turns out to
    /// be terminal ([`StopReason::WfiIdle`], or a parked node in a
    /// quiescent [`crate::System`]) reports its clock here, so WfiIdle
    /// clocks never depend on where scheduler boundaries fell.
    wfi_entry: u64,
    /// Structured event tracer (tier transitions, block fills, IRQ
    /// pend/take, WFI park/resume). Off by default — every record site
    /// is guarded by the category mask, so the disabled interpreter
    /// paths stay at parity. See [`Machine::set_trace_mask`].
    tracer: alia_obs::Tracer,
}

impl Machine {
    /// Builds a machine from a configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Machine {
        let mut bus = Bus::new(
            config.flash.size,
            config.sram_size,
            config.tcm_size,
            config.bitband,
        );
        bus.attach(MMIO_BASE, 0x1000, Box::new(Mmio::new()));
        for spec in &config.devices {
            match spec {
                DeviceSpec::Timer(c) => {
                    bus.attach(c.base, 0x100, Box::new(Timer::new(*c)));
                }
                DeviceSpec::Can(c) => {
                    bus.attach(c.base, 0x100, Box::new(CanController::new(*c)));
                }
                DeviceSpec::SharedCan(c, wire) => {
                    bus.attach(c.base, 0x100, Box::new(CanController::attached(*c, wire)));
                }
                DeviceSpec::Watchdog(c) => {
                    bus.attach(c.base, 0x100, Box::new(Watchdog::new(*c)));
                }
                DeviceSpec::Dma(c, wire_a, wire_b) => {
                    // The route file spans 0x40 + DMA_ROUTES * 0x20.
                    bus.attach(c.base, 0x200, Box::new(Dma::new(*c, wire_a, wire_b)));
                }
            }
        }
        Machine {
            cpu: Cpu::new(),
            flash: Flash::new(config.flash),
            sram: Sram::new(config.sram_size),
            tcm: config.tcm_size.map(Tcm::new),
            bus,
            icache: config.icache.map(Cache::new),
            dcache: config.dcache.map(Cache::new),
            mpu: config.mpu.map(Mpu::new),
            irq: IrqController::new(config.irq_style, config.irq_lines),
            patch: FlashPatch::new(),
            cycles: 0,
            instret: 0,
            fetch_window: None,
            irq_schedule: Vec::new(),
            pend_cycle: vec![None; config.irq_lines],
            latencies: Vec::new(),
            sw_frames: Vec::new(),
            active_irq: 0,
            svc_count: 0,
            icache_recoveries: 0,
            dcache_recoveries: 0,
            predecode: Predecode::new(config.predecode, config.predecode_two_way),
            blocks: BlockCache::new(config.block_cache),
            block_rec: None,
            rec_spare: Vec::new(),
            code_write_gen: 0,
            run_limit: u64::MAX,
            wfi_parked: false,
            wfi_entry: 0,
            tracer: alia_obs::Tracer::default(),
            config,
        }
    }

    /// The machine's structured event tracer.
    #[must_use]
    pub fn tracer(&self) -> &alia_obs::Tracer {
        &self.tracer
    }

    /// Sets the tracing category mask (see [`alia_obs::category`]) on
    /// the machine *and* on every traced device it owns (the gateway
    /// DMA engines keep their own tracers on their own clock).
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.tracer.set_mask(mask);
        for dev in self.bus.devices_mut() {
            if let Some(dma) = dev.as_any_mut().downcast_mut::<Dma>() {
                dma.set_trace_mask(mask);
            }
        }
    }

    /// The instrumentation MMIO block (always attached at bus index 0).
    #[must_use]
    pub fn mmio(&self) -> &Mmio {
        self.bus.device::<Mmio>().expect("instrumentation MMIO always attached")
    }

    /// Mutable access to the instrumentation MMIO block.
    pub fn mmio_mut(&mut self) -> &mut Mmio {
        self.bus.device_mut::<Mmio>().expect("instrumentation MMIO always attached")
    }

    /// Shorthand: [`MachineConfig::arm7_like`].
    #[must_use]
    pub fn arm7_like(mode: IsaMode) -> Machine {
        Machine::new(MachineConfig::arm7_like(mode))
    }

    /// Shorthand: [`MachineConfig::m3_like`].
    #[must_use]
    pub fn m3_like() -> Machine {
        Machine::new(MachineConfig::m3_like())
    }

    /// Shorthand: [`MachineConfig::high_end_like`].
    #[must_use]
    pub fn high_end_like() -> Machine {
        Machine::new(MachineConfig::high_end_like())
    }

    /// A point-in-time copy of the whole machine: CPU, memories
    /// (dirty-page copies — cost proportional to the touched footprint,
    /// not the address-space size), devices, IRQ state, predecode and
    /// block caches, WFI-park state. Restoring ([`Machine::restore`]) or
    /// materializing ([`MachineSnapshot::to_machine`]) yields a machine
    /// that runs bit-identically to the original from the snapshot
    /// point — including snapshots taken mid-block or inside a parked
    /// WFI sleep.
    ///
    /// A controller on a [`crate::SharedCanBus`] keeps its binding to
    /// the *same* wire (the handle is the attachment, not the state);
    /// use [`crate::System::fork`] to fork a whole topology onto
    /// detached wire copies.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot { state: Box::new(self.clone()) }
    }

    /// Restores the machine to `snapshot` (see [`Machine::snapshot`]).
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        *self = snapshot.state.as_ref().clone();
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instret
    }

    /// `svc` instructions executed.
    #[must_use]
    pub fn svc_count(&self) -> u64 {
        self.svc_count
    }

    /// Interrupt latency observations.
    #[must_use]
    pub fn latencies(&self) -> &[IrqLatency] {
        &self.latencies
    }

    /// Soft-error recoveries performed by the instruction cache.
    #[must_use]
    pub fn icache_recoveries(&self) -> u64 {
        self.icache_recoveries
    }

    /// Soft-error recoveries performed on the data side.
    #[must_use]
    pub fn dcache_recoveries(&self) -> u64 {
        self.dcache_recoveries
    }

    /// Enables or disables the host-side predecode cache at runtime.
    /// Disabling drops all cached entries; cycle results are identical
    /// either way (the cache is a pure host optimization).
    pub fn set_predecode_enabled(&mut self, enabled: bool) {
        self.predecode.set_enabled(enabled);
    }

    /// Whether the predecode cache is currently enabled.
    #[must_use]
    pub fn predecode_enabled(&self) -> bool {
        self.predecode.enabled()
    }

    /// Selects the predecode cache's associativity at runtime: 2-way
    /// set-associative (`true`, the default) or direct-mapped (`false`,
    /// the bench ablation). Switching drops all cached entries; cycle
    /// results are identical either way.
    pub fn set_predecode_two_way(&mut self, two_way: bool) {
        self.predecode.set_two_way(two_way);
    }

    /// Enables or disables the basic-block engine at runtime. Disabling
    /// drops all cached blocks and falls back to per-step execution;
    /// results are bit-identical either way (the block engine is a pure
    /// host optimization — the bench ablation's knob).
    pub fn set_block_cache_enabled(&mut self, enabled: bool) {
        self.blocks.set_enabled(enabled);
        self.block_rec = None;
    }

    /// Whether the basic-block engine is currently enabled.
    #[must_use]
    pub fn block_cache_enabled(&self) -> bool {
        self.blocks.enabled()
    }

    /// Enables or disables the tier-3 threaded-code engine at runtime.
    /// Disabling demotes every promoted block back to tier-2 dispatch;
    /// results are bit-identical either way (the threaded tier is a
    /// pure host optimization — the bench ablation's knob).
    pub fn set_threaded_enabled(&mut self, enabled: bool) {
        if self.config.threaded != enabled {
            self.config.threaded = enabled;
            self.blocks.drop_threaded();
        }
    }

    /// Whether the tier-3 threaded-code engine is currently enabled.
    #[must_use]
    pub fn threaded_enabled(&self) -> bool {
        self.config.threaded
    }

    /// Predecode cache hit/miss/invalidation counters, including the
    /// block-level counters (blocks built/dispatched, chain follows,
    /// budget splits) and the tier-3 counters (promotions, fused
    /// pairs, threaded dispatches, demotions).
    #[must_use]
    pub fn predecode_stats(&self) -> PredecodeStats {
        let mut stats = self.predecode.stats();
        stats.blocks_built = self.blocks.stats.built;
        stats.block_hits = self.blocks.stats.hits;
        stats.chain_follows = self.blocks.stats.chain_follows;
        stats.budget_splits = self.blocks.stats.budget_splits;
        stats.blocks_promoted = self.blocks.stats.promoted;
        stats.fused_pairs = self.blocks.stats.fused_pairs;
        stats.threaded_dispatches = self.blocks.stats.threaded_dispatches;
        stats.demotions = self.blocks.stats.demotions;
        stats.threaded_instrs = self.blocks.stats.threaded_instrs;
        stats.block_instrs = self.blocks.stats.block_instrs;
        stats.plans_free = self.blocks.stats.plans_free;
        stats.plans_refill = self.blocks.stats.plans_refill;
        stats.plans_slow = self.blocks.stats.plans_slow;
        stats
    }

    /// Per-block execution profile: one entry per occupied block-cache
    /// slot as `(start pc, instruction count, dispatches, promoted to
    /// tier 3, fused pairs)`, sorted by dispatch count descending.
    #[must_use]
    pub fn block_profile(&self) -> Vec<(u32, u32, u64, bool, u32)> {
        let mut v = self.blocks.profile();
        v.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        v
    }

    /// Publishes the machine's execution counters into `reg` under
    /// `prefix` (e.g. `node.gw1.`): cycle/instruction totals, the
    /// full [`PredecodeStats`] family, IRQ takes, and cache-recovery
    /// counts. Values are copies of the same counters the legacy
    /// accessors report — the registry is a uniform view, not a second
    /// source of truth.
    pub fn publish_metrics(&self, reg: &mut alia_obs::metrics::Registry, prefix: &str) {
        reg.counter(&format!("{prefix}cycles"), self.cycles);
        reg.counter(&format!("{prefix}instructions"), self.instret);
        let s = self.predecode_stats();
        reg.counter(&format!("{prefix}predecode.hits"), s.hits);
        reg.counter(&format!("{prefix}predecode.misses"), s.misses);
        reg.counter(&format!("{prefix}predecode.invalidations"), s.invalidations);
        reg.counter(&format!("{prefix}blocks.built"), s.blocks_built);
        reg.counter(&format!("{prefix}blocks.hits"), s.block_hits);
        reg.counter(&format!("{prefix}blocks.chain_follows"), s.chain_follows);
        reg.counter(&format!("{prefix}blocks.budget_splits"), s.budget_splits);
        reg.counter(&format!("{prefix}blocks.promoted"), s.blocks_promoted);
        reg.counter(&format!("{prefix}blocks.fused_pairs"), s.fused_pairs);
        reg.counter(&format!("{prefix}blocks.threaded_dispatches"), s.threaded_dispatches);
        reg.counter(&format!("{prefix}blocks.demotions"), s.demotions);
        reg.counter(&format!("{prefix}tier.threaded_instrs"), s.threaded_instrs);
        reg.counter(&format!("{prefix}tier.block_instrs"), s.block_instrs);
        reg.counter(&format!("{prefix}plans.free"), s.plans_free);
        reg.counter(&format!("{prefix}plans.refill"), s.plans_refill);
        reg.counter(&format!("{prefix}plans.slow"), s.plans_slow);
        reg.counter(&format!("{prefix}irq.taken"), self.latencies.len() as u64);
        for l in &self.latencies {
            reg.observe(&format!("{prefix}irq.latency"), l.entry_cycle - l.pend_cycle);
        }
        reg.counter(&format!("{prefix}icache.recoveries"), self.icache_recoveries);
        reg.counter(&format!("{prefix}dcache.recoveries"), self.dcache_recoveries);
        // Device counters, keyed by bus index so multiple controllers
        // on one machine stay distinguishable.
        for (i, dev) in self.bus.devices().iter().enumerate() {
            if let Some(dma) = dev.dev.as_any().downcast_ref::<Dma>() {
                dma.publish_metrics(reg, &format!("{prefix}dev{i}."));
            }
            if let Some(can) = dev.dev.as_any().downcast_ref::<CanController>() {
                can.publish_metrics(reg, &format!("{prefix}dev{i}."));
            }
        }
    }

    /// Loads bytes into flash at `addr` (must be inside flash).
    pub fn load_flash(&mut self, addr: u32, image: &[u8]) {
        self.flash.load(addr - FLASH_BASE, image);
    }

    /// Loads bytes into SRAM at `addr`.
    pub fn load_sram(&mut self, addr: u32, image: &[u8]) {
        self.sram.load(addr - SRAM_BASE, image);
    }

    /// Reads a word from SRAM (test/benchmark helper).
    #[must_use]
    pub fn read_sram_word(&self, addr: u32) -> u32 {
        self.sram.read(addr - SRAM_BASE, 4)
    }

    /// Writes a word to SRAM (test/benchmark helper).
    pub fn write_sram_word(&mut self, addr: u32, value: u32) {
        self.note_code_write(addr, 4);
        self.sram.write_raw(addr - SRAM_BASE, 4, value);
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.cpu.pc = pc;
    }

    /// Schedules interrupt `irq` to assert at absolute cycle `cycle`.
    pub fn schedule_irq(&mut self, cycle: u64, irq: u32) {
        self.irq_schedule.push((cycle, irq));
        // Descending order: the earliest event sits at the end, so the
        // per-step drain below pops instead of shifting the whole vector.
        self.irq_schedule.sort_unstable_by(|a, b| b.cmp(a));
    }

    fn pend_irq(&mut self, irq: u32, asserted_at: u64) {
        self.irq.pend(irq);
        self.tracer.record(asserted_at, alia_obs::EventKind::IrqPend { irq });
        let slot = &mut self.pend_cycle[irq as usize];
        if slot.is_none() {
            // Latency is measured from the cycle the line was asserted,
            // not from when the core got around to sampling it.
            *slot = Some(asserted_at);
        }
    }

    fn drain_due_irqs(&mut self, now: u64) {
        while let Some(&(cycle, irq)) = self.irq_schedule.last() {
            if cycle > now {
                break;
            }
            self.irq_schedule.pop();
            self.pend_irq(irq, cycle);
        }
        // Devices with timed behaviour (timer compare matches, CAN frame
        // completions) tick only when due — one compare per step
        // otherwise.
        if now >= self.bus.next_event() {
            self.bus.tick_devices(now, self.active_irq);
        }
        // Index loops instead of drain().collect(): no per-step
        // allocation. Step-boundary requests pend at the drain cycle
        // (legacy MMIO_IRQ_SET semantics)...
        let mut i = 0;
        while i < self.bus.signals.irq_requests.len() {
            let irq = self.bus.signals.irq_requests[i];
            i += 1;
            if (irq as usize) < self.config.irq_lines {
                self.pend_irq(irq, self.cycles);
            }
        }
        self.bus.signals.irq_requests.clear();
        // ...while timed events carry their own assertion cycle.
        let mut i = 0;
        while i < self.bus.signals.timed_irqs.len() {
            let (irq, at) = self.bus.signals.timed_irqs[i];
            i += 1;
            if (irq as usize) < self.config.irq_lines {
                self.pend_irq(irq, at);
            }
        }
        self.bus.signals.timed_irqs.clear();
    }

    // -----------------------------------------------------------------
    // Memory paths
    // -----------------------------------------------------------------

    /// Resolves an address to its memory region — the single classifier
    /// shared by the fetch, data-read and data-write paths. Dispatch is
    /// a bus region-table lookup (`addr >> 28` index + bounds check),
    /// not a chain of range compares; see [`crate::bus`].
    #[must_use]
    #[inline]
    pub fn classify(&self, addr: u32) -> Region {
        self.bus.classify(addr)
    }

    /// Host-driven bus read: performs a data read exactly as a guest
    /// load would — MPU checks, cache/flash timing state and device side
    /// effects included. Returns `(value, cycles)`.
    ///
    /// # Errors
    ///
    /// Returns the same [`MemFault`]s a guest load would raise.
    pub fn bus_read(&mut self, addr: u32, len: u32) -> Result<(u32, u32), MemFault> {
        self.data_read(addr, len)
    }

    /// Host-driven bus write: performs a data write exactly as a guest
    /// store would. Returns cycles.
    ///
    /// # Errors
    ///
    /// Returns the same [`MemFault`]s a guest store would raise.
    pub fn bus_write(&mut self, addr: u32, len: u32, value: u32) -> Result<u32, MemFault> {
        self.data_write(addr, len, value)
    }

    /// Charges the *timing* of fetching `len` instruction bytes at `addr`
    /// — MPU execute check, flash streaming / I-cache state, TCM
    /// hold-and-repair — without extracting flash bytes. Run on every
    /// step (predecode hit or miss) so cached execution is
    /// cycle-identical. Returns `(cycles, region, tcm_value)`; the third
    /// element carries the TCM read's value (the repairing read is the
    /// access itself, so it is performed exactly once) and is zero for
    /// other regions.
    #[inline]
    pub(crate) fn fetch_timing(&mut self, addr: u32, len: u32) -> Result<(u32, Region, u32), MemFault> {
        if let Some(mpu) = &mut self.mpu {
            if !mpu.check_execute(addr) {
                return Err(MemFault::MpuViolation { addr, write: false });
            }
        }
        match self.classify(addr) {
            Region::Sram => Ok((self.sram.cycles, Region::Sram, 0)),
            Region::Tcm => {
                let tcm = self.tcm.as_mut().expect("classified Tcm");
                let (v, c) = tcm.read(addr - TCM_BASE, len);
                Ok((c, Region::Tcm, v))
            }
            Region::Flash => {
                let off = addr - FLASH_BASE;
                let mut cycles = 0;
                if let Some(ic) = &mut self.icache {
                    let (lookup, c) = ic.access(off);
                    cycles += c;
                    if lookup == Lookup::DataError {
                        // §3.1.3: invalidate + refetch, transparently.
                        self.icache_recoveries += 1;
                        let (_, c2) = ic.access(off);
                        cycles += c2;
                    }
                } else {
                    // Streaming fetch through the window buffer.
                    let window = self.flash.config().width.max(2);
                    let mut w = addr & !(window - 1);
                    let end = addr + len;
                    while w < end {
                        if self.fetch_window != Some(w) {
                            cycles += self.flash.access_timing(w - FLASH_BASE, window, Access::Fetch);
                            self.fetch_window = Some(w);
                        }
                        w += window;
                    }
                    // Only the final window stays buffered.
                    self.fetch_window = Some((end - 1) & !(window - 1));
                }
                Ok((cycles, Region::Flash, 0))
            }
            Region::BitBand | Region::Device(_) | Region::Unmapped => {
                Err(MemFault::Unmapped { addr })
            }
        }
    }

    /// Fetches `len` instruction bytes at `addr`. Returns
    /// `(raw, cycles, patched_breakpoint)`. Predecode-miss path only; the
    /// hit path replays [`Machine::fetch_timing`] alone.
    fn fetch_mem(&mut self, addr: u32, len: u32) -> Result<(u32, u32, bool), MemFault> {
        let (cycles, region, tcm_value) = self.fetch_timing(addr, len)?;
        match region {
            Region::Sram => Ok((self.sram.read(addr - SRAM_BASE, len), cycles, false)),
            Region::Tcm => Ok((tcm_value, cycles, false)),
            Region::Flash => {
                let raw = self.flash.peek(addr - FLASH_BASE, len);
                let (patched, bp) = self.patch.apply(addr, len, raw);
                Ok((patched, cycles, bp))
            }
            // fetch_timing faulted above; keep the compiler honest.
            Region::BitBand | Region::Device(_) | Region::Unmapped => {
                Err(MemFault::Unmapped { addr })
            }
        }
    }

    /// The single remap point for flash *data* reads: raw bytes filtered
    /// through the flash-patch unit, identically for every access width
    /// and on both the cached and uncached paths.
    #[inline]
    fn flash_data_value(&mut self, addr: u32, len: u32) -> u32 {
        let raw = self.flash.peek(addr - FLASH_BASE, len);
        self.patch.apply(addr, len, raw).0
    }

    /// Resolves a bit-band alias address to `(sram_byte_offset, bit)` —
    /// shared by the read and write paths so every access width lands on
    /// the same bit.
    #[inline]
    fn bitband_target(addr: u32) -> (u32, u32) {
        let bit_index = addr - BITBAND_BASE;
        (bit_index / 8, bit_index % 8)
    }

    /// Performs a data read. Returns `(value, cycles)`.
    pub(crate) fn data_read(&mut self, addr: u32, len: u32) -> Result<(u32, u32), MemFault> {
        if let Some(mpu) = &mut self.mpu {
            if !mpu.check(addr, false, true) {
                return Err(MemFault::MpuViolation { addr, write: false });
            }
        }
        let region = self.classify(addr);
        if let Region::Device(idx) = region {
            let v = self.bus.device_read(idx, addr, len, self.cycles, self.active_irq);
            return Ok((v, 1));
        }
        if region == Region::BitBand {
            let (byte, bit) = Machine::bitband_target(addr);
            let v = self.sram.read(byte, 1) >> bit & 1;
            return Ok((v, 1));
        }
        let mut cycles = 0;
        if let (Some(dc), Region::Flash | Region::Sram) = (&mut self.dcache, region) {
            let (lookup, c) = dc.access(addr);
            cycles += c;
            if lookup == Lookup::DataError {
                // Precise abort + software recovery, modelled as a charged
                // recovery sequence followed by a refill.
                self.dcache_recoveries += 1;
                let (_, c2) = dc.access(addr);
                cycles += c2 + 8; // recovery handler overhead
            }
            let v = if region == Region::Flash {
                // The patch unit sits on the flash data path regardless of
                // caching (the cache stores timing, not data).
                self.flash_data_value(addr, len)
            } else {
                self.sram.read(addr - SRAM_BASE, len)
            };
            return Ok((v, cycles));
        }
        match region {
            Region::Sram => {
                let v = self.sram.read(addr - SRAM_BASE, len);
                cycles += self.sram.cycles;
                if !self.config.timing.harvard {
                    // Unified bus: the data access steals the bus from the
                    // fetch stream.
                    self.break_fetch_stream();
                }
                Ok((v, cycles))
            }
            Region::Tcm => {
                let tcm = self.tcm.as_mut().expect("classified Tcm");
                let (v, c) = tcm.read(addr - TCM_BASE, len);
                Ok((v, c))
            }
            Region::Flash => {
                // Literal pool load: disturbs the prefetch stream (§2.2).
                let c = self.flash.access_timing(addr - FLASH_BASE, len, Access::Read);
                self.fetch_window = None;
                let v = self.flash_data_value(addr, len);
                Ok((v, c))
            }
            Region::BitBand | Region::Device(_) | Region::Unmapped => {
                Err(MemFault::Unmapped { addr })
            }
        }
    }

    /// Performs a data write. Returns cycles.
    pub(crate) fn data_write(&mut self, addr: u32, len: u32, value: u32) -> Result<u32, MemFault> {
        if let Some(mpu) = &mut self.mpu {
            if !mpu.check(addr, true, true) {
                return Err(MemFault::MpuViolation { addr, write: true });
            }
        }
        match self.classify(addr) {
            Region::Device(idx) => {
                self.bus
                    .device_write(idx, addr, len, value, self.cycles, self.active_irq);
                Ok(1)
            }
            Region::BitBand => {
                // The paper's §3.2.3 mechanism: one store atomically sets or
                // clears a single bit, no read-modify-write, no IRQ masking.
                let (byte, bit) = Machine::bitband_target(addr);
                self.note_code_write(SRAM_BASE + byte, 1);
                let old = self.sram.read(byte, 1);
                let new = if value & 1 != 0 { old | 1 << bit } else { old & !(1 << bit) };
                self.sram.write_raw(byte, 1, new);
                Ok(1)
            }
            Region::Sram => {
                self.note_code_write(addr, len);
                self.sram.write_raw(addr - SRAM_BASE, len, value);
                if !self.config.timing.harvard {
                    self.break_fetch_stream();
                }
                Ok(self.sram.cycles)
            }
            Region::Tcm => {
                self.note_code_write(addr, len);
                let tcm = self.tcm.as_mut().expect("classified Tcm");
                Ok(tcm.write_raw(addr - TCM_BASE, len, value))
            }
            Region::Flash | Region::Unmapped => Err(MemFault::Unmapped { addr }),
        }
    }

    /// Self-modifying-code hook on the store path: a write that lands
    /// inside the predecode or block-cache watermark invalidates both
    /// caches (by bumping the machine's code-write generation). The
    /// block executor additionally re-checks this generation after
    /// every instruction, so a store that rewrites code *later in the
    /// currently executing block* splits back to the per-step path
    /// before the stale entry could issue.
    fn note_code_write(&mut self, addr: u32, len: u32) {
        if self.predecode.covers(addr, len) || self.blocks.covers(addr, len) {
            self.code_write_gen = self.code_write_gen.wrapping_add(1);
        }
    }

    /// The predecode generation stamp: the sum of the per-region
    /// revision counters — any change to what instruction bytes decode
    /// to moves this value. Devices participate through
    /// [`crate::Device::revision`] (cached bus-side, so plain data
    /// devices cost nothing here). See [`crate::predecode`].
    #[inline]
    fn code_stamp(&self) -> u64 {
        self.flash
            .revision()
            .wrapping_add(self.patch.revision())
            .wrapping_add(self.sram.revision())
            .wrapping_add(self.tcm.as_ref().map_or(0, Tcm::revision))
            .wrapping_add(self.bus.device_revisions())
            .wrapping_add(self.code_write_gen)
    }

    fn break_fetch_stream(&mut self) {
        self.fetch_window = None;
        // A non-fetch bus transaction desequentializes flash.
        self.flash.break_stream();
    }

    // -----------------------------------------------------------------
    // Execution
    // -----------------------------------------------------------------

    /// Runs until a stop condition or `cycle_limit`.
    pub fn run(&mut self, cycle_limit: u64) -> RunResult {
        loop {
            if self.cycles >= cycle_limit {
                return self.result(StopReason::CycleLimit);
            }
            match self.advance(cycle_limit) {
                None => {}
                Some(reason) => return self.result(reason),
            }
        }
    }

    /// One unit of forward progress: a whole cached block (plus chained
    /// successors) when the block fast path is safe, otherwise one
    /// [`Machine::step`]. Results are bit-identical to stepping — see
    /// [`Machine::exec_blocks`] for the boundary contract.
    fn advance(&mut self, cycle_limit: u64) -> Option<StopReason> {
        if self.blocks.enabled() && self.predecode.enabled() && !self.wfi_parked {
            // Block-boundary IRQ sampling: drain once at block entry.
            // Inside a block the executor only bounds-checks — nothing
            // can become pending before one of its split conditions
            // trips (see exec_blocks). A fall-through to the per-step
            // path reuses this drain instead of repeating it.
            self.drain_due_irqs(self.cycles);
            if !self.irq.any_pending() {
                let pc = self.cpu.pc;
                let stamp = self.code_stamp();
                // Demotions happen inside the cache (stamp-change
                // clears, slot overwrites); surface them as events by
                // watching the counter across the lookup. One mask
                // test when tracing is off.
                let demote_base = self
                    .tracer
                    .wants(alia_obs::category::TIER)
                    .then_some(self.blocks.stats.demotions);
                let looked_up = self.blocks.lookup(pc, stamp);
                if let Some(base) = demote_base {
                    if self.blocks.stats.demotions > base {
                        self.tracer.record(self.cycles, alia_obs::EventKind::Demote { pc });
                    }
                }
                if let Some(slot) = looked_up {
                    return self.exec_blocks(slot, stamp, cycle_limit);
                }
                self.ensure_record(pc, stamp);
            }
            // Interrupt entry (or a masked pending line) and block
            // recording are the per-step path's business.
            return self.step_predrained();
        }
        self.step()
    }

    /// The block engine: executes the cached block in `slot`, then
    /// chains through successors, until a stop, an exit with no cached
    /// successor, or a split back to the per-step path.
    ///
    /// # Why this is bit-identical to stepping
    ///
    /// Per instruction it runs exactly the per-step predecode-hit
    /// sequence (fetch-timing replay, live predication, `exec`), and
    /// after every instruction it re-checks everything the per-step
    /// dispatch could have reacted to at that boundary:
    ///
    /// * a pending interrupt (uncovered by `cpsie`, raised mid-`ldm`,
    ///   left by an exception return) — split; the slow path owns
    ///   interrupt entry;
    /// * undrained device signals (a store/load that made a device
    ///   raise an IRQ) — split; the next step's drain pends them at the
    ///   same boundary stepping would;
    /// * a guest-reachable generation-stamp change (a store inside a
    ///   cache watermark, a device revision bump) — split before the
    ///   next, possibly stale, entry could issue;
    /// * the cycle budget: a due scheduled interrupt, a due device
    ///   event ([`crate::Bus::next_event`], read live because a guest
    ///   store can re-arm a timer mid-block), or the `run_until` bound
    ///   — split, so interrupt latency and quantum boundaries land on
    ///   the same instruction boundary stepping would put them on.
    ///
    /// Chained dispatch (block exit straight into the successor block)
    /// is gated on the same checks, so a chain hop is exactly a block
    /// entry whose drain would have been a no-op.
    fn exec_blocks(
        &mut self,
        mut slot: usize,
        stamp: u64,
        cycle_limit: u64,
    ) -> Option<StopReason> {
        // Bounds stable for the whole chain: the earliest scheduled
        // interrupt only changes through `drain_due_irqs` (not called in
        // here — `wfi` never joins a block), and host-side stamp
        // components cannot move while the guest runs.
        let sched_due = self.irq_schedule.last().map_or(u64::MAX, |&(c, _)| c);
        let cwg = self.code_write_gen;
        let revs = self.bus.device_revisions();
        loop {
            self.blocks.stats.hits += 1;
            // Tier selection: the threaded lowering when the block is
            // hot (promoting it on the dispatch that crosses the heat
            // threshold), tier-2 entry-at-a-time otherwise.
            let exit = if let Some(tb) = self.tier3_for(slot) {
                let instret0 = self.instret;
                let (exit, loops) =
                    threaded::dispatch(self, &tb, cycle_limit, sched_due, cwg, revs);
                // Self-loop iterations inside the dispatch stand for
                // dispatch-follow-redispatch rounds of this chain loop:
                // charge the stats those rounds would have charged.
                let stats = &mut self.blocks.stats;
                stats.threaded_dispatches += 1 + loops;
                stats.hits += loops;
                stats.chain_follows += loops;
                stats.threaded_instrs += self.instret - instret0;
                self.blocks.note_dispatch(slot, 1 + loops);
                exit
            } else {
                let instret0 = self.instret;
                let exit = self.exec_block_entries(slot, cycle_limit, sched_due, cwg, revs);
                self.blocks.stats.block_instrs += self.instret - instret0;
                self.blocks.note_dispatch(slot, 1);
                exit
            };
            match exit {
                BlockExit::Stop(stop) => return Some(stop),
                BlockExit::Split => return None,
                BlockExit::SplitBudget => {
                    self.blocks.stats.budget_splits += 1;
                    if self.tracer.wants(alia_obs::category::TIER) {
                        let pc = self.blocks.block_start(slot);
                        self.tracer
                            .record(self.cycles, alia_obs::EventKind::BudgetSplit { pc });
                    }
                    return None;
                }
                BlockExit::Chain => {}
            }
            // Block exit (taken branch or fall-through): follow the
            // chain hint, or probe-and-link, or record the successor.
            let target = self.cpu.pc;
            if let Some(next) = self.blocks.follow(slot, target) {
                self.blocks.stats.chain_follows += 1;
                slot = next;
            } else if let Some(next) = self.blocks.probe(target) {
                self.blocks.link(slot, target, next);
                slot = next;
            } else {
                self.ensure_record(target, stamp);
                return None;
            }
        }
    }

    /// The tier-2 block body: the per-step predecode-hit sequence for
    /// every entry, with the full safety/budget boundary checks after
    /// each instruction (see [`Machine::exec_blocks`]'s contract).
    fn exec_block_entries(
        &mut self,
        slot: usize,
        cycle_limit: u64,
        sched_due: u64,
        cwg: u64,
        revs: u64,
    ) -> BlockExit {
        let insts = self.blocks.insts(slot);
        let mut pc = self.cpu.pc;
        for e in insts.iter() {
            // The per-step predecode-hit path, verbatim: timing
            // replay plus the shared issue sequence.
            let fetch_cycles = match self.replay_fetch(pc, e) {
                Ok(c) => c,
                Err(stop) => return BlockExit::Stop(stop),
            };
            let next_pc = pc.wrapping_add(e.size);
            if let Some(stop) = self.issue(e, pc, fetch_cycles) {
                return BlockExit::Stop(stop);
            }
            // Safety splits (see the method docs).
            if !self.threaded_safety_ok(cwg, revs) {
                return BlockExit::Split;
            }
            // Budget splits.
            if self.cycles >= cycle_limit
                || self.cycles >= sched_due
                || self.cycles >= self.bus.next_event()
            {
                return BlockExit::SplitBudget;
            }
            if self.cpu.pc != next_pc {
                break; // control transfer: chain in the caller
            }
            pc = next_pc;
        }
        BlockExit::Chain
    }

    /// The block engine's per-instruction safety conditions, shared
    /// verbatim by tier 2 (after every instruction) and tier 3 (after
    /// impure ops — pure ops provably cannot change any input of this
    /// check). `false` means split back to the per-step path.
    pub(crate) fn threaded_safety_ok(&self, cwg: u64, revs: u64) -> bool {
        !(self.irq.any_pending()
            || !self.bus.signals.irq_requests.is_empty()
            || !self.bus.signals.timed_irqs.is_empty()
            || self.code_write_gen != cwg
            || self.bus.device_revisions() != revs)
    }

    /// The threaded lowering for `slot` if the tier applies right now:
    /// tier 3 enabled, no outstanding IT predication (handlers skip the
    /// per-instruction IT-queue pop), and no latched exit code (impure
    /// handlers re-check it; pure ones cannot set it). Promotes the
    /// block when its heat crosses the threshold.
    fn tier3_for(&mut self, slot: usize) -> Option<Arc<crate::threaded::ThreadedBlock>> {
        if !self.config.threaded
            || !self.cpu.it_queue.is_empty()
            || self.bus.signals.exit_code.is_some()
        {
            return None;
        }
        if let Some(tb) = self.blocks.threaded(slot) {
            return Some(tb);
        }
        if self.blocks.heat_up(slot) {
            let insts = self.blocks.insts(slot);
            let start = self.blocks.block_start(slot);
            if let Some(tb) = threaded::build(start, &insts, self) {
                let tb = Arc::new(tb);
                self.blocks.install_threaded(slot, Arc::clone(&tb));
                self.tracer.record(self.cycles, alia_obs::EventKind::Promote { pc: start });
                return Some(tb);
            }
        }
        None
    }

    /// Starts recording a block at `pc` under generation `stamp` —
    /// unless a recording already in progress is about to continue
    /// through `pc` (a multi-instruction run reaches the recorder one
    /// step at a time; restarting here would cap every block at one
    /// entry). The per-step path feeds the recorder through
    /// [`Machine::record_entry`].
    fn ensure_record(&mut self, pc: u32, stamp: u64) {
        if let Some(rec) = &self.block_rec {
            if rec.next_pc == pc && rec.stamp == stamp {
                return;
            }
        }
        self.discard_record();
        let entries = std::mem::take(&mut self.rec_spare);
        self.block_rec = Some(BlockRec { start: pc, stamp, next_pc: pc, entries });
    }

    /// Feeds one fetched entry to the block recorder. Entries must
    /// arrive on the straight line (`pc == next_pc`) under the same
    /// generation stamp; anything else (an interrupt diverted
    /// execution, the stamp moved) discards the partial run.
    fn record_entry(&mut self, pc: u32, stamp: u64, entry: &Entry) {
        let Some(rec) = &mut self.block_rec else { return };
        if rec.next_pc != pc || rec.stamp != stamp {
            self.discard_record();
            return;
        }
        if never_in_block(&entry.instr) {
            self.finish_record();
            return;
        }
        rec.entries.push(*entry);
        rec.next_pc = pc.wrapping_add(entry.size);
        let done = ends_block(&entry.instr) || rec.entries.len() >= MAX_BLOCK_LEN;
        if done {
            self.finish_record();
        }
    }

    fn discard_record(&mut self) {
        if let Some(mut rec) = self.block_rec.take() {
            // Recycle the staging buffer: repeated record attempts stay
            // allocation-free.
            rec.entries.clear();
            self.rec_spare = rec.entries;
        }
    }

    /// Installs the recorded run (if any) into the block cache and
    /// recycles the staging buffer either way.
    fn finish_record(&mut self) {
        let Some(mut rec) = self.block_rec.take() else { return };
        if !rec.entries.is_empty() {
            let end = rec.next_pc.wrapping_sub(1);
            let demote_base = self
                .tracer
                .wants(alia_obs::category::TIER)
                .then_some(self.blocks.stats.demotions);
            let built_base = self.blocks.stats.built;
            self.blocks
                .insert(rec.start, end, rec.stamp, Arc::from(rec.entries.as_slice()));
            if self.blocks.stats.built > built_base {
                self.tracer.record(
                    self.cycles,
                    alia_obs::EventKind::BlockFill {
                        pc: rec.start,
                        len: rec.entries.len() as u32,
                    },
                );
            }
            // Overwriting a promoted slot demotes its threaded code.
            if let Some(base) = demote_base {
                if self.blocks.stats.demotions > base {
                    self.tracer
                        .record(self.cycles, alia_obs::EventKind::Demote { pc: rec.start });
                }
            }
        }
        rec.entries.clear();
        self.rec_spare = rec.entries;
    }

    /// Bounded run: like [`Machine::run`], but the bound is a *resumable
    /// boundary*, not an endpoint. A WFI sleep with no event due by
    /// `cycle_limit` parks at the bound (returning
    /// [`StopReason::CycleLimit`]) instead of fast-forwarding past it or
    /// declaring [`StopReason::WfiIdle`]; a later `run_until` resumes
    /// the sleep seamlessly. This is the node entry point of the
    /// multi-machine scheduler ([`crate::System`]): results are
    /// bit-identical no matter where the boundaries fall.
    pub fn run_until(&mut self, cycle_limit: u64) -> RunResult {
        self.run_limit = cycle_limit;
        let result = self.run(cycle_limit);
        self.run_limit = u64::MAX;
        result
    }

    /// Whether the machine is parked in a WFI sleep at a bounded-run
    /// boundary (see [`Machine::run_until`]): architecturally still
    /// inside the sleep, resumable, and unable to execute anything —
    /// in particular unable to enqueue CAN frames — before its next
    /// wakeup.
    #[must_use]
    pub fn wfi_parked(&self) -> bool {
        self.wfi_parked
    }

    /// The next cycle at which a *local* event is due: the earliest
    /// scheduled interrupt or device event (`u64::MAX` when none). For
    /// a parked machine ([`Machine::wfi_parked`]) this is the earliest
    /// cycle it could wake by itself — a multi-node scheduler uses it
    /// to stretch quanta across all-asleep stretches.
    #[must_use]
    pub fn next_local_event(&self) -> u64 {
        let sched = self.irq_schedule.last().map_or(u64::MAX, |&(c, _)| c);
        sched.min(self.bus.next_event())
    }

    /// Whether the machine is parked in a WFI sleep with no local
    /// wakeup source (no scheduled interrupt, no device event): only an
    /// externally delivered event — e.g. a frame arriving on a shared
    /// CAN wire — could ever wake it. A multi-node scheduler uses this
    /// to recognize system-wide quiescence.
    #[must_use]
    pub fn idle_parked(&self) -> bool {
        self.wfi_parked && self.next_local_event() == u64::MAX
    }

    /// Rewinds a parked machine's clock to the architectural
    /// sleep-entry cycle. Called by [`crate::System`] when it declares
    /// quiescence: the park point was a scheduler boundary (a schedule
    /// artifact), while the sleep-entry cycle is determined purely by
    /// the guest's execution — so normalized WfiIdle clocks are
    /// bit-identical across quantum sizes, orderings, idle-stretch and
    /// thread counts. Must only be used on a terminal park (the node is
    /// being halted and will never resume).
    pub(crate) fn normalize_parked_clock(&mut self) {
        if self.wfi_parked {
            self.cycles = self.wfi_entry;
        }
    }

    fn result(&self, reason: StopReason) -> RunResult {
        RunResult { reason, cycles: self.cycles, instructions: self.instret }
    }

    /// Executes one instruction (or takes one interrupt). Returns a stop
    /// reason when the machine halts.
    pub fn step(&mut self) -> Option<StopReason> {
        if self.wfi_parked {
            // A bounded run split a WFI sleep at its boundary; resume
            // the sleep without re-fetching the instruction (no cycle
            // cost — the machine was never architecturally awake).
            self.wfi_parked = false;
            return self.sleep_until_irq();
        }
        self.drain_due_irqs(self.cycles);
        self.step_predrained()
    }

    /// [`Machine::step`] after the WFI-resume check and IRQ drain —
    /// the entry point for callers (the block engine's `advance`) that
    /// have just drained at this same cycle.
    fn step_predrained(&mut self) -> Option<StopReason> {
        // Interrupts are taken between instructions (and never nested).
        if self.cpu.handler_depth == 0 || self.irq.nmi.is_some_and(|n| self.irq.is_pending(n)) {
            if let Some(irq) = self.irq.highest_pending(self.cpu.primask) {
                if self.cpu.handler_depth == 0 || Some(irq) == self.irq.nmi {
                    self.take_interrupt(irq, false);
                    return None;
                }
            }
        }
        let pc = self.cpu.pc;
        let stamp = self.code_stamp();
        // Predecode hit: replay the fetch timing, skip bytes + decode.
        // Miss: full fetch + decode, filling the cache. Both paths charge
        // identical cycles and produce identical patch accounting.
        let (entry, fetch_cycles) = if let Some(e) = self.predecode.lookup(pc, stamp) {
            match self.replay_fetch(pc, &e) {
                Ok(c) => (e, c),
                Err(stop) => return Some(stop),
            }
        } else {
            match self.fetch_decode(pc, stamp) {
                Ok(t) => t,
                Err(stop) => return Some(stop),
            }
        };
        if self.block_rec.is_some() {
            self.record_entry(pc, stamp, &entry);
        }
        self.issue(&entry, pc, fetch_cycles)
    }

    /// Issues one fetched entry: charges the fetch-overlap cycles,
    /// retires the instruction, evaluates live predication and executes.
    /// The single issue sequence shared by [`Machine::step`] and the
    /// block engine — the bit-identity contract lives here, so a change
    /// to issue semantics cannot drift between the two paths.
    #[inline]
    pub(crate) fn issue(&mut self, entry: &Entry, pc: u32, fetch_cycles: u32) -> Option<StopReason> {
        // Fetch overlaps execution in the pipeline: only the stall beyond
        // one cycle is charged (an ARM7 data-processing op is 1S total).
        self.cycles += u64::from(fetch_cycles.saturating_sub(1));
        self.instret += 1;

        // Predication: IT queue (T2) or per-instruction condition (A32).
        let predicated_cond = if entry.is_it { None } else { self.cpu.it_queue.pop_front() };
        let cond = predicated_cond.unwrap_or(entry.cond);
        if !cond.eval(self.cpu.flags) {
            // Skipped: costs the fetch plus one issue cycle.
            self.cycles += 1;
            self.cpu.pc = pc.wrapping_add(entry.size);
            return None;
        }
        self.exec(entry.instr, pc, entry.size)
    }

    /// Predecode-hit fetch: re-charges the timing of every fetch the
    /// decode path would perform (flash streaming / I-cache / TCM / MPU
    /// state advance identically) and replays the entry's flash-patch
    /// accounting, without touching bytes or the decoder.
    fn replay_fetch(&mut self, pc: u32, e: &Entry) -> Result<u32, StopReason> {
        let mode = self.config.mode;
        let mut cycles = match self.fetch_timing(pc, mode.min_instr_size()) {
            Ok((c, _, _)) => c,
            Err(f) => return Err(StopReason::Fault(f)),
        };
        self.patch.hits += u64::from(e.patch_hits);
        if e.bp_first {
            return Err(StopReason::PatchBreakpoint { addr: pc });
        }
        if mode != IsaMode::A32 && e.size == 4 {
            let c2 = match self.fetch_timing(pc + 2, 2) {
                Ok((c, _, _)) => c,
                Err(f) => return Err(StopReason::Fault(f)),
            };
            if e.bp_second {
                return Err(StopReason::PatchBreakpoint { addr: pc + 2 });
            }
            cycles += c2;
        }
        Ok(cycles)
    }

    /// Predecode-miss fetch: narrow first, widen on demand, decode from a
    /// fixed 4-byte window (no heap), install the result in the cache.
    fn fetch_decode(&mut self, pc: u32, stamp: u64) -> Result<(Entry, u32), StopReason> {
        let mode = self.config.mode;
        let first_len = mode.min_instr_size();
        let hits_before = self.patch.hits;
        let (raw, mut fetch_cycles, bp) = match self.fetch_mem(pc, first_len) {
            Ok(t) => t,
            Err(f) => return Err(StopReason::Fault(f)),
        };
        if bp {
            let patch_hits = (self.patch.hits - hits_before) as u8;
            self.predecode
                .insert(pc, stamp, Entry::breakpoint(pc, first_len, false, patch_hits));
            return Err(StopReason::PatchBreakpoint { addr: pc });
        }
        let mut window = raw;
        if mode != IsaMode::A32 && (raw as u16) >> 11 >= 0b11101 {
            let (raw2, c2, bp2) = match self.fetch_mem(pc + 2, 2) {
                Ok(t) => t,
                Err(f) => return Err(StopReason::Fault(f)),
            };
            if bp2 {
                let patch_hits = (self.patch.hits - hits_before) as u8;
                self.predecode
                    .insert(pc, stamp, Entry::breakpoint(pc, 4, true, patch_hits));
                return Err(StopReason::PatchBreakpoint { addr: pc + 2 });
            }
            fetch_cycles += c2;
            window = raw & 0xFFFF | raw2 << 16;
        }
        let (instr, isize) = match decode_window(window, mode) {
            Ok(t) => t,
            Err(_) => return Err(StopReason::DecodeError { addr: pc }),
        };
        let patch_hits = (self.patch.hits - hits_before) as u8;
        let entry = Entry::decoded(pc, instr, isize, patch_hits);
        self.predecode.insert(pc, stamp, entry);
        Ok((entry, fetch_cycles))
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, instr: Instr, pc: u32, isize: u32) -> Option<StopReason> {
        let bias = self.config.mode.pc_bias();
        let timing = self.config.timing;
        let mut next_pc = pc.wrapping_add(isize);
        let mut cost = 1u64;
        macro_rules! mem_read {
            ($addr:expr, $len:expr) => {
                match self.data_read($addr, $len) {
                    Ok((v, c)) => {
                        cost += u64::from(c) + u64::from(timing.load_internal);
                        v
                    }
                    Err(f) => return Some(StopReason::Fault(f)),
                }
            };
        }
        macro_rules! mem_write {
            ($addr:expr, $len:expr, $v:expr) => {
                match self.data_write($addr, $len, $v) {
                    Ok(c) => cost += u64::from(c) + u64::from(timing.store_internal),
                    Err(f) => return Some(StopReason::Fault(f)),
                }
            };
        }

        let mut branch_target: Option<u32> = None;
        match instr {
            Instr::Dp { op, s, rd, rn, op2, .. } => {
                let (b, shc) = self.cpu.eval_operand2(op2, bias);
                if matches!(op2, Operand2::RegShiftReg(..)) {
                    cost += 1;
                }
                let a = self.cpu.read_reg(rn, bias);
                use alia_isa::DpOp::*;
                let (result, c, v) = match op {
                    And => (a & b, shc, self.cpu.flags.v),
                    Eor => (a ^ b, shc, self.cpu.flags.v),
                    Orr => (a | b, shc, self.cpu.flags.v),
                    Bic => (a & !b, shc, self.cpu.flags.v),
                    Add => add_with_carry(a, b, false),
                    Adc => add_with_carry(a, b, self.cpu.flags.c),
                    Sub => add_with_carry(a, !b, true),
                    Sbc => add_with_carry(a, !b, self.cpu.flags.c),
                    Rsb => add_with_carry(b, !a, true),
                };
                if s {
                    self.cpu.set_nz(result);
                    self.cpu.flags.c = c;
                    self.cpu.flags.v = v;
                }
                if rd == Reg::PC {
                    branch_target = Some(result);
                } else {
                    self.cpu.write_reg(rd, result);
                }
            }
            Instr::Mov { s, rd, op2, .. } => {
                let (v, shc) = self.cpu.eval_operand2(op2, bias);
                if matches!(op2, Operand2::RegShiftReg(..)) {
                    cost += 1;
                }
                if s {
                    self.cpu.set_nz(v);
                    self.cpu.flags.c = shc;
                }
                if rd == Reg::PC {
                    branch_target = Some(v);
                } else {
                    self.cpu.write_reg(rd, v);
                }
            }
            Instr::Mvn { s, rd, op2, .. } => {
                let (v, shc) = self.cpu.eval_operand2(op2, bias);
                let v = !v;
                if s {
                    self.cpu.set_nz(v);
                    self.cpu.flags.c = shc;
                }
                self.cpu.write_reg(rd, v);
            }
            Instr::Cmp { op, rn, op2, .. } => {
                let (b, shc) = self.cpu.eval_operand2(op2, bias);
                let a = self.cpu.read_reg(rn, bias);
                use alia_isa::CmpOp::*;
                match op {
                    Cmp => {
                        let (r, c, v) = add_with_carry(a, !b, true);
                        self.cpu.set_nz(r);
                        self.cpu.flags.c = c;
                        self.cpu.flags.v = v;
                    }
                    Cmn => {
                        let (r, c, v) = add_with_carry(a, b, false);
                        self.cpu.set_nz(r);
                        self.cpu.flags.c = c;
                        self.cpu.flags.v = v;
                    }
                    Tst => {
                        self.cpu.set_nz(a & b);
                        self.cpu.flags.c = shc;
                    }
                    Teq => {
                        self.cpu.set_nz(a ^ b);
                        self.cpu.flags.c = shc;
                    }
                }
            }
            Instr::MovW { rd, imm16, .. } => self.cpu.write_reg(rd, u32::from(imm16)),
            Instr::MovT { rd, imm16, .. } => {
                let old = self.cpu.read_reg(rd, bias);
                self.cpu.write_reg(rd, old & 0xFFFF | u32::from(imm16) << 16);
            }
            Instr::Mul { s, rd, rn, rm, .. } => {
                let r = self
                    .cpu
                    .read_reg(rn, bias)
                    .wrapping_mul(self.cpu.read_reg(rm, bias));
                cost += u64::from(timing.mul_cycles - 1);
                if s {
                    self.cpu.set_nz(r);
                }
                self.cpu.write_reg(rd, r);
            }
            Instr::Mla { rd, rn, rm, ra, .. } => {
                let r = self
                    .cpu
                    .read_reg(rn, bias)
                    .wrapping_mul(self.cpu.read_reg(rm, bias))
                    .wrapping_add(self.cpu.read_reg(ra, bias));
                cost += u64::from(timing.mul_cycles);
                self.cpu.write_reg(rd, r);
            }
            Instr::Sdiv { rd, rn, rm, .. } => {
                let a = self.cpu.read_reg(rn, bias) as i32;
                let b = self.cpu.read_reg(rm, bias) as i32;
                let q = if b == 0 { 0 } else { a.wrapping_div(b) };
                cost += u64::from(timing.div_cycles(a.unsigned_abs(), b.unsigned_abs()) - 1);
                self.cpu.write_reg(rd, q as u32);
            }
            Instr::Udiv { rd, rn, rm, .. } => {
                let a = self.cpu.read_reg(rn, bias);
                let b = self.cpu.read_reg(rm, bias);
                let q = a.checked_div(b).unwrap_or(0);
                cost += u64::from(timing.div_cycles(a, b) - 1);
                self.cpu.write_reg(rd, q);
            }
            Instr::Bfi { rd, rn, lsb, width, .. } => {
                let mask = width_mask(width) << lsb;
                let old = self.cpu.read_reg(rd, bias);
                let v = self.cpu.read_reg(rn, bias) << lsb & mask;
                self.cpu.write_reg(rd, old & !mask | v);
            }
            Instr::Bfc { rd, lsb, width, .. } => {
                let mask = width_mask(width) << lsb;
                let old = self.cpu.read_reg(rd, bias);
                self.cpu.write_reg(rd, old & !mask);
            }
            Instr::Ubfx { rd, rn, lsb, width, .. } => {
                let v = self.cpu.read_reg(rn, bias) >> lsb & width_mask(width);
                self.cpu.write_reg(rd, v);
            }
            Instr::Sbfx { rd, rn, lsb, width, .. } => {
                let mut v = self.cpu.read_reg(rn, bias) >> lsb & width_mask(width);
                if width < 32 && v >> (width - 1) & 1 != 0 {
                    v |= !width_mask(width);
                }
                self.cpu.write_reg(rd, v);
            }
            Instr::Rbit { rd, rm, .. } => {
                let v = self.cpu.read_reg(rm, bias).reverse_bits();
                self.cpu.write_reg(rd, v);
            }
            Instr::Rev { rd, rm, .. } => {
                let v = self.cpu.read_reg(rm, bias).swap_bytes();
                self.cpu.write_reg(rd, v);
            }
            Instr::Ldr { size, signed, rt, addr, .. } => {
                let (ea, wb) = self.effective_address(addr, bias);
                let len = size.bytes();
                let mut v = mem_read!(ea, len);
                if signed {
                    v = match size {
                        MemSize::Byte => v as u8 as i8 as i32 as u32,
                        MemSize::Half => v as u16 as i16 as i32 as u32,
                        MemSize::Word => v,
                    };
                }
                if let Some((reg, val)) = wb {
                    self.cpu.write_reg(reg, val);
                }
                if rt == Reg::PC {
                    branch_target = Some(v);
                } else {
                    self.cpu.write_reg(rt, v);
                }
            }
            Instr::Str { size, rt, addr, .. } => {
                let (ea, wb) = self.effective_address(addr, bias);
                let v = self.cpu.read_reg(rt, bias);
                mem_write!(ea, size.bytes(), v);
                if let Some((reg, val)) = wb {
                    self.cpu.write_reg(reg, val);
                }
            }
            Instr::LdrLit { rt, offset, .. } => {
                let base = (pc.wrapping_add(bias)) & !3;
                let ea = base.wrapping_add(offset as u32);
                let v = mem_read!(ea, 4);
                if rt == Reg::PC {
                    branch_target = Some(v);
                } else {
                    self.cpu.write_reg(rt, v);
                }
            }
            Instr::Ldm { rn, writeback, regs, .. } => {
                let mut addr = self.cpu.read_reg(rn, bias);
                // All reads complete before any register is written (a
                // mid-list fault must leave the register file untouched);
                // a register list holds at most 16 entries, so the staging
                // buffer lives on the stack.
                let mut loaded = [(Reg::R0, 0u32); 16];
                let mut nloaded = 0;
                for (i, r) in regs.iter().enumerate() {
                    // Interruptible LDM (§3.1.2): abandon and restart.
                    if timing.interruptible_ldm && i > 0 && self.irq_due_mid_instr(cost) {
                        self.cycles += cost;
                        self.cpu.pc = pc; // restart the LDM afterwards
                        let irq = self
                            .irq
                            .highest_pending(self.cpu.primask)
                            .expect("irq_due_mid_instr");
                        self.take_interrupt(irq, false);
                        return None;
                    }
                    let v = mem_read!(addr, 4);
                    loaded[nloaded] = (r, v);
                    nloaded += 1;
                    addr += 4;
                }
                for &(r, v) in &loaded[..nloaded] {
                    if r == Reg::PC {
                        branch_target = Some(v);
                    } else {
                        self.cpu.write_reg(r, v);
                    }
                }
                if writeback && !regs.contains(rn) {
                    self.cpu.write_reg(rn, addr);
                }
            }
            Instr::Stm { rn, writeback, regs, .. } => {
                let mut addr = self.cpu.read_reg(rn, bias);
                for r in regs.iter() {
                    let v = self.cpu.read_reg(r, bias);
                    mem_write!(addr, 4, v);
                    addr += 4;
                }
                if writeback {
                    self.cpu.write_reg(rn, addr);
                }
            }
            Instr::Push { regs, .. } => {
                let mut addr = self.cpu.sp() - 4 * regs.len();
                self.cpu.set_sp(addr);
                for r in regs.iter() {
                    let v = self.cpu.read_reg(r, bias);
                    mem_write!(addr, 4, v);
                    addr += 4;
                }
            }
            Instr::Pop { regs, .. } => {
                let mut addr = self.cpu.sp();
                for r in regs.iter() {
                    let v = mem_read!(addr, 4);
                    addr += 4;
                    if r == Reg::PC {
                        branch_target = Some(v);
                    } else {
                        self.cpu.write_reg(r, v);
                    }
                }
                self.cpu.set_sp(addr);
            }
            Instr::B { offset, .. } => {
                branch_target = Some(pc.wrapping_add(offset as u32));
            }
            Instr::Bl { offset } => {
                self.cpu.set_lr(pc.wrapping_add(isize));
                branch_target = Some(pc.wrapping_add(offset as u32));
            }
            Instr::Bx { rm, .. } => {
                branch_target = Some(self.cpu.read_reg(rm, bias));
            }
            Instr::Cbz { nonzero, rn, offset } => {
                let v = self.cpu.read_reg(rn, bias);
                if (v == 0) != nonzero {
                    branch_target = Some(pc.wrapping_add(offset as u32));
                }
            }
            Instr::It { firstcond, mask, count } => {
                self.cpu.it_queue.load(firstcond, mask, count);
            }
            Instr::Tbb { rn, rm } => {
                let base = self.cpu.read_reg(rn, bias);
                let idx = self.cpu.read_reg(rm, bias);
                let entry = mem_read!(base.wrapping_add(idx), 1);
                branch_target = Some(pc.wrapping_add(4).wrapping_add(entry * 2));
                cost += 1;
            }
            Instr::Tbh { rn, rm } => {
                let base = self.cpu.read_reg(rn, bias);
                let idx = self.cpu.read_reg(rm, bias);
                let entry = mem_read!(base.wrapping_add(idx * 2), 2);
                branch_target = Some(pc.wrapping_add(4).wrapping_add(entry * 2));
                cost += 1;
            }
            Instr::Svc { .. } => {
                self.svc_count += 1;
            }
            Instr::Bkpt { imm } => {
                self.cycles += cost;
                return Some(StopReason::Bkpt(imm));
            }
            Instr::Nop => {}
            Instr::Cpsid => self.cpu.primask = true,
            Instr::Cpsie => self.cpu.primask = false,
            Instr::Wfi => {
                self.cycles += cost;
                self.cpu.pc = next_pc;
                // The architectural moment the core goes to sleep; kept
                // so a sleep that never ends can report its clock here
                // instead of wherever a bounded run parked it. The
                // trace records this moment (and the actual wake in
                // `sleep_until_irq`), never the bounded-run boundary
                // parks — those are scheduler artifacts, and WFI events
                // must stay bit-identical across quantum configs.
                self.wfi_entry = self.cycles;
                self.tracer.record(self.cycles, alia_obs::EventKind::WfiPark);
                return self.sleep_until_irq();
            }
            // `Instr` is non_exhaustive; anything added later is a nop
            // until the executor learns it.
            _ => {}
        }

        self.cycles += cost;
        if let Some(target) = branch_target {
            if target == EXC_RETURN_HW {
                return self.exception_return_hw();
            }
            if target == EXC_RETURN_SW {
                self.exception_return_sw();
                return None;
            }
            next_pc = target & !1;
            self.cycles += u64::from(timing.branch_taken_penalty);
        }
        self.cpu.pc = next_pc;
        if let Some(code) = self.bus.signals.exit_code {
            return Some(StopReason::MmioExit(code));
        }
        None
    }

    fn effective_address(
        &self,
        addr: alia_isa::AddrMode,
        bias: u32,
    ) -> (u32, Option<(Reg, u32)>) {
        let base = self.cpu.read_reg(addr.base, bias);
        let off = match addr.offset {
            Offset::Imm(i) => i as u32,
            Offset::Reg(rm, sh) => self.cpu.read_reg(rm, bias) << sh,
        };
        match addr.index {
            alia_isa::Index::Offset => (base.wrapping_add(off), None),
            alia_isa::Index::PreIndex => {
                let ea = base.wrapping_add(off);
                (ea, Some((addr.base, ea)))
            }
            alia_isa::Index::PostIndex => (base, Some((addr.base, base.wrapping_add(off)))),
        }
    }

    fn irq_due_mid_instr(&mut self, cost_so_far: u64) -> bool {
        self.drain_due_irqs(self.cycles + cost_so_far);
        self.cpu.handler_depth == 0
            && self.irq.highest_pending(self.cpu.primask).is_some()
    }

    fn sleep_until_irq(&mut self) -> Option<StopReason> {
        self.drain_due_irqs(self.cycles);
        if self.irq.highest_pending(self.cpu.primask).is_some() {
            // Awake: the sleep ends here (immediately, or at the
            // boundary a delivered wake event forced). The cycle is
            // schedule-independent — it fixes every later stamp the
            // determinism suites already pin.
            self.tracer.record(self.cycles, alia_obs::EventKind::WfiResume);
            return None;
        }
        // Fast-forward to the next scheduled interrupt or device event.
        let sched = self.irq_schedule.last().map(|&(cycle, _)| cycle);
        let device = self.bus.next_event();
        let target = match (sched, device) {
            (Some(s), u64::MAX) => Some(s),
            (Some(s), d) => Some(s.min(d)),
            (None, u64::MAX) => None,
            (None, d) => Some(d),
        };
        match target {
            Some(cycle) if cycle <= self.run_limit => {
                self.cycles = self.cycles.max(cycle);
                self.drain_due_irqs(self.cycles);
                self.tracer.record(self.cycles, alia_obs::EventKind::WfiResume);
                None
            }
            None if self.run_limit == u64::MAX => {
                // The sleep never ends: report the clock at the
                // architectural sleep-entry cycle, not wherever an
                // earlier bounded run happened to park it — WfiIdle
                // clocks are then schedule-independent everywhere.
                self.cycles = self.wfi_entry;
                Some(StopReason::WfiIdle)
            }
            _ => {
                // Bounded run: the next event (if any) lies beyond the
                // boundary. Park at the bound; the next step resumes
                // the sleep — a scheduler may deliver new events (e.g.
                // shared-bus frames) in between.
                self.cycles = self.cycles.max(self.run_limit);
                self.wfi_parked = true;
                None
            }
        }
    }

    fn take_interrupt(&mut self, irq: u32, tail_chained: bool) {
        self.irq.acknowledge(irq);
        self.active_irq = irq;
        let timing = self.irq.timing();
        let vector_addr = match self.irq.style() {
            IrqStyle::HardwareStacking => self.config.vector_base + 4 * irq,
            IrqStyle::SoftwarePreamble => self.config.vector_base,
        };
        let vector = self.flash.peek(vector_addr - FLASH_BASE, 4);
        match self.irq.style() {
            IrqStyle::HardwareStacking => {
                if tail_chained {
                    self.cycles += u64::from(timing.tail_chain);
                    self.irq.note_tail_chain();
                } else {
                    // Stack r0-r3, r12, lr, pc, psr — eight words; the cost
                    // is folded into `entry` (stacking and vector fetch
                    // proceed in parallel, §3.2.1).
                    let mut sp = self.cpu.sp();
                    let flags = flags_word(self.cpu.flags);
                    let frame = [
                        self.cpu.regs[0],
                        self.cpu.regs[1],
                        self.cpu.regs[2],
                        self.cpu.regs[3],
                        self.cpu.regs[12],
                        self.cpu.lr(),
                        self.cpu.pc,
                        flags,
                    ];
                    sp -= 32;
                    self.cpu.set_sp(sp);
                    for (i, w) in frame.iter().enumerate() {
                        let _ = self.data_write(sp + 4 * i as u32, 4, *w);
                    }
                    self.cycles += u64::from(timing.entry);
                }
                self.cpu.set_lr(EXC_RETURN_HW);
            }
            IrqStyle::SoftwarePreamble => {
                self.sw_frames.push(SwFrame {
                    ret_pc: self.cpu.pc,
                    flags: self.cpu.flags,
                    primask: self.cpu.primask,
                });
                self.cpu.primask = true;
                self.cpu.set_lr(EXC_RETURN_SW);
                self.cycles += u64::from(timing.entry);
            }
        }
        self.cpu.pc = vector & !1;
        self.cpu.it_queue.clear();
        if self.cpu.handler_depth == 0 || !tail_chained {
            self.cpu.handler_depth = 1;
        }
        let pend = self.pend_cycle[irq as usize].take().unwrap_or(self.cycles);
        self.latencies.push(IrqLatency {
            irq,
            pend_cycle: pend,
            entry_cycle: self.cycles,
            tail_chained,
        });
        self.tracer.record(self.cycles, alia_obs::EventKind::IrqTake { irq, tail_chained });
    }

    fn exception_return_hw(&mut self) -> Option<StopReason> {
        self.drain_due_irqs(self.cycles);
        if let Some(next) = self.irq.highest_pending(self.cpu.primask) {
            // Tail-chain: skip unstack + restack (Figure 4).
            self.take_interrupt(next, true);
            return None;
        }
        let timing = self.irq.timing();
        let sp = self.cpu.sp();
        let mut frame = [0u32; 8];
        for (i, slot) in frame.iter_mut().enumerate() {
            match self.data_read(sp + 4 * i as u32, 4) {
                Ok((v, _)) => *slot = v,
                Err(f) => return Some(StopReason::Fault(f)),
            }
        }
        self.cpu.regs[0] = frame[0];
        self.cpu.regs[1] = frame[1];
        self.cpu.regs[2] = frame[2];
        self.cpu.regs[3] = frame[3];
        self.cpu.regs[12] = frame[4];
        self.cpu.set_lr(frame[5]);
        self.cpu.pc = frame[6] & !1;
        self.cpu.flags = flags_from_word(frame[7]);
        self.cpu.set_sp(sp + 32);
        self.cycles += u64::from(timing.exit);
        self.cpu.handler_depth = 0;
        None
    }

    fn exception_return_sw(&mut self) {
        let timing = self.irq.timing();
        let frame = self.sw_frames.pop().expect("software exception return without frame");
        self.cpu.pc = frame.ret_pc;
        self.cpu.flags = frame.flags;
        self.cpu.primask = frame.primask;
        self.cycles += u64::from(timing.exit);
        self.cpu.handler_depth = self.cpu.handler_depth.saturating_sub(1);
        // No tail-chaining in the software scheme: a pending interrupt is
        // taken at the next step boundary, paying full exit + entry.
    }
}

fn width_mask(width: u8) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    }
}

fn flags_word(f: Flags) -> u32 {
    u32::from(f.n) << 31 | u32::from(f.z) << 30 | u32::from(f.c) << 29 | u32::from(f.v) << 28
}

fn flags_from_word(w: u32) -> Flags {
    Flags { n: w >> 31 & 1 != 0, z: w >> 30 & 1 != 0, c: w >> 29 & 1 != 0, v: w >> 28 & 1 != 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatchKind;
    use alia_isa::Assembler;

    fn asm_machine(mode: IsaMode, src: &str) -> Machine {
        let out = Assembler::new(mode).assemble(src).expect("assembly failed");
        let mut m = match mode {
            IsaMode::A32 => Machine::arm7_like(IsaMode::A32),
            IsaMode::T16 => Machine::arm7_like(IsaMode::T16),
            IsaMode::T2 => Machine::m3_like(),
        };
        m.load_flash(0x100, &out.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    }

    #[test]
    fn add_loop_t2() {
        let mut m = asm_machine(
            IsaMode::T2,
            "mov r0, #0
             mov r1, #10
             loop: add r0, r0, #1
             sub r1, r1, #1
             cmp r1, #0
             bne loop
             bkpt #0",
        );
        let r = m.run(100_000);
        assert_eq!(r.reason, StopReason::Bkpt(0));
        assert_eq!(m.cpu.regs[0], 10);
    }

    #[test]
    fn same_program_all_modes_same_result() {
        let src = "mov r0, #100
             mov r1, #7
             loop: sub r0, r0, r1
             cmp r0, #10
             bge loop
             bkpt #0";
        for mode in IsaMode::ALL {
            let mut m = asm_machine(mode, src);
            let r = m.run(100_000);
            assert_eq!(r.reason, StopReason::Bkpt(0), "{mode}");
            // 100, 93, ... descends by 7 until the first value below 10.
            assert_eq!(m.cpu.regs[0] as i32, 9, "{mode}");
        }
    }

    #[test]
    fn memory_and_stack() {
        let mut m = asm_machine(
            IsaMode::T2,
            "movw r0, #0
             movt r0, #0x2000
             mov r1, #42
             str r1, [r0, #4]
             ldr r2, [r0, #4]
             push {r1, r2}
             pop {r3, r4}
             bkpt #0",
        );
        let r = m.run(100_000);
        assert_eq!(r.reason, StopReason::Bkpt(0));
        assert_eq!(m.cpu.regs[2], 42);
        assert_eq!(m.cpu.regs[3], 42);
        assert_eq!(m.cpu.regs[4], 42);
        assert_eq!(m.read_sram_word(SRAM_BASE + 4), 42);
    }

    #[test]
    fn hardware_divide_runs_on_t2() {
        let mut m = asm_machine(
            IsaMode::T2,
            "mov r0, #100
             mov r1, #7
             sdiv r2, r0, r1
             udiv r3, r0, r1
             bkpt #0",
        );
        m.run(10_000);
        assert_eq!(m.cpu.regs[2], 14);
        assert_eq!(m.cpu.regs[3], 14);
    }

    #[test]
    fn it_block_predication() {
        let mut m = asm_machine(
            IsaMode::T2,
            "mov r0, #5
             cmp r0, #5
             ite eq
             mov r1, #1
             mov r1, #2
             bkpt #0",
        );
        m.run(10_000);
        assert_eq!(m.cpu.regs[1], 1);
    }

    #[test]
    fn a32_conditional_execution() {
        let mut m = asm_machine(
            IsaMode::A32,
            "mov r0, #5
             cmp r0, #9
             moveq r1, #1
             movne r1, #2
             bkpt #0",
        );
        m.run(10_000);
        assert_eq!(m.cpu.regs[1], 2);
    }

    #[test]
    fn bitband_atomic_set() {
        // Set bit 3 of SRAM byte 0 via the alias region.
        let mut m = asm_machine(
            IsaMode::T2,
            "movw r0, #3
             movt r0, #0x2200 ; alias of bit 3 of byte 0
             mov r1, #1
             str r1, [r0]
             bkpt #0",
        );
        m.run(10_000);
        assert_eq!(m.sram.read(0, 1), 0b1000);
    }

    #[test]
    fn interrupt_hardware_stacking_and_return() {
        // Vector table at 0: irq 0 vector -> 0x200.
        let mut m = Machine::m3_like();
        let main = Assembler::new(IsaMode::T2)
            .assemble("main: add r4, r4, #1\n b main")
            .unwrap();
        let handler = Assembler::new(IsaMode::T2)
            .assemble("add r5, r5, #1\n bx lr")
            .unwrap();
        m.load_flash(0x0, &[0u8; 4]); // vector 0 written below
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x200, &handler.bytes);
        m.load_flash(0, &0x200u32.to_le_bytes());
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m.schedule_irq(50, 0);
        let r = m.run(400);
        assert_eq!(r.reason, StopReason::CycleLimit);
        assert_eq!(m.cpu.regs[5], 1, "handler ran once");
        assert!(m.cpu.regs[4] > 10, "main kept running after return");
        assert_eq!(m.latencies().len(), 1);
        let lat = m.latencies()[0];
        assert!(lat.entry_cycle >= lat.pend_cycle + 12);
    }

    #[test]
    fn nmi_fires_despite_cpsid() {
        let mut m = Machine::m3_like();
        m.irq.nmi = Some(1);
        let main = Assembler::new(IsaMode::T2)
            .assemble("cpsid\nmain: add r4, r4, #1\n b main")
            .unwrap();
        let handler = Assembler::new(IsaMode::T2).assemble("mov r7, #99\n bkpt #7").unwrap();
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x200, &handler.bytes);
        m.load_flash(4, &0x200u32.to_le_bytes()); // vector for irq 1
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m.schedule_irq(40, 1);
        let r = m.run(10_000);
        assert_eq!(r.reason, StopReason::Bkpt(7));
        assert_eq!(m.cpu.regs[7], 99);
    }

    #[test]
    fn masked_irq_waits_for_cpsie() {
        let mut m = Machine::m3_like();
        let main = Assembler::new(IsaMode::T2)
            .assemble(
                "cpsid
                 mov r4, #0
                 spin: add r4, r4, #1
                 cmp r4, #20
                 bne spin
                 cpsie
                 b spin2
                 spin2: b spin2",
            )
            .unwrap();
        let handler = Assembler::new(IsaMode::T2).assemble("bkpt #9").unwrap();
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x200, &handler.bytes);
        m.load_flash(0, &0x200u32.to_le_bytes());
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m.schedule_irq(10, 0);
        let r = m.run(100_000);
        assert_eq!(r.reason, StopReason::Bkpt(9));
        // The IRQ had to wait until cpsie: latency >> entry cost.
        let lat = m.latencies()[0];
        assert!(lat.entry_cycle - lat.pend_cycle > 20);
    }

    #[test]
    fn wfi_fast_forwards_to_next_irq() {
        let mut m = Machine::m3_like();
        let main = Assembler::new(IsaMode::T2).assemble("wfi\n bkpt #1").unwrap();
        let handler = Assembler::new(IsaMode::T2).assemble("bx lr").unwrap();
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x200, &handler.bytes);
        m.load_flash(0, &0x200u32.to_le_bytes());
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m.schedule_irq(5000, 0);
        let r = m.run(100_000);
        assert_eq!(r.reason, StopReason::Bkpt(1));
        assert!(r.cycles >= 5000);
    }

    #[test]
    fn wfi_with_no_irq_idles() {
        let mut m = asm_machine(IsaMode::T2, "wfi");
        let r = m.run(1000);
        assert_eq!(r.reason, StopReason::WfiIdle);
    }

    /// A machine whose timer runs at `period` cycles, with a handler of
    /// tunable span (`work` loop iterations) on IRQ 0. The main loop
    /// programs COMPARE then CTRL and spins.
    fn timer_stress_machine(period: u32, work: u32) -> Machine {
        let mut config = MachineConfig::m3_like();
        config.devices = vec![DeviceSpec::Timer(crate::TimerConfig {
            base: crate::TIMER_BASE,
            irq: 0,
            compare: period,
        })];
        let main = Assembler::new(IsaMode::T2)
            .assemble(&format!(
                "movw r0, #0x1000
                 movt r0, #0x4000
                 movw r1, #{period}
                 str r1, [r0, #4]
                 mov r1, #3
                 str r1, [r0, #0]
                 spin: add r4, r4, #1
                 b spin"
            ))
            .unwrap();
        let handler = Assembler::new(IsaMode::T2)
            .assemble(&format!(
                "add r5, r5, #1
                 mov r6, #{work}
                 w: cmp r6, #0
                 beq out
                 sub r6, r6, #1
                 b w
                 out: bx lr"
            ))
            .unwrap();
        let mut m = Machine::new(config);
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x200, &handler.bytes);
        m.load_flash(0, &0x200u32.to_le_bytes());
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    }

    #[test]
    fn small_period_timer_irqs_are_stamped_back_to_back() {
        // A short handler and a 96-cycle period: every compare match
        // must be serviced before the next, with the pend stamps
        // advancing by exactly the period — a missed or late reload
        // would skew the arithmetic progression.
        let mut m = timer_stress_machine(96, 0);
        m.run(20_000);
        let lats: Vec<_> = m.latencies().iter().filter(|l| l.irq == 0).collect();
        assert!(lats.len() > 100, "expected a long burst, got {}", lats.len());
        let first = lats[0].pend_cycle;
        for (k, l) in lats.iter().enumerate() {
            assert_eq!(
                l.pend_cycle,
                first + 96 * k as u64,
                "fire {k} pend stamp off the periodic grid"
            );
            assert!(
                l.entry_cycle - l.pend_cycle < 96,
                "fire {k} serviced after the next compare match"
            );
        }
        // Every fire the device counted became exactly one handler
        // entry (the final fire may still be in flight at the limit).
        let fires = m.bus.device::<crate::Timer>().expect("timer attached").fires();
        assert!(
            fires - lats.len() as u64 <= 1,
            "{} fires but {} entries: compare matches were lost",
            fires,
            lats.len()
        );
        assert_eq!(u64::from(m.cpu.regs[5]), lats.len() as u64, "handler count");
    }

    #[test]
    fn saturating_timer_tail_chains_without_losing_stamps() {
        // The handler span exceeds the 48-cycle period: each compare
        // match pends while the previous handler still runs, so entries
        // tail-chain back to back and the backlog collapses — the
        // device keeps firing on its precise grid regardless.
        let mut m = timer_stress_machine(48, 24);
        m.run(20_000);
        let lats: Vec<_> = m.latencies().iter().filter(|l| l.irq == 0).collect();
        assert!(lats.len() > 50, "expected sustained service, got {}", lats.len());
        assert!(
            lats.iter().filter(|l| l.tail_chained).count() > lats.len() / 2,
            "saturated line must tail-chain most entries"
        );
        assert_eq!(u64::from(m.cpu.regs[5]), lats.len() as u64, "handler count");
        // Saturation semantics: the pending bit collapses coincident
        // fires, so the device counts at least as many fires as the
        // core took entries — never fewer.
        let fires = m.bus.device::<crate::Timer>().expect("timer attached").fires();
        assert!(fires >= lats.len() as u64);
        // The main loop is starved but never corrupted.
        assert!(m.cpu.regs[4] < 200, "main loop should be nearly starved");
    }

    #[test]
    fn snapshot_mid_block_restores_bit_identically() {
        // Snapshot taken at a bound landing inside the hot loop's basic
        // block (warm predecode + block caches, recording in flight):
        // the original, a restored machine, and a materialized fork
        // must all finish with identical cycles/instret/registers.
        let src = "mov r0, #0
             movw r1, #40000
             loop: add r0, r0, #1
             sub r1, r1, #1
             cmp r1, #0
             bne loop
             bkpt #0";
        let mut m = asm_machine(IsaMode::T2, src);
        let r = m.run_until(12_345);
        assert_eq!(r.reason, StopReason::CycleLimit, "snapshot point is mid-run");
        let snap = m.snapshot();
        let mut fork = snap.to_machine();
        let r_orig = m.run(10_000_000);
        let r_fork = fork.run(10_000_000);
        assert_eq!(r_orig.reason, StopReason::Bkpt(0));
        assert_eq!(r_fork, r_orig);
        assert_eq!(fork.cycles(), m.cycles());
        assert_eq!(fork.instructions(), m.instructions());
        assert_eq!(fork.cpu.regs, m.cpu.regs);
        // Restoring rewinds the finished machine to the snapshot point
        // and the rerun is bit-identical again.
        m.restore(&snap);
        assert_eq!(m.cycles(), snap.to_machine().cycles());
        let r_again = m.run(10_000_000);
        assert_eq!(r_again, r_orig);
        assert_eq!(m.cpu.regs, fork.cpu.regs);
    }

    #[test]
    fn snapshot_forks_diverge_on_divergent_inputs() {
        // Two forks of one snapshot, one of them with a poked SRAM cell
        // the guest reads *after* the fork point: results must differ —
        // the forks share no storage (the dirty-page copy is a real
        // copy).
        let src = "movw r0, #0x0040
             movt r0, #0x2000
             movw r1, #2000
             loop: sub r1, r1, #1
             cmp r1, #0
             bne loop
             ldr r2, [r0]
             movw r3, #2000
             add r2, r2, r3
             bkpt #0";
        let mut m = asm_machine(IsaMode::T2, src);
        m.run_until(500);
        let snap = m.snapshot();
        let mut a = snap.to_machine();
        let mut b = snap.to_machine();
        b.sram.write(0x40, 4, 1000);
        a.run(1_000_000);
        b.run(1_000_000);
        assert_eq!(a.cpu.regs[2], 2000);
        assert_eq!(b.cpu.regs[2], 3000, "fork b saw its own poked input");
        // The original is unaffected by either fork.
        m.run(1_000_000);
        assert_eq!(m.cpu.regs[2], 2000);
    }

    #[test]
    fn snapshot_of_wfi_parked_machine_resumes_exactly() {
        // Park a timer-paced sleep at a bounded-run boundary, snapshot
        // the parked machine, and check the fork wakes at the same
        // cycle with the same IRQ latency stamps as the original.
        let main = "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #5000
             str r1, [r0, #4]
             mov r1, #1
             str r1, [r0, #0]
             wfi
             bkpt #0";
        let build = || {
            let mut config = MachineConfig::m3_like();
            config.devices = vec![DeviceSpec::Timer(crate::TimerConfig {
                base: crate::TIMER_BASE,
                irq: 0,
                compare: 5000,
            })];
            let out = Assembler::new(IsaMode::T2).assemble(main).expect("assembles");
            let handler = Assembler::new(IsaMode::T2).assemble("bx lr").expect("assembles");
            let mut m = Machine::new(config);
            m.load_flash(0x100, &out.bytes);
            m.load_flash(0x200, &handler.bytes);
            m.load_flash(0, &0x200u32.to_le_bytes());
            m.set_pc(0x100);
            m.cpu.set_sp(SRAM_BASE + 0x8000);
            m
        };
        let mut m = build();
        let r = m.run_until(1_000);
        assert_eq!(r.reason, StopReason::CycleLimit);
        assert!(m.wfi_parked(), "the bound split the sleep");
        let snap = m.snapshot();
        let mut fork = snap.to_machine();
        assert!(fork.wfi_parked(), "park state travels with the snapshot");
        let r_orig = m.run(1_000_000);
        let r_fork = fork.run(1_000_000);
        assert_eq!(r_orig.reason, StopReason::Bkpt(0));
        assert_eq!(r_fork, r_orig);
        assert_eq!(fork.latencies(), m.latencies());
        assert_eq!(fork.cycles(), m.cycles());
    }

    #[test]
    fn mpu_violation_faults() {
        let mut m = Machine::high_end_like();
        let prog = Assembler::new(IsaMode::T2)
            .assemble(
                "movw r0, #0
                 movt r0, #0x2000
                 mov r1, #1
                 str r1, [r0]
                 bkpt #0",
            )
            .unwrap();
        m.load_flash(0x100, &prog.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        {
            let mpu = m.mpu.as_mut().unwrap();
            mpu.background_allowed = false;
            // Code is executable, stack is RW, but SRAM word 0 is not mapped.
            mpu.add_region(0, 0x1000, crate::Perms::RX).unwrap();
            mpu.add_region(SRAM_BASE + 0x7000, 0x1000, crate::Perms::RW).unwrap();
        }
        let r = m.run(10_000);
        assert!(matches!(
            r.reason,
            StopReason::Fault(MemFault::MpuViolation { write: true, .. })
        ));
    }

    #[test]
    fn literal_pool_load_breaks_flash_stream() {
        // ldr r0, [pc, #...] from flash data: the next fetch pays
        // non-sequential timing.
        let mut m = Machine::m3_like();
        // Layout: nop@0x100, ldr@0x102 (literal base = align4(0x102+4) =
        // 0x104), nop@0x104, nop@0x106, bkpt@0x108, pad, word@0x10C ->
        // offset = 0x10C - 0x104 = 8.
        let prog = Assembler::new(IsaMode::T2)
            .assemble(
                "nop
                 ldr r0, [pc, #8]
                 nop
                 nop
                 bkpt #0
                 .align 4
                 .word 0x12345678",
            )
            .unwrap();
        m.load_flash(0x100, &prog.bytes);
        m.set_pc(0x100);
        m.run(10_000);
        assert_eq!(m.cpu.regs[0], 0x1234_5678);
        assert!(m.flash.stats().data_accesses >= 1);
        assert!(m.flash.stats().non_sequential >= 2);
    }

    #[test]
    fn flash_patch_remaps_literal_data(){
        let mut m = Machine::m3_like();
        // ldr@0x100: literal base = align4(0x100+4) = 0x104, which is
        // exactly where the word lands after bkpt@0x102 -> offset 0.
        let prog = Assembler::new(IsaMode::T2)
            .assemble(
                "ldr r0, [pc, #0]
                 bkpt #0
                 .align 4
                 lit: .word 0x11111111",
            )
            .unwrap();
        let lit_addr = 0x100 + prog.symbols["lit"];
        m.load_flash(0x100, &prog.bytes);
        m.patch.set(0, lit_addr, PatchKind::Remap(0x2222_2222)).unwrap();
        m.set_pc(0x100);
        m.run(10_000);
        assert_eq!(m.cpu.regs[0], 0x2222_2222);
    }

    #[test]
    fn patch_breakpoint_stops_fetch() {
        let mut m = Machine::m3_like();
        let prog = Assembler::new(IsaMode::T2)
            .assemble("nop\nnop\ntarget: nop\n bkpt #0")
            .unwrap();
        let target = 0x100 + prog.symbols["target"];
        m.load_flash(0x100, &prog.bytes);
        m.patch.set(0, target & !3, PatchKind::Breakpoint).unwrap();
        m.set_pc(0x100);
        let r = m.run(10_000);
        assert!(matches!(r.reason, StopReason::PatchBreakpoint { .. }));
    }
}
