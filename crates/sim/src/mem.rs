//! The simulated memory system: flash, SRAM, TCM, bit-band alias and MMIO.
//!
//! Addresses follow a Cortex-M-like convention:
//!
//! | Region   | Base          | Notes                                      |
//! |----------|---------------|--------------------------------------------|
//! | Flash    | `0x0000_0000` | wait-stated, streaming prefetch buffer     |
//! | TCM      | `0x1000_0000` | single-cycle, optional ECC hold-and-repair |
//! | SRAM     | `0x2000_0000` | single-cycle                               |
//! | Bit-band | `0x2200_0000` | byte-per-bit alias of SRAM (paper §3.2.3)  |
//! | MMIO     | `0x4000_0000` | experiment instrumentation registers       |
//!
//! The flash model is the heart of the paper's §2.2 experiment: accesses
//! that continue the current stream cost [`FlashConfig::seq_cycles`], any
//! other access costs [`FlashConfig::nonseq_cycles`] *and* restarts the
//! stream — so a literal-pool data fetch in the middle of an instruction
//! stream is charged twice: once for itself and once by un-streaming the
//! next fetch.

use std::fmt;

/// Backing storage for the large zeroed memory arrays (flash, SRAM).
///
/// Allocating a machine used to cost two ~1 MiB `vec![0; n]` zeroings —
/// after the allocator starts recycling arena memory, that is a 2 MiB
/// memset per `Machine::new`, which dominated short experiment runs. This
/// wrapper keeps a thread-local pool of *already-zeroed* buffers: on drop
/// it zeroes only the 4 KiB pages that were actually written (tracked
/// with a one-bit-per-page map on the store path) and returns the buffer
/// to the pool; on construction it takes a pooled buffer when one fits.
/// Net effect: steady-state machine construction zeroes only the pages a
/// run touched (typically a handful), not the whole address space.
mod zeroed {
    use std::cell::RefCell;
    use std::collections::HashMap;

    /// Page granularity for dirty tracking (4 KiB).
    const PAGE_SHIFT: u32 = 12;
    /// Buffers smaller than this skip the pool (cheap to allocate fresh).
    const POOL_MIN: usize = 64 << 10;
    /// Retained buffers per size class per thread.
    const POOL_CAP: usize = 8;

    thread_local! {
        static POOL: RefCell<HashMap<usize, Vec<Vec<u8>>>> = RefCell::new(HashMap::new());
    }

    /// A zero-initialized byte array with page-granular dirty tracking.
    ///
    /// Invariant: every byte outside a dirty page is zero.
    #[derive(Debug)]
    pub struct ZeroedBytes {
        buf: Vec<u8>,
        dirty: Vec<u64>,
    }

    /// Dirty-page copy: the clone takes a pooled pre-zeroed buffer and
    /// copies only the pages the original has written — the same-content
    /// guarantee follows from the all-zero-outside-dirty invariant. This
    /// is what makes `Machine::snapshot`/`System::fork` cost
    /// proportional to the *touched* footprint (typically a few pages),
    /// not the address-space size.
    impl Clone for ZeroedBytes {
        fn clone(&self) -> ZeroedBytes {
            let mut out = ZeroedBytes::new(self.buf.len());
            let page = 1usize << PAGE_SHIFT;
            for (w, &bits) in self.dirty.iter().enumerate() {
                if bits == 0 {
                    continue;
                }
                for b in 0..64 {
                    if bits & 1 << b != 0 {
                        let start = (w * 64 + b) * page;
                        if start < self.buf.len() {
                            let end = (start + page).min(self.buf.len());
                            out.buf[start..end].copy_from_slice(&self.buf[start..end]);
                        }
                    }
                }
            }
            out.dirty.copy_from_slice(&self.dirty);
            out
        }
    }

    impl ZeroedBytes {
        pub fn new(size: usize) -> ZeroedBytes {
            let buf = if size >= POOL_MIN {
                POOL.with(|p| p.borrow_mut().get_mut(&size).and_then(Vec::pop))
                    .unwrap_or_else(|| vec![0; size])
            } else {
                vec![0; size]
            };
            let pages = size.div_ceil(1 << PAGE_SHIFT);
            ZeroedBytes { buf, dirty: vec![0; pages.div_ceil(64)] }
        }

        /// Marks the pages covering `off..off + len` as written.
        #[inline]
        pub fn mark(&mut self, off: u32, len: u32) {
            let first = off >> PAGE_SHIFT;
            let last = (off + len.max(1) - 1) >> PAGE_SHIFT;
            for p in first..=last {
                self.dirty[(p >> 6) as usize] |= 1 << (p & 63);
            }
        }

        /// Marks every page as written (out-of-band mutable access).
        pub fn mark_all(&mut self) {
            self.dirty.fill(!0);
        }

        #[inline]
        pub fn as_slice(&self) -> &[u8] {
            &self.buf
        }

        #[inline]
        pub fn as_mut_slice(&mut self) -> &mut [u8] {
            &mut self.buf
        }
    }

    impl Drop for ZeroedBytes {
        fn drop(&mut self) {
            if self.buf.len() < POOL_MIN {
                return;
            }
            // Zeroing is only worthwhile if the pool will retain the
            // buffer; a full size class means it is simply freed.
            let wanted = POOL.with(|p| {
                p.borrow().get(&self.buf.len()).is_none_or(|c| c.len() < POOL_CAP)
            });
            if !wanted {
                return;
            }
            // Restore the all-zero invariant (only dirty pages can hold
            // nonzero bytes), then hand the buffer to the pool.
            let page = 1usize << PAGE_SHIFT;
            for (w, &bits) in self.dirty.iter().enumerate() {
                if bits == 0 {
                    continue;
                }
                for b in 0..64 {
                    if bits & 1 << b != 0 {
                        let start = (w * 64 + b) * page;
                        let end = (start + page).min(self.buf.len());
                        if start < self.buf.len() {
                            self.buf[start..end].fill(0);
                        }
                    }
                }
            }
            let buf = std::mem::take(&mut self.buf);
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                let class = pool.entry(buf.len()).or_default();
                if class.len() < POOL_CAP {
                    class.push(buf);
                }
            });
        }
    }
}

use zeroed::ZeroedBytes;

/// Default flash base address.
pub const FLASH_BASE: u32 = 0x0000_0000;
/// Default TCM base address.
pub const TCM_BASE: u32 = 0x1000_0000;
/// Default SRAM base address.
pub const SRAM_BASE: u32 = 0x2000_0000;
/// Base of the bit-band alias region.
pub const BITBAND_BASE: u32 = 0x2200_0000;
/// Base of the instrumentation MMIO block.
pub const MMIO_BASE: u32 = 0x4000_0000;

/// Writing any value here halts the machine (used by bare-metal tests).
pub const MMIO_EXIT: u32 = MMIO_BASE;
/// Read: cycles executed so far (low 32 bits).
pub const MMIO_CYCLES: u32 = MMIO_BASE + 4;
/// Write: record a scalar observation (appended to a trace the host reads).
pub const MMIO_TRACE: u32 = MMIO_BASE + 8;
/// Write: assert the IRQ whose number is written.
pub const MMIO_IRQ_SET: u32 = MMIO_BASE + 12;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// No device is mapped at the address.
    Unmapped {
        /// Faulting address.
        addr: u32,
    },
    /// The MPU rejected the access.
    MpuViolation {
        /// Faulting address.
        addr: u32,
        /// Whether the access was a write.
        write: bool,
    },
    /// A detected-but-uncorrectable error (parity hit on a D-cache line).
    ParityError {
        /// Faulting address.
        addr: u32,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => write!(f, "access to unmapped address {addr:#010x}"),
            MemFault::MpuViolation { addr, write } => write!(
                f,
                "mpu violation: {} at {addr:#010x}",
                if *write { "write" } else { "read" }
            ),
            MemFault::ParityError { addr } => write!(f, "parity error at {addr:#010x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// What kind of agent performs an access (affects flash streaming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// Flash timing/behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Size in bytes.
    pub size: u32,
    /// Cycles for an access that continues the current stream.
    pub seq_cycles: u32,
    /// Cycles for an access that breaks the stream.
    pub nonseq_cycles: u32,
    /// Physical interface width in bytes (2 or 4): a 4-byte access over a
    /// 2-byte interface costs two accesses.
    pub width: u32,
}

impl Default for FlashConfig {
    /// A 30–40 MHz-class embedded flash behind a prefetch buffer, per the
    /// paper's §2.2 description: streaming hides the wait states,
    /// non-sequential accesses pay them.
    fn default() -> FlashConfig {
        FlashConfig { size: 1 << 20, seq_cycles: 1, nonseq_cycles: 3, width: 4 }
    }
}

/// Counters exposed by the flash model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Accesses that continued the stream.
    pub sequential: u64,
    /// Accesses that broke the stream.
    pub non_sequential: u64,
    /// Data (non-fetch) accesses, e.g. literal-pool loads.
    pub data_accesses: u64,
}

/// Wait-stated flash with a streaming prefetch model.
#[derive(Debug, Clone)]
pub struct Flash {
    bytes: ZeroedBytes,
    config: FlashConfig,
    stream_next: Option<u32>,
    stats: FlashStats,
    revision: u64,
}

impl Flash {
    /// Creates a flash of `config.size` zeroed bytes.
    #[must_use]
    pub fn new(config: FlashConfig) -> Flash {
        Flash {
            bytes: ZeroedBytes::new(config.size as usize),
            config,
            stream_next: None,
            stats: FlashStats::default(),
            revision: 0,
        }
    }

    /// Content revision: bumped by every mutable access to the array
    /// ([`Flash::load`], [`Flash::bytes_mut`]). Consumers caching decoded
    /// views of flash (the machine's predecode cache) compare revisions
    /// to detect staleness.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Loads an image at byte offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load(&mut self, offset: u32, image: &[u8]) {
        let o = offset as usize;
        self.bytes.mark(offset, image.len() as u32);
        self.bytes.as_mut_slice()[o..o + image.len()].copy_from_slice(image);
        self.revision += 1;
    }

    /// The behaviour parameters.
    #[must_use]
    pub fn config(&self) -> FlashConfig {
        self.config
    }

    /// Streaming counters.
    #[must_use]
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Resets streaming state and counters.
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
        self.stream_next = None;
    }

    /// Raw contents (offset-addressed).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Mutable raw contents. Conservatively counts as a content mutation
    /// (bumps [`Flash::revision`]).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.revision += 1;
        self.bytes.mark_all();
        self.bytes.as_mut_slice()
    }

    /// Performs an access of `len` bytes at byte offset `off`, returning
    /// `(value, cycles)`. The value is little-endian, zero-extended.
    pub fn access(&mut self, off: u32, len: u32, kind: Access) -> (u32, u32) {
        let cycles = self.access_timing(off, len, kind);
        (self.peek(off, len), cycles)
    }

    /// Timing-only access: advances the streaming state and counters
    /// exactly like [`Flash::access`] without extracting bytes. Used by
    /// the fetch path, where the predecode cache usually already knows
    /// the decoded instruction.
    #[inline]
    pub fn access_timing(&mut self, off: u32, len: u32, kind: Access) -> u32 {
        // Avoid the division in the overwhelmingly common case of an
        // access no wider than the interface.
        let beats = if len <= self.config.width { 1 } else { len.div_ceil(self.config.width) };
        let mut cycles = 0;
        // First beat: sequential if it continues the stream.
        let seq = self.stream_next == Some(off);
        if seq {
            self.stats.sequential += 1;
            cycles += self.config.seq_cycles;
        } else {
            self.stats.non_sequential += 1;
            cycles += self.config.nonseq_cycles;
        }
        // Remaining beats stream.
        if beats > 1 {
            cycles += (beats - 1) * self.config.seq_cycles;
            self.stats.sequential += u64::from(beats - 1);
        }
        match kind {
            Access::Fetch => {
                // The stream follows the fetch pointer.
                self.stream_next = Some(off + len);
            }
            Access::Read | Access::Write => {
                // A data access (literal pool!) steals the flash interface
                // and invalidates the prefetch stream (paper §2.2).
                self.stats.data_accesses += 1;
                self.stream_next = None;
            }
        }
        cycles
    }

    /// Forces the next access to be non-sequential (a foreign bus
    /// transaction occurred on a unified bus).
    pub fn break_stream(&mut self) {
        self.stream_next = None;
    }

    /// Reads without affecting timing state.
    #[must_use]
    pub fn peek(&self, off: u32, len: u32) -> u32 {
        read_le(self.bytes.as_slice(), off, len)
    }
}

/// Little-endian scalar read of `len.min(4)` bytes at `off`.
///
/// # Panics
///
/// Panics when the access runs past the end of `bytes` (same contract as
/// direct indexing).
#[inline]
fn read_le(bytes: &[u8], off: u32, len: u32) -> u32 {
    let o = off as usize;
    match len {
        4 => u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4-byte slice")),
        2 => u32::from(u16::from_le_bytes(bytes[o..o + 2].try_into().expect("2-byte slice"))),
        1 => u32::from(bytes[o]),
        0 => 0,
        _ => {
            let mut v = 0u32;
            for i in (0..len.min(4)).rev() {
                v = v << 8 | u32::from(bytes[(off + i) as usize]);
            }
            v
        }
    }
}

/// Little-endian scalar write of the low `len.min(4)` bytes of `value`.
#[inline]
fn write_le(bytes: &mut [u8], off: u32, len: u32, value: u32) {
    let o = off as usize;
    match len {
        4 => bytes[o..o + 4].copy_from_slice(&value.to_le_bytes()),
        2 => bytes[o..o + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        1 => bytes[o] = value as u8,
        _ => {
            for i in 0..len.min(4) {
                bytes[(off + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
    }
}

/// Single-cycle SRAM.
#[derive(Debug, Clone)]
pub struct Sram {
    bytes: ZeroedBytes,
    size: u32,
    /// Cycles per access.
    pub cycles: u32,
    revision: u64,
}

impl Sram {
    /// Creates `size` zeroed bytes of single-cycle RAM.
    #[must_use]
    pub fn new(size: u32) -> Sram {
        Sram { bytes: ZeroedBytes::new(size as usize), size, cycles: 1, revision: 0 }
    }

    /// Loads an image at byte offset `off` (host-side bulk write; bumps
    /// [`Sram::revision`]).
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    pub fn load(&mut self, off: u32, image: &[u8]) {
        let o = off as usize;
        self.bytes.mark(off, image.len() as u32);
        self.bytes.as_mut_slice()[o..o + image.len()].copy_from_slice(image);
        self.revision += 1;
    }

    /// Host-side content revision: bumped by [`Sram::bytes_mut`] (bulk /
    /// out-of-band mutation). Per-access [`Sram::write`] is *not* counted
    /// here — simulated stores are tracked by the machine's predecode
    /// watermark instead, keeping the store path cheap.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.size
    }

    /// Whether the RAM is empty (zero-sized).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Raw contents.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Mutable raw contents. Conservatively counts as a content mutation
    /// (bumps [`Sram::revision`]).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.revision += 1;
        self.bytes.mark_all();
        self.bytes.as_mut_slice()
    }

    /// Reads `len` bytes at offset `off` (little-endian).
    #[must_use]
    #[inline]
    pub fn read(&self, off: u32, len: u32) -> u32 {
        read_le(self.bytes.as_slice(), off, len)
    }

    /// Writes the low `len` bytes of `value` at offset `off`.
    ///
    /// This is the *host-side* entry point and conservatively counts as a
    /// content mutation (bumps [`Sram::revision`], invalidating any
    /// cached decoded view). The machine's own store path uses
    /// `Sram::write_raw` instead, guarded by its predecode watermark.
    pub fn write(&mut self, off: u32, len: u32, value: u32) {
        self.revision += 1;
        self.write_raw(off, len, value);
    }

    /// Simulated-store write: no revision bump (the caller is responsible
    /// for code-coherence tracking — see `Machine::note_code_write`).
    pub(crate) fn write_raw(&mut self, off: u32, len: u32, value: u32) {
        self.bytes.mark(off, len);
        write_le(self.bytes.as_mut_slice(), off, len, value);
    }
}

/// Tightly-coupled memory with optional ECC "hold-and-repair" (§3.1.3).
///
/// A poisoned word is corrected in place the next time it is read: the
/// processor is stalled for [`Tcm::repair_cycles`] and execution continues
/// without an interrupt, exactly as the paper describes.
#[derive(Debug, Clone)]
pub struct Tcm {
    ram: Sram,
    poisoned: Vec<bool>, // per word
    shadow: Vec<u8>,     // ECC-protected truth
    /// Whether ECC protection is fitted.
    pub ecc: bool,
    /// Stall cycles for one hold-and-repair event.
    pub repair_cycles: u32,
    repairs: u64,
    revision: u64,
}

impl Tcm {
    /// Creates `size` bytes of TCM with ECC enabled.
    #[must_use]
    pub fn new(size: u32) -> Tcm {
        Tcm {
            ram: Sram::new(size),
            poisoned: vec![false; (size / 4) as usize],
            shadow: vec![0; size as usize],
            ecc: true,
            repair_cycles: 4,
            repairs: 0,
            revision: 0,
        }
    }

    /// Number of hold-and-repair events so far.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Host-side content revision: bumped by out-of-band mutation
    /// ([`Tcm::load`], [`Tcm::inject_bit_flip`]). Simulated stores are
    /// tracked by the machine's predecode watermark instead.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Flips bit `bit` of the word at offset `off`, marking it poisoned
    /// (a soft error).
    pub fn inject_bit_flip(&mut self, off: u32, bit: u32) {
        let word = self.ram.read(off & !3, 4) ^ (1 << (bit & 31));
        self.ram.write_raw(off & !3, 4, word);
        self.poisoned[(off / 4) as usize] = true;
        self.revision += 1;
    }

    /// Whether the word containing `off` is currently poisoned.
    #[must_use]
    pub fn is_poisoned(&self, off: u32) -> bool {
        self.poisoned[(off / 4) as usize]
    }

    /// Reads with hold-and-repair; returns `(value, cycles)`.
    pub fn read(&mut self, off: u32, len: u32) -> (u32, u32) {
        let mut cycles = 1;
        let widx = (off / 4) as usize;
        if self.ecc && self.poisoned[widx] {
            // Repair from the ECC shadow copy, stall, continue.
            let base = off & !3;
            self.ram.write_raw(base, 4, read_le(&self.shadow, base, 4));
            self.poisoned[widx] = false;
            self.repairs += 1;
            cycles += self.repair_cycles;
        }
        (self.ram.read(off, len), cycles)
    }

    /// Writes; keeps the ECC shadow in sync. Returns cycles.
    ///
    /// This is the *host-side* entry point and conservatively counts as a
    /// content mutation (bumps [`Tcm::revision`], invalidating any cached
    /// decoded view). The machine's own store path uses
    /// `Tcm::write_raw`, guarded by its predecode watermark.
    pub fn write(&mut self, off: u32, len: u32, value: u32) -> u32 {
        self.revision += 1;
        self.write_raw(off, len, value)
    }

    /// Simulated-store write: no revision bump (the caller is responsible
    /// for code-coherence tracking — see `Machine::note_code_write`).
    pub(crate) fn write_raw(&mut self, off: u32, len: u32, value: u32) -> u32 {
        self.ram.write_raw(off, len, value);
        for i in 0..len.min(4) {
            self.shadow[(off + i) as usize] = (value >> (8 * i)) as u8;
        }
        // A full-word write clears poison (the word is rewritten whole).
        if len == 4 {
            self.poisoned[(off / 4) as usize] = false;
        }
        1
    }

    /// Loads an image and synchronizes the ECC shadow.
    pub fn load(&mut self, off: u32, image: &[u8]) {
        let o = off as usize;
        self.ram.load(off, image);
        self.shadow[o..o + image.len()].copy_from_slice(image);
        self.revision += 1;
    }
}

/// Instrumentation MMIO block — the bus device at [`MMIO_BASE`]
/// (attachment index 0 on every machine).
///
/// Register semantics are unchanged from the seed: writes to
/// [`MMIO_EXIT`] halt the machine, [`MMIO_TRACE`] appends a
/// `(value, cycle)` observation, [`MMIO_IRQ_SET`] pends an interrupt at
/// the next step boundary; reads of [`MMIO_CYCLES`] return the cycle
/// counter and [`crate::MMIO_IRQ_ACTIVE`] the IRQ being serviced. Exit
/// and IRQ requests travel through [`crate::BusSignals`] so the hot
/// loop polls them without dynamic dispatch.
#[derive(Debug, Clone, Default)]
pub struct Mmio {
    /// `(value, cycle)` pairs written to [`MMIO_TRACE`].
    pub trace: Vec<(u32, u64)>,
}

impl Mmio {
    /// Creates an empty MMIO block.
    #[must_use]
    pub fn new() -> Mmio {
        Mmio::default()
    }
}

impl crate::bus::Device for Mmio {
    fn name(&self) -> &'static str {
        "mmio"
    }

    fn read32(&mut self, off: u32, ctx: &mut crate::bus::DeviceCtx<'_>) -> u32 {
        match MMIO_BASE + (off & !3) {
            MMIO_CYCLES => ctx.now as u32,
            crate::MMIO_IRQ_ACTIVE => ctx.active_irq,
            _ => 0,
        }
    }

    fn write32(&mut self, off: u32, value: u32, ctx: &mut crate::bus::DeviceCtx<'_>) {
        match MMIO_BASE + (off & !3) {
            MMIO_EXIT => ctx.signals.request_exit(value),
            MMIO_TRACE => self.trace.push((value, ctx.now)),
            MMIO_IRQ_SET => ctx.signals.raise_irq(value),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_sequential_vs_nonsequential() {
        let mut f = Flash::new(FlashConfig { size: 4096, seq_cycles: 1, nonseq_cycles: 4, width: 4 });
        let (_, c0) = f.access(0, 4, Access::Fetch);
        assert_eq!(c0, 4); // cold
        let (_, c1) = f.access(4, 4, Access::Fetch);
        assert_eq!(c1, 1); // streaming
        let (_, c2) = f.access(64, 4, Access::Fetch);
        assert_eq!(c2, 4); // branch: stream broken
        assert_eq!(f.stats().sequential, 1);
        assert_eq!(f.stats().non_sequential, 2);
    }

    #[test]
    fn literal_pool_fetch_breaks_the_stream() {
        let mut f = Flash::new(FlashConfig::default());
        f.access(0, 4, Access::Fetch);
        f.access(4, 4, Access::Fetch);
        // Literal pool read from elsewhere in flash...
        let (_, c_data) = f.access(512, 4, Access::Read);
        assert_eq!(c_data, f.config().nonseq_cycles);
        // ...and the *next* fetch also pays the non-sequential cost.
        let (_, c_next) = f.access(8, 4, Access::Fetch);
        assert_eq!(c_next, f.config().nonseq_cycles);
        assert_eq!(f.stats().data_accesses, 1);
    }

    #[test]
    fn narrow_interface_doubles_beats() {
        let mut f = Flash::new(FlashConfig { size: 4096, seq_cycles: 1, nonseq_cycles: 3, width: 2 });
        // 4-byte fetch over a 16-bit interface: one non-seq + one seq beat.
        let (_, c) = f.access(0, 4, Access::Fetch);
        assert_eq!(c, 4);
        // 2-byte fetch: single beat.
        let (_, c) = f.access(4, 2, Access::Fetch);
        assert_eq!(c, 1);
    }

    #[test]
    fn flash_image_roundtrip() {
        let mut f = Flash::new(FlashConfig::default());
        f.load(16, &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(f.peek(16, 4), 0xDDCC_BBAA);
        assert_eq!(f.peek(18, 2), 0xDDCC);
    }

    #[test]
    fn sram_read_write() {
        let mut s = Sram::new(64);
        s.write(8, 4, 0x1122_3344);
        assert_eq!(s.read(8, 4), 0x1122_3344);
        assert_eq!(s.read(9, 1), 0x33);
        s.write(10, 2, 0xBEEF);
        assert_eq!(s.read(8, 4), 0xBEEF_3344);
    }

    #[test]
    fn tcm_hold_and_repair() {
        let mut t = Tcm::new(64);
        t.write(0, 4, 0xCAFE_F00D);
        t.inject_bit_flip(0, 7);
        assert!(t.is_poisoned(0));
        let (v, c) = t.read(0, 4);
        // Value is repaired, a stall was charged, no interrupt needed.
        assert_eq!(v, 0xCAFE_F00D);
        assert_eq!(c, 1 + t.repair_cycles);
        assert_eq!(t.repairs(), 1);
        // Subsequent read is clean and fast.
        let (v, c) = t.read(0, 4);
        assert_eq!(v, 0xCAFE_F00D);
        assert_eq!(c, 1);
    }

    #[test]
    fn tcm_without_ecc_returns_corrupt_data() {
        let mut t = Tcm::new(64);
        t.ecc = false;
        t.write(0, 4, 0xFFFF_FFFF);
        t.inject_bit_flip(0, 0);
        let (v, _) = t.read(0, 4);
        assert_eq!(v, 0xFFFF_FFFE);
        assert_eq!(t.repairs(), 0);
    }

    #[test]
    fn mmio_registers() {
        use crate::bus::{BusSignals, Device, DeviceCtx};
        let mut m = Mmio::new();
        let mut signals = BusSignals::default();
        let mut ctx = DeviceCtx { now: 9, active_irq: 2, signals: &mut signals };
        m.write32(MMIO_TRACE - MMIO_BASE, 42, &mut ctx);
        m.write32(MMIO_IRQ_SET - MMIO_BASE, 3, &mut ctx);
        m.write32(MMIO_EXIT - MMIO_BASE, 7, &mut ctx);
        assert_eq!(m.trace, vec![(42, 9)]);
        assert_eq!(m.read32(crate::MMIO_IRQ_ACTIVE - MMIO_BASE, &mut ctx), 2);
        let mut ctx = DeviceCtx { now: 1234, active_irq: 0, signals: &mut signals };
        assert_eq!(m.read32(MMIO_CYCLES - MMIO_BASE, &mut ctx), 1234);
        assert_eq!(signals.irq_requests, vec![3]);
        assert_eq!(signals.exit_code, Some(7));
    }
}
