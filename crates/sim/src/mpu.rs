//! Memory protection units: the classic 4 KB-granule model and the
//! re-engineered fine-grain model of §3.1.1 / Figure 2.
//!
//! The paper's argument is quantitative: with 4 KB minimum power-of-two
//! regions, many small OSEK tasks cannot be isolated individually, and the
//! RAM wasted by rounding regions up is substantial. [`MpuKind`] captures
//! both design points; [`Mpu::plan_region`] computes the (base, size)
//! actually programmable for a requested range, which the Figure-2
//! experiment uses to measure waste.

use std::fmt;

/// Access permissions of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl Perms {
    /// Read-only data.
    pub const RO: Perms = Perms { read: true, write: false, execute: false };
    /// Read-write data.
    pub const RW: Perms = Perms { read: true, write: true, execute: false };
    /// Executable code.
    pub const RX: Perms = Perms { read: true, write: false, execute: true };
    /// Everything.
    pub const RWX: Perms = Perms { read: true, write: true, execute: true };
}

/// Which MPU generation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpuKind {
    /// Classic MPU: power-of-two sizes with a 4 KB floor, base aligned to
    /// size, 8 regions — "typically too large for systems which have
    /// limited memory resource" (§3.1.1).
    Classic,
    /// The re-engineered fine-grain MPU: 32-byte granules, base aligned to
    /// 32 bytes, 16 regions.
    FineGrain,
}

impl MpuKind {
    /// Number of programmable regions.
    #[must_use]
    pub fn region_count(self) -> usize {
        match self {
            MpuKind::Classic => 8,
            MpuKind::FineGrain => 16,
        }
    }

    /// Minimum region size in bytes.
    #[must_use]
    pub fn min_size(self) -> u32 {
        match self {
            MpuKind::Classic => 4096,
            MpuKind::FineGrain => 32,
        }
    }
}

/// A programmed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpuRegion {
    /// Base address (aligned per the MPU kind).
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Permissions granted inside the region.
    pub perms: Perms,
}

/// Error programming an MPU region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpuError {
    /// All region slots are in use.
    OutOfRegions,
    /// The base/size combination violates the MPU's alignment rules.
    BadGeometry {
        /// Requested base.
        base: u32,
        /// Requested size.
        size: u32,
    },
}

impl fmt::Display for MpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpuError::OutOfRegions => write!(f, "all MPU region slots in use"),
            MpuError::BadGeometry { base, size } => {
                write!(f, "region base {base:#x}/size {size:#x} violates alignment rules")
            }
        }
    }
}

impl std::error::Error for MpuError {}

/// A memory protection unit.
///
/// # Examples
///
/// ```
/// use alia_sim::{Mpu, MpuKind, Perms};
/// let mut mpu = Mpu::new(MpuKind::FineGrain);
/// mpu.background_allowed = false;
/// mpu.add_region(0x2000_0000, 256, Perms::RW)?;
/// assert!(mpu.check(0x2000_0010, false, true));  // read ok
/// assert!(!mpu.check(0x2000_0100, false, true)); // outside: denied
/// # Ok::<(), alia_sim::MpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mpu {
    kind: MpuKind,
    regions: Vec<MpuRegion>,
    /// When `true`, accesses that match no region are allowed (background
    /// map); when `false` they fault.
    pub background_allowed: bool,
    violations: u64,
}

impl Mpu {
    /// Creates an MPU with no programmed regions and a permissive
    /// background map.
    #[must_use]
    pub fn new(kind: MpuKind) -> Mpu {
        Mpu { kind, regions: Vec::new(), background_allowed: true, violations: 0 }
    }

    /// The modelled generation.
    #[must_use]
    pub fn kind(&self) -> MpuKind {
        self.kind
    }

    /// Currently programmed regions.
    #[must_use]
    pub fn regions(&self) -> &[MpuRegion] {
        &self.regions
    }

    /// Violations recorded by [`Mpu::check`].
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Computes the smallest programmable `(base, size)` covering
    /// `[want_base, want_base + want_size)` under this MPU's rules.
    ///
    /// For the classic MPU the size is rounded up to a power of two of at
    /// least 4 KB and the base rounded *down* to that size's alignment —
    /// then the size is grown again until the whole range fits. For the
    /// fine-grain MPU base and size round to 32-byte granules.
    #[must_use]
    pub fn plan_region(&self, want_base: u32, want_size: u32) -> (u32, u32) {
        match self.kind {
            MpuKind::FineGrain => {
                let base = want_base & !31;
                let end = (want_base + want_size + 31) & !31;
                (base, end - base)
            }
            MpuKind::Classic => {
                let mut size = want_size.max(1).next_power_of_two().max(4096);
                loop {
                    let base = want_base & !(size - 1);
                    if base + size >= want_base + want_size {
                        return (base, size);
                    }
                    size *= 2;
                }
            }
        }
    }

    /// Programs a region to cover `[base, base+size)` (rounded per
    /// [`Mpu::plan_region`]).
    ///
    /// # Errors
    ///
    /// Returns [`MpuError::OutOfRegions`] when all slots are used.
    pub fn add_region(&mut self, base: u32, size: u32, perms: Perms) -> Result<MpuRegion, MpuError> {
        if self.regions.len() >= self.kind.region_count() {
            return Err(MpuError::OutOfRegions);
        }
        let (b, s) = self.plan_region(base, size);
        let region = MpuRegion { base: b, size: s, perms };
        self.regions.push(region);
        Ok(region)
    }

    /// Programs a region with exact geometry (no rounding).
    ///
    /// # Errors
    ///
    /// Returns [`MpuError::BadGeometry`] if base/size violate the kind's
    /// alignment rules, or [`MpuError::OutOfRegions`].
    pub fn add_region_exact(
        &mut self,
        base: u32,
        size: u32,
        perms: Perms,
    ) -> Result<(), MpuError> {
        if self.regions.len() >= self.kind.region_count() {
            return Err(MpuError::OutOfRegions);
        }
        let ok = match self.kind {
            MpuKind::Classic => {
                size.is_power_of_two() && size >= 4096 && base.is_multiple_of(size)
            }
            MpuKind::FineGrain => size >= 32 && size.is_multiple_of(32) && base.is_multiple_of(32),
        };
        if !ok {
            return Err(MpuError::BadGeometry { base, size });
        }
        self.regions.push(MpuRegion { base, size, perms });
        Ok(())
    }

    /// Clears all regions (context switch).
    pub fn clear(&mut self) {
        self.regions.clear();
    }

    /// Checks an access; records and returns `false` on violation.
    pub fn check(&mut self, addr: u32, write: bool, _privileged: bool) -> bool {
        let hit = self.regions.iter().rev().find(|r| {
            addr >= r.base && (addr - r.base) < r.size
        });
        let allowed = match hit {
            Some(r) => {
                if write {
                    r.perms.write
                } else {
                    r.perms.read
                }
            }
            None => self.background_allowed,
        };
        if !allowed {
            self.violations += 1;
        }
        allowed
    }

    /// Checks an instruction fetch.
    pub fn check_execute(&mut self, addr: u32) -> bool {
        let hit = self
            .regions
            .iter()
            .rev()
            .find(|r| addr >= r.base && (addr - r.base) < r.size);
        let allowed = hit.map_or(self.background_allowed, |r| r.perms.execute);
        if !allowed {
            self.violations += 1;
        }
        allowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_rounds_to_4k_power_of_two() {
        let mpu = Mpu::new(MpuKind::Classic);
        // A 100-byte stack at an odd address costs a full 4 KB region.
        let (b, s) = mpu.plan_region(0x2000_1234, 100);
        assert_eq!(s, 4096);
        assert_eq!(b % 4096, 0);
        assert!(b <= 0x2000_1234 && b + s >= 0x2000_1234 + 100);
        // A 5 KB buffer costs 8 KB.
        let (_, s) = mpu.plan_region(0x2000_0000, 5 * 1024);
        assert_eq!(s, 8192);
    }

    #[test]
    fn classic_grows_when_alignment_straddles() {
        let mpu = Mpu::new(MpuKind::Classic);
        // Range straddling a 4 KB boundary forces a bigger region.
        let (b, s) = mpu.plan_region(0x2000_0F00, 512);
        assert!(b + s >= 0x2000_0F00 + 512);
        assert!(s >= 4096);
        assert!(s.is_power_of_two());
    }

    #[test]
    fn fine_grain_rounds_to_32b() {
        let mpu = Mpu::new(MpuKind::FineGrain);
        let (b, s) = mpu.plan_region(0x2000_1234, 100);
        assert_eq!(b, 0x2000_1220);
        assert_eq!(s % 32, 0);
        assert!(s <= 160, "waste should be under two granules, got {s}");
    }

    #[test]
    fn region_slots_are_limited() {
        let mut mpu = Mpu::new(MpuKind::Classic);
        for i in 0..8 {
            mpu.add_region(i * 0x10000, 4096, Perms::RW).unwrap();
        }
        assert!(matches!(
            mpu.add_region(0x9_0000, 4096, Perms::RW),
            Err(MpuError::OutOfRegions)
        ));
    }

    #[test]
    fn permission_checks_and_violation_count() {
        let mut mpu = Mpu::new(MpuKind::FineGrain);
        mpu.background_allowed = false;
        mpu.add_region(0x2000_0000, 64, Perms::RO).unwrap();
        mpu.add_region(0x2000_0040, 64, Perms::RW).unwrap();
        assert!(mpu.check(0x2000_0000, false, false));
        assert!(!mpu.check(0x2000_0000, true, false)); // RO write
        assert!(mpu.check(0x2000_0040, true, false));
        assert!(!mpu.check(0x3000_0000, false, false)); // no background
        assert_eq!(mpu.violations(), 2);
    }

    #[test]
    fn execute_permission() {
        let mut mpu = Mpu::new(MpuKind::FineGrain);
        mpu.background_allowed = false;
        mpu.add_region(0, 1024, Perms::RX).unwrap();
        mpu.add_region(0x2000_0000, 1024, Perms::RW).unwrap();
        assert!(mpu.check_execute(0x100));
        assert!(!mpu.check_execute(0x2000_0100)); // data is not executable
    }

    #[test]
    fn exact_geometry_validation() {
        let mut c = Mpu::new(MpuKind::Classic);
        assert!(c.add_region_exact(0x1000, 4096, Perms::RW).is_ok());
        assert!(c.add_region_exact(0x1000, 2048, Perms::RW).is_err()); // < 4 KB
        assert!(c.add_region_exact(0x800, 4096, Perms::RW).is_err()); // misaligned
        let mut f = Mpu::new(MpuKind::FineGrain);
        assert!(f.add_region_exact(0x20, 32, Perms::RW).is_ok());
        assert!(f.add_region_exact(0x10, 32, Perms::RW).is_err());
    }

    #[test]
    fn later_regions_take_precedence() {
        let mut mpu = Mpu::new(MpuKind::FineGrain);
        mpu.add_region(0x2000_0000, 1024, Perms::RO).unwrap();
        mpu.add_region(0x2000_0100, 32, Perms::RW).unwrap(); // carve-out
        assert!(mpu.check(0x2000_0100, true, false));
        assert!(!mpu.check(0x2000_0000, true, false));
    }
}
