//! The flash patch and breakpoint unit (§3.2.2).
//!
//! Up to eight words of flash can be remapped on the fly — to new values
//! (calibration constants, code patches) or to breakpoints — without
//! reprogramming the flash array. The unit sits on the fetch and data-read
//! paths of the flash.

/// What a patch slot does when its address is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchKind {
    /// Substitute this word for the flash contents.
    Remap(u32),
    /// Treat a fetch from this word as a breakpoint.
    Breakpoint,
}

/// The flash patch unit: at most [`FlashPatch::SLOTS`] word-granular
/// entries.
///
/// # Examples
///
/// ```
/// use alia_sim::{FlashPatch, PatchKind};
/// let mut fp = FlashPatch::new();
/// fp.set(0, 0x100, PatchKind::Remap(0xCAFE_F00D))?;
/// assert_eq!(fp.lookup(0x100), Some(PatchKind::Remap(0xCAFE_F00D)));
/// assert_eq!(fp.lookup(0x104), None);
/// # Ok::<(), alia_sim::PatchError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlashPatch {
    entries: [Option<(u32, PatchKind)>; FlashPatch::SLOTS],
    /// Count of fetches/reads that were patched.
    pub hits: u64,
    active: u32,
    revision: u64,
}

/// Errors programming the patch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchError {
    /// Slot index out of range.
    BadSlot {
        /// The offending slot.
        slot: usize,
    },
    /// Patch addresses must be word-aligned.
    Misaligned {
        /// The offending address.
        addr: u32,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::BadSlot { slot } => write!(f, "patch slot {slot} out of range"),
            PatchError::Misaligned { addr } => write!(f, "patch address {addr:#x} not word-aligned"),
        }
    }
}

impl std::error::Error for PatchError {}

impl FlashPatch {
    /// Number of remappable words, per the paper.
    pub const SLOTS: usize = 8;

    /// An empty unit.
    #[must_use]
    pub fn new() -> FlashPatch {
        FlashPatch::default()
    }

    /// Programming revision: bumped by every [`FlashPatch::set`] /
    /// [`FlashPatch::clear`]. Consumers caching patched views of flash
    /// (the machine's predecode cache) compare revisions to detect
    /// staleness.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Whether no slot is programmed (fast-path check on fetch/read).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active == 0
    }

    /// Programs slot `slot` to patch the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError`] for a bad slot or unaligned address.
    pub fn set(&mut self, slot: usize, addr: u32, kind: PatchKind) -> Result<(), PatchError> {
        if slot >= FlashPatch::SLOTS {
            return Err(PatchError::BadSlot { slot });
        }
        if !addr.is_multiple_of(4) {
            return Err(PatchError::Misaligned { addr });
        }
        if self.entries[slot].is_none() {
            self.active += 1;
        }
        self.entries[slot] = Some((addr, kind));
        self.revision += 1;
        Ok(())
    }

    /// Clears a slot.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::BadSlot`] for an out-of-range slot.
    pub fn clear(&mut self, slot: usize) -> Result<(), PatchError> {
        if slot >= FlashPatch::SLOTS {
            return Err(PatchError::BadSlot { slot });
        }
        if self.entries[slot].is_some() {
            self.active -= 1;
        }
        self.entries[slot] = None;
        self.revision += 1;
        Ok(())
    }

    /// Looks up the patch covering the word containing `addr`, if any
    /// (does not count a hit).
    #[must_use]
    pub fn lookup(&self, addr: u32) -> Option<PatchKind> {
        let word = addr & !3;
        self.entries.iter().flatten().find(|(a, _)| *a == word).map(|(_, k)| *k)
    }

    /// Applies patching to a value read from flash at `addr` (`len` 2 or
    /// 4): substitutes remapped bytes and reports breakpoints.
    ///
    /// Returns `(value, is_breakpoint)`.
    pub fn apply(&mut self, addr: u32, len: u32, raw: u32) -> (u32, bool) {
        if self.active == 0 {
            return (raw, false);
        }
        match self.lookup(addr) {
            None => (raw, false),
            Some(PatchKind::Breakpoint) => {
                self.hits += 1;
                (raw, true)
            }
            Some(PatchKind::Remap(v)) => {
                self.hits += 1;
                let byte_in_word = addr & 3;
                let shifted = v >> (8 * byte_in_word);
                let masked = match len {
                    1 => shifted & 0xFF,
                    2 => shifted & 0xFFFF,
                    _ => v,
                };
                (masked, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_substitutes_words_and_halfwords() {
        let mut fp = FlashPatch::new();
        fp.set(0, 0x40, PatchKind::Remap(0xAABB_CCDD)).unwrap();
        assert_eq!(fp.apply(0x40, 4, 0).0, 0xAABB_CCDD);
        assert_eq!(fp.apply(0x40, 2, 0).0, 0xCCDD);
        assert_eq!(fp.apply(0x42, 2, 0).0, 0xAABB);
        assert_eq!(fp.apply(0x44, 4, 0x1234).0, 0x1234);
        assert_eq!(fp.hits, 3);
    }

    #[test]
    fn breakpoints_report() {
        let mut fp = FlashPatch::new();
        fp.set(3, 0x80, PatchKind::Breakpoint).unwrap();
        let (_, bp) = fp.apply(0x80, 2, 0xBF00);
        assert!(bp);
        let (_, bp) = fp.apply(0x84, 2, 0xBF00);
        assert!(!bp);
    }

    #[test]
    fn slot_limits_enforced() {
        let mut fp = FlashPatch::new();
        for s in 0..FlashPatch::SLOTS {
            fp.set(s, (s as u32) * 4, PatchKind::Breakpoint).unwrap();
        }
        assert!(fp.set(8, 0, PatchKind::Breakpoint).is_err());
        assert!(fp.set(0, 2, PatchKind::Breakpoint).is_err()); // unaligned
        fp.clear(0).unwrap();
        assert_eq!(fp.lookup(0), None);
    }
}
