//! Predecoded-instruction cache: decode each instruction address once.
//!
//! Guest instruction memory is effectively immutable between flash loads,
//! flash-patch updates and (rare) self-modifying stores, yet the seed
//! interpreter re-fetched bytes and re-ran the table decoder on every
//! single step. This module adds the classic interpreter remedy — a
//! *predecode cache* (translation cache without code generation): a
//! direct-mapped table from instruction address to the already-decoded
//! [`Instr`], its size, its condition field and its flash-patch
//! interaction, consulted by `Machine::step` before falling back to
//! `alia_isa::decode_window`.
//!
//! # Semantics preservation
//!
//! The cache changes *host* cost only. Everything the cycle model
//! observes is replayed on every step, hit or miss:
//!
//! * fetch **timing** (flash streaming/prefetch state, I-cache lookups and
//!   parity recoveries, TCM hold-and-repair, MPU execute checks) — the
//!   machine re-runs the timing side of every fetch; only the byte
//!   extraction and decode are skipped,
//! * **flash-patch accounting** — a cached entry remembers how many patch
//!   hits the fetch contributed and whether it was a patch breakpoint, so
//!   `FlashPatch::hits` and `StopReason::PatchBreakpoint` are identical,
//! * **condition evaluation** — IT-block and A32 predication read live CPU
//!   state, never the cache.
//!
//! # Invalidation
//!
//! Entries are guarded by a *generation stamp* — the sum of revision
//! counters on everything that can change what bytes decode to:
//!
//! * [`crate::Flash::revision`] — flash image loads / host mutation,
//! * [`crate::FlashPatch::revision`] — patch slot programming,
//! * [`crate::Sram::revision`] / [`crate::Tcm::revision`] — host-side RAM
//!   mutation (bulk loads, fault injection),
//! * the machine's *code-write generation*, bumped when a simulated store
//!   (including bit-band aliases) lands inside the cache's **watermark**
//!   — the address interval covered by cached instructions. Stores
//!   outside the watermark (the overwhelmingly common case: data is data)
//!   cost two compares.
//!
//! A stamp mismatch clears the whole table on the next lookup. This is
//! deliberately coarse: correct first, cheap second — invalidation events
//! are rare compared to steps, and a full clear makes the consistency
//! argument one sentence long.

use alia_isa::{Cond, Instr};

/// Total entry count (covers 4 KiB of contiguous Thumb code before
/// aliasing; kernels in this repo are a few hundred bytes). In the
/// default 2-way layout these are organised as [`SETS`] sets of two
/// ways; the direct-mapped ablation layout indexes them flat.
const SLOTS: usize = 2048;

/// Set count of the 2-way layout (same storage, half the indices).
const SETS: usize = SLOTS / 2;

/// Marker for an empty slot (instruction addresses are even, so an odd
/// tag can never match a real PC).
const TAG_EMPTY: u32 = 1;

/// One predecoded instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    tag: u32,
    /// The decoded instruction (meaningless for breakpoint entries).
    pub instr: Instr,
    /// Encoded size in bytes (2 or 4).
    pub size: u32,
    /// Precomputed `instr.cond()`.
    pub cond: Cond,
    /// Precomputed `matches!(instr, Instr::It { .. })`.
    pub is_it: bool,
    /// Flash-patch breakpoint on the first fetched unit (stop before
    /// executing; `StopReason::PatchBreakpoint { addr: pc }`).
    pub bp_first: bool,
    /// Flash-patch breakpoint on the second halfword of a wide Thumb
    /// instruction (`StopReason::PatchBreakpoint { addr: pc + 2 }`).
    pub bp_second: bool,
    /// `FlashPatch::hits` increments this fetch contributes per step.
    pub patch_hits: u8,
}

impl Entry {
    /// An entry for a successfully decoded instruction at `pc`.
    pub(crate) fn decoded(pc: u32, instr: Instr, size: u32, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr,
            size,
            cond: instr.cond(),
            is_it: matches!(instr, Instr::It { .. }),
            bp_first: false,
            bp_second: false,
            patch_hits,
        }
    }

    /// An entry for a flash-patch breakpoint at `pc`; `second` marks a
    /// breakpoint on the second halfword of a wide Thumb instruction.
    pub(crate) fn breakpoint(pc: u32, size: u32, second: bool, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr: Instr::Nop,
            size,
            cond: Cond::Al,
            is_it: false,
            bp_first: !second,
            bp_second: second,
            patch_hits,
        }
    }
}

/// Hit/miss/invalidation counters for the predecode cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell back to the full fetch + decode path.
    pub misses: u64,
    /// Whole-cache invalidations (generation-stamp changes).
    pub invalidations: u64,
}

/// The predecoded-instruction cache. See the module docs.
#[derive(Debug, Clone)]
pub struct Predecode {
    /// Entry storage, allocated lazily on the first insert so a machine
    /// that never steps (or runs with the cache disabled) pays nothing
    /// at construction. Indexed flat (direct-mapped) or as [`SETS`]
    /// pairs of ways (2-way).
    entries: Vec<Entry>,
    /// One MRU bit per set in the 2-way layout (bit set = way 1 was
    /// used more recently, so way 0 is the eviction victim).
    mru: Vec<u64>,
    stamp: u64,
    /// Watermark over cached instruction bytes: lowest / highest address
    /// (inclusive) any live entry covers. `lo > hi` means empty.
    lo: u32,
    hi: u32,
    enabled: bool,
    two_way: bool,
    stats: PredecodeStats,
}

impl Predecode {
    pub(crate) fn new(enabled: bool, two_way: bool) -> Predecode {
        Predecode {
            entries: Vec::new(),
            mru: Vec::new(),
            stamp: 0,
            lo: u32::MAX,
            hi: 0,
            enabled,
            two_way,
            stats: PredecodeStats::default(),
        }
    }

    /// Whether lookups are served (disabling also drops all entries).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.drop_entries();
    }

    /// Whether the 2-way set-associative layout is active (`false` =
    /// direct-mapped ablation layout).
    #[must_use]
    pub fn two_way(&self) -> bool {
        self.two_way
    }

    pub(crate) fn set_two_way(&mut self, two_way: bool) {
        if self.two_way != two_way {
            self.two_way = two_way;
            self.drop_entries();
        }
    }

    /// Counters since construction (cleared entries keep their counts).
    #[must_use]
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    fn slot(pc: u32) -> usize {
        (pc >> 1) as usize & (SLOTS - 1)
    }

    fn set(pc: u32) -> usize {
        (pc >> 1) as usize & (SETS - 1)
    }

    fn drop_entries(&mut self) {
        for e in &mut self.entries {
            e.tag = TAG_EMPTY;
        }
        self.lo = u32::MAX;
        self.hi = 0;
    }

    /// Looks up `pc` under generation `stamp`, copying out the entry on a
    /// hit. A stamp change clears the table first.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, stamp: u64) -> Option<Entry> {
        if !self.enabled {
            return None;
        }
        if self.stamp != stamp {
            self.drop_entries();
            self.stamp = stamp;
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        if self.two_way {
            let set = Predecode::set(pc);
            if let Some(pair) = self.entries.get(set * 2..set * 2 + 2) {
                let way = if pair[0].tag == pc {
                    0
                } else if pair[1].tag == pc {
                    1
                } else {
                    self.stats.misses += 1;
                    return None;
                };
                let e = pair[way];
                self.mark_mru(set, way);
                self.stats.hits += 1;
                return Some(e);
            }
            self.stats.misses += 1;
            return None;
        }
        match self.entries.get(Predecode::slot(pc)) {
            Some(e) if e.tag == pc => {
                self.stats.hits += 1;
                Some(*e)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records `way` as most-recently-used for `set`. The store is
    /// skipped when the bit already agrees — in steady-state straight
    ///-line execution the same way hits repeatedly, so the hot path
    /// does one load and no store.
    #[inline]
    fn mark_mru(&mut self, set: usize, way: usize) {
        let word = &mut self.mru[set >> 6];
        let bit = 1u64 << (set & 63);
        let want = way == 1;
        if (*word & bit != 0) != want {
            *word ^= bit;
        }
    }

    /// Installs an entry for `pc` filled under generation `stamp`.
    pub(crate) fn insert(&mut self, pc: u32, stamp: u64, entry: Entry) {
        if !self.enabled || self.stamp != stamp {
            return;
        }
        if self.entries.is_empty() {
            self.entries = vec![
                Entry {
                    tag: TAG_EMPTY,
                    instr: Instr::Nop,
                    size: 0,
                    cond: Cond::Al,
                    is_it: false,
                    bp_first: false,
                    bp_second: false,
                    patch_hits: 0,
                };
                SLOTS
            ];
            self.mru = vec![0; SETS.div_ceil(64)];
        }
        debug_assert_eq!(entry.tag, pc);
        let end = pc + entry.size.max(2) - 1;
        self.lo = self.lo.min(pc);
        self.hi = self.hi.max(end);
        if self.two_way {
            let set = Predecode::set(pc);
            let base = set * 2;
            // Way choice: matching tag, then an empty way, then the LRU
            // victim.
            let way = if self.entries[base].tag == pc {
                0
            } else if self.entries[base + 1].tag == pc {
                1
            } else if self.entries[base].tag == TAG_EMPTY {
                0
            } else if self.entries[base + 1].tag == TAG_EMPTY {
                1
            } else if self.mru[set >> 6] & 1 << (set & 63) != 0 {
                0 // way 1 is MRU: evict way 0
            } else {
                1
            };
            self.entries[base + way] = entry;
            self.mark_mru(set, way);
        } else {
            self.entries[Predecode::slot(pc)] = entry;
        }
    }

    /// Whether a write of `len` bytes at `addr` overlaps any cached
    /// instruction (the self-modifying-code check on the store path).
    #[must_use]
    pub(crate) fn covers(&self, addr: u32, len: u32) -> bool {
        // Empty cache has lo > hi, which can never satisfy both bounds.
        addr <= self.hi && addr.saturating_add(len.max(1) - 1) >= self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u32, size: u32) -> Entry {
        Entry::decoded(pc, Instr::Nop, size, 0)
    }

    #[test]
    fn miss_then_hit() {
        let mut p = Predecode::new(true, true);
        assert!(p.lookup(0x100, 5).is_none()); // first lookup sets stamp
        p.insert(0x100, 5, entry(0x100, 2));
        assert!(p.lookup(0x100, 5).is_some());
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn stamp_change_clears() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        assert!(p.lookup(0x100, 2).is_none(), "new stamp invalidates");
        assert!(p.lookup(0x100, 2).is_none(), "entry really gone");
        assert_eq!(p.stats().invalidations, 2, "construction stamp 0 -> 1 -> 2");
    }

    #[test]
    fn stale_insert_is_dropped() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 2, entry(0x100, 2)); // filled under a newer stamp
        assert!(p.lookup(0x100, 1).is_none());
    }

    #[test]
    fn disabled_never_hits() {
        let mut p = Predecode::new(false, true);
        p.insert(0x100, 0, entry(0x100, 2));
        assert!(p.lookup(0x100, 0).is_none());
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn watermark_covers_cached_range_only() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        assert!(!p.covers(0x100, 4), "empty cache covers nothing");
        p.insert(0x100, 1, entry(0x100, 4));
        p.insert(0x200, 1, entry(0x200, 2));
        assert!(p.covers(0x100, 1));
        assert!(p.covers(0x103, 1));
        assert!(p.covers(0x201, 1));
        assert!(p.covers(0xFE, 8), "straddling write detected");
        assert!(!p.covers(0x202, 4));
        assert!(!p.covers(0, 0x100));
    }

    #[test]
    fn direct_mapped_aliasing_slots_overwrite() {
        let mut p = Predecode::new(true, false);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        // Same slot: 0x100 and 0x100 + 2*SLOTS alias.
        let alias = 0x100 + 2 * SLOTS as u32;
        p.insert(alias, 1, entry(alias, 2));
        assert!(p.lookup(0x100, 1).is_none());
        assert!(p.lookup(alias, 1).is_some());
    }

    #[test]
    fn two_way_holds_a_pair_of_aliases() {
        // In the 2-way layout two addresses mapping to the same set
        // coexist — the main-loop/handler aliasing case.
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        let alias = 0x100 + 2 * SETS as u32;
        p.insert(0x100, 1, entry(0x100, 2));
        p.insert(alias, 1, entry(alias, 2));
        assert!(p.lookup(0x100, 1).is_some(), "way 0 survives");
        assert!(p.lookup(alias, 1).is_some(), "way 1 coexists");
    }

    #[test]
    fn two_way_evicts_the_lru_way() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        let a = 0x100;
        let b = a + 2 * SETS as u32;
        let c = b + 2 * SETS as u32;
        p.insert(a, 1, entry(a, 2));
        p.insert(b, 1, entry(b, 2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(p.lookup(a, 1).is_some());
        p.insert(c, 1, entry(c, 2));
        assert!(p.lookup(a, 1).is_some(), "MRU way kept");
        assert!(p.lookup(b, 1).is_none(), "LRU way evicted");
        assert!(p.lookup(c, 1).is_some());
    }

    #[test]
    fn switching_associativity_drops_entries() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        p.set_two_way(false);
        assert!(p.lookup(0x100, 1).is_none(), "layout change invalidates");
        p.insert(0x100, 1, entry(0x100, 2));
        assert!(p.lookup(0x100, 1).is_some());
    }
}
