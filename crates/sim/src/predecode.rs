//! Predecoded-instruction cache: decode each instruction address once.
//!
//! Guest instruction memory is effectively immutable between flash loads,
//! flash-patch updates and (rare) self-modifying stores, yet the seed
//! interpreter re-fetched bytes and re-ran the table decoder on every
//! single step. This module adds the classic interpreter remedy — a
//! *predecode cache* (translation cache without code generation): a
//! direct-mapped table from instruction address to the already-decoded
//! [`Instr`], its size, its condition field and its flash-patch
//! interaction, consulted by `Machine::step` before falling back to
//! `alia_isa::decode_window`.
//!
//! On top of it sits a second level, the `BlockCache`: decoded
//! *basic blocks* — straight-line runs of `Entry`s up to the next
//! branch, IT header or other control transfer — recorded as a side
//! effect of per-step execution and replayed whole by the machine's
//! block engine (`Machine::run`), which hoists the per-step dispatch
//! tax (IRQ drain, generation-stamp recomputation, cache probe) to
//! block boundaries and chains block exits so hot loops run
//! cache-to-cache without re-probing. The instruction-level cache stays
//! as the fill path: blocks are built from the entries it produced.
//!
//! # Semantics preservation
//!
//! The cache changes *host* cost only. Everything the cycle model
//! observes is replayed on every step, hit or miss:
//!
//! * fetch **timing** (flash streaming/prefetch state, I-cache lookups and
//!   parity recoveries, TCM hold-and-repair, MPU execute checks) — the
//!   machine re-runs the timing side of every fetch; only the byte
//!   extraction and decode are skipped,
//! * **flash-patch accounting** — a cached entry remembers how many patch
//!   hits the fetch contributed and whether it was a patch breakpoint, so
//!   `FlashPatch::hits` and `StopReason::PatchBreakpoint` are identical,
//! * **condition evaluation** — IT-block and A32 predication read live CPU
//!   state, never the cache.
//!
//! # Invalidation
//!
//! Entries are guarded by a *generation stamp* — the sum of revision
//! counters on everything that can change what bytes decode to:
//!
//! * [`crate::Flash::revision`] — flash image loads / host mutation,
//! * [`crate::FlashPatch::revision`] — patch slot programming,
//! * [`crate::Sram::revision`] / [`crate::Tcm::revision`] — host-side RAM
//!   mutation (bulk loads, fault injection),
//! * the machine's *code-write generation*, bumped when a simulated store
//!   (including bit-band aliases) lands inside the cache's **watermark**
//!   — the address interval covered by cached instructions. Stores
//!   outside the watermark (the overwhelmingly common case: data is data)
//!   cost two compares.
//!
//! A stamp mismatch clears the whole table on the next lookup. This is
//! deliberately coarse: correct first, cheap second — invalidation events
//! are rare compared to steps, and a full clear makes the consistency
//! argument one sentence long.

use std::sync::Arc;

use alia_isa::{Cond, Instr};

/// Total entry count (covers 4 KiB of contiguous Thumb code before
/// aliasing; kernels in this repo are a few hundred bytes). In the
/// default 2-way layout these are organised as [`SETS`] sets of two
/// ways; the direct-mapped ablation layout indexes them flat.
const SLOTS: usize = 2048;

/// Set count of the 2-way layout (same storage, half the indices).
const SETS: usize = SLOTS / 2;

/// Marker for an empty slot (instruction addresses are even, so an odd
/// tag can never match a real PC).
const TAG_EMPTY: u32 = 1;

/// One predecoded instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    tag: u32,
    /// The decoded instruction (meaningless for breakpoint entries).
    pub instr: Instr,
    /// Encoded size in bytes (2 or 4).
    pub size: u32,
    /// Precomputed `instr.cond()`.
    pub cond: Cond,
    /// Precomputed `matches!(instr, Instr::It { .. })`.
    pub is_it: bool,
    /// Flash-patch breakpoint on the first fetched unit (stop before
    /// executing; `StopReason::PatchBreakpoint { addr: pc }`).
    pub bp_first: bool,
    /// Flash-patch breakpoint on the second halfword of a wide Thumb
    /// instruction (`StopReason::PatchBreakpoint { addr: pc + 2 }`).
    pub bp_second: bool,
    /// `FlashPatch::hits` increments this fetch contributes per step.
    pub patch_hits: u8,
}

impl Entry {
    /// An entry for a successfully decoded instruction at `pc`.
    pub(crate) fn decoded(pc: u32, instr: Instr, size: u32, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr,
            size,
            cond: instr.cond(),
            is_it: matches!(instr, Instr::It { .. }),
            bp_first: false,
            bp_second: false,
            patch_hits,
        }
    }

    /// An entry for a flash-patch breakpoint at `pc`; `second` marks a
    /// breakpoint on the second halfword of a wide Thumb instruction.
    pub(crate) fn breakpoint(pc: u32, size: u32, second: bool, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr: Instr::Nop,
            size,
            cond: Cond::Al,
            is_it: false,
            bp_first: !second,
            bp_second: second,
            patch_hits,
        }
    }
}

/// Hit/miss/invalidation counters for the predecode cache, plus the
/// block-level counters of the block cache that sits on top of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from the instruction-level cache.
    pub hits: u64,
    /// Lookups that fell back to the full fetch + decode path.
    pub misses: u64,
    /// Whole-cache invalidations (generation-stamp changes).
    pub invalidations: u64,
    /// Basic blocks recorded into the block cache.
    pub blocks_built: u64,
    /// Blocks executed from the block cache (entry probes and chain
    /// follows both count — one per block dispatched).
    pub block_hits: u64,
    /// Block exits that entered their successor through a verified
    /// chain link instead of a fresh cache probe.
    pub chain_follows: u64,
    /// Mid-block splits back to the per-step slow path because the
    /// cycle budget ran out (a due scheduled interrupt, a device event
    /// from `next_event`, or a `run_until` bound).
    pub budget_splits: u64,
    /// Blocks promoted to the tier-3 threaded-code representation
    /// (heat-directed; see `crates/sim/src/threaded.rs`).
    pub blocks_promoted: u64,
    /// Superinstruction pairs fused across all promoted blocks.
    pub fused_pairs: u64,
    /// Block executions dispatched through the threaded tier (a subset
    /// of `block_hits`).
    pub threaded_dispatches: u64,
    /// Threaded blocks dropped back to tier-2 (invalidation, eviction,
    /// or the tier being disabled).
    pub demotions: u64,
    /// Instructions retired inside tier-3 threaded dispatches (the
    /// tier-occupancy numerator; `block_instrs` is the tier-2 share,
    /// and everything else retired on the per-step path).
    pub threaded_instrs: u64,
    /// Instructions retired inside tier-2 entry-at-a-time block
    /// dispatches.
    pub block_instrs: u64,
    /// Statically-free fetch plans across all promoted blocks (tier-3
    /// fetch-plan mix: the op's fetch is window-resident, zero cycles).
    pub plans_free: u64,
    /// Single-refill fetch plans across all promoted blocks (one
    /// planned streaming refill replaces the full timing walk).
    pub plans_refill: u64,
    /// Slow fetch plans across all promoted blocks (unplannable —
    /// replay `fetch_timing` in full).
    pub plans_slow: u64,
}

impl PredecodeStats {
    /// Accumulates `other` into `self`, field by field — the one place
    /// that knows every counter, so aggregated reports cannot silently
    /// drop a newly added field.
    pub fn merge(&mut self, other: &PredecodeStats) {
        let PredecodeStats {
            hits,
            misses,
            invalidations,
            blocks_built,
            block_hits,
            chain_follows,
            budget_splits,
            blocks_promoted,
            fused_pairs,
            threaded_dispatches,
            demotions,
            threaded_instrs,
            block_instrs,
            plans_free,
            plans_refill,
            plans_slow,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.invalidations += invalidations;
        self.blocks_built += blocks_built;
        self.block_hits += block_hits;
        self.chain_follows += chain_follows;
        self.budget_splits += budget_splits;
        self.blocks_promoted += blocks_promoted;
        self.fused_pairs += fused_pairs;
        self.threaded_dispatches += threaded_dispatches;
        self.demotions += demotions;
        self.threaded_instrs += threaded_instrs;
        self.block_instrs += block_instrs;
        self.plans_free += plans_free;
        self.plans_refill += plans_refill;
        self.plans_slow += plans_slow;
    }
}

/// The predecoded-instruction cache. See the module docs.
#[derive(Debug, Clone)]
pub struct Predecode {
    /// Entry storage, allocated lazily on the first insert so a machine
    /// that never steps (or runs with the cache disabled) pays nothing
    /// at construction. Indexed flat (direct-mapped) or as [`SETS`]
    /// pairs of ways (2-way).
    entries: Vec<Entry>,
    /// One MRU bit per set in the 2-way layout (bit set = way 1 was
    /// used more recently, so way 0 is the eviction victim).
    mru: Vec<u64>,
    stamp: u64,
    /// Watermark over cached instruction bytes: lowest / highest address
    /// (inclusive) any live entry covers. `lo > hi` means empty.
    lo: u32,
    hi: u32,
    enabled: bool,
    two_way: bool,
    stats: PredecodeStats,
}

impl Predecode {
    pub(crate) fn new(enabled: bool, two_way: bool) -> Predecode {
        Predecode {
            entries: Vec::new(),
            mru: Vec::new(),
            stamp: 0,
            lo: u32::MAX,
            hi: 0,
            enabled,
            two_way,
            stats: PredecodeStats::default(),
        }
    }

    /// Whether lookups are served (disabling also drops all entries).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.drop_entries();
    }

    /// Whether the 2-way set-associative layout is active (`false` =
    /// direct-mapped ablation layout).
    #[must_use]
    pub fn two_way(&self) -> bool {
        self.two_way
    }

    pub(crate) fn set_two_way(&mut self, two_way: bool) {
        if self.two_way != two_way {
            self.two_way = two_way;
            self.drop_entries();
        }
    }

    /// Counters since construction (cleared entries keep their counts).
    #[must_use]
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    fn slot(pc: u32) -> usize {
        (pc >> 1) as usize & (SLOTS - 1)
    }

    fn set(pc: u32) -> usize {
        (pc >> 1) as usize & (SETS - 1)
    }

    fn drop_entries(&mut self) {
        for e in &mut self.entries {
            e.tag = TAG_EMPTY;
        }
        self.lo = u32::MAX;
        self.hi = 0;
    }

    /// Looks up `pc` under generation `stamp`, copying out the entry on a
    /// hit. A stamp change clears the table first.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, stamp: u64) -> Option<Entry> {
        if !self.enabled {
            return None;
        }
        if self.stamp != stamp {
            self.drop_entries();
            self.stamp = stamp;
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        if self.two_way {
            let set = Predecode::set(pc);
            if let Some(pair) = self.entries.get(set * 2..set * 2 + 2) {
                let way = if pair[0].tag == pc {
                    0
                } else if pair[1].tag == pc {
                    1
                } else {
                    self.stats.misses += 1;
                    return None;
                };
                let e = pair[way];
                self.mark_mru(set, way);
                self.stats.hits += 1;
                return Some(e);
            }
            self.stats.misses += 1;
            return None;
        }
        match self.entries.get(Predecode::slot(pc)) {
            Some(e) if e.tag == pc => {
                self.stats.hits += 1;
                Some(*e)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Records `way` as most-recently-used for `set`. The store is
    /// skipped when the bit already agrees — in steady-state straight
    ///-line execution the same way hits repeatedly, so the hot path
    /// does one load and no store.
    #[inline]
    fn mark_mru(&mut self, set: usize, way: usize) {
        let word = &mut self.mru[set >> 6];
        let bit = 1u64 << (set & 63);
        let want = way == 1;
        if (*word & bit != 0) != want {
            *word ^= bit;
        }
    }

    /// Installs an entry for `pc` filled under generation `stamp`.
    pub(crate) fn insert(&mut self, pc: u32, stamp: u64, entry: Entry) {
        if !self.enabled || self.stamp != stamp {
            return;
        }
        if self.entries.is_empty() {
            self.entries = vec![
                Entry {
                    tag: TAG_EMPTY,
                    instr: Instr::Nop,
                    size: 0,
                    cond: Cond::Al,
                    is_it: false,
                    bp_first: false,
                    bp_second: false,
                    patch_hits: 0,
                };
                SLOTS
            ];
            self.mru = vec![0; SETS.div_ceil(64)];
        }
        debug_assert_eq!(entry.tag, pc);
        let end = pc + entry.size.max(2) - 1;
        self.lo = self.lo.min(pc);
        self.hi = self.hi.max(end);
        if self.two_way {
            let set = Predecode::set(pc);
            let base = set * 2;
            // Way choice: matching tag, then an empty way, then the LRU
            // victim.
            let way = if self.entries[base].tag == pc {
                0
            } else if self.entries[base + 1].tag == pc {
                1
            } else if self.entries[base].tag == TAG_EMPTY {
                0
            } else if self.entries[base + 1].tag == TAG_EMPTY {
                1
            } else if self.mru[set >> 6] & 1 << (set & 63) != 0 {
                0 // way 1 is MRU: evict way 0
            } else {
                1
            };
            self.entries[base + way] = entry;
            self.mark_mru(set, way);
        } else {
            self.entries[Predecode::slot(pc)] = entry;
        }
    }

    /// Whether a write of `len` bytes at `addr` overlaps any cached
    /// instruction (the self-modifying-code check on the store path).
    #[must_use]
    pub(crate) fn covers(&self, addr: u32, len: u32) -> bool {
        // Empty cache has lo > hi, which can never satisfy both bounds.
        addr <= self.hi && addr.saturating_add(len.max(1) - 1) >= self.lo
    }
}

// ---------------------------------------------------------------------
// Block cache
// ---------------------------------------------------------------------

/// Slot count of the block cache (direct-mapped on the block's start
/// address).
const BLOCK_SLOTS: usize = 512;

/// Longest recorded block, in instructions. Blocks need not end in a
/// branch: a run that reaches this cap is installed as-is and chains to
/// its fall-through successor.
pub(crate) const MAX_BLOCK_LEN: usize = 64;

/// Chain links kept per block: `(exit pc, successor slot)` hints. Two
/// cover the common conditional-branch shape (taken target and
/// fall-through).
const BLOCK_LINKS: usize = 2;

/// Marker for an unset chain link.
const LINK_EMPTY: (u32, u16) = (TAG_EMPTY, u16::MAX);

/// Block-level counters (merged into [`PredecodeStats`] by the machine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct BlockStats {
    pub built: u64,
    pub hits: u64,
    pub chain_follows: u64,
    pub budget_splits: u64,
    pub promoted: u64,
    pub fused_pairs: u64,
    pub threaded_dispatches: u64,
    pub demotions: u64,
    pub threaded_instrs: u64,
    pub block_instrs: u64,
    pub plans_free: u64,
    pub plans_refill: u64,
    pub plans_slow: u64,
}

/// One cached basic block: a straight-line run of predecoded entries.
#[derive(Debug, Clone)]
struct Block {
    /// Start address (`TAG_EMPTY` = empty slot).
    start: u32,
    /// The decoded run. Shared (`Arc`) so the executor can iterate the
    /// slice while the machine is mutably borrowed.
    insts: Arc<[Entry]>,
    /// Chain hints: `(exit pc, successor slot)`. A hint is only a
    /// shortcut — the executor re-verifies the successor's start tag,
    /// so stale hints (evicted or cleared successors) fail safe.
    links: [(u32, u16); BLOCK_LINKS],
    /// Tier-2 dispatch count, driving heat-directed promotion: when it
    /// reaches [`crate::threaded::PROMOTE_HEAT`] the machine lowers the
    /// block to threaded code. Saturating; reset with the slot.
    heat: u32,
    /// The tier-3 lowering, once promoted. Shares the slot's lifetime:
    /// every path that clears or evicts the slot drops it (demotion),
    /// so the tier-2 invalidation story covers tier 3 verbatim.
    threaded: Option<Arc<crate::threaded::ThreadedBlock>>,
    /// Total dispatches of this slot's current block (tier 2 and
    /// tier 3; self-loop rounds included) — the profiler's per-block
    /// heat. Reset with the slot.
    dispatches: u64,
}

/// The basic-block cache. Invalidation mirrors [`Predecode`]: the same
/// generation stamp guards all blocks (a mismatch clears the table),
/// and a watermark over every cached block's byte range feeds the
/// store-path self-modifying-code check. See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct BlockCache {
    /// Slot storage, allocated lazily on the first insert.
    blocks: Vec<Block>,
    /// Shared empty run (cleared slots point here so their old entries
    /// are freed).
    empty: Arc<[Entry]>,
    stamp: u64,
    /// Watermark over cached block bytes (inclusive; `lo > hi` = empty).
    /// Kept separately from the instruction cache's watermark because
    /// the two levels clear independently.
    lo: u32,
    hi: u32,
    enabled: bool,
    pub(crate) stats: BlockStats,
}

impl BlockCache {
    pub(crate) fn new(enabled: bool) -> BlockCache {
        BlockCache {
            blocks: Vec::new(),
            empty: Arc::from(Vec::new().into_boxed_slice()),
            stamp: 0,
            lo: u32::MAX,
            hi: 0,
            enabled,
            stats: BlockStats::default(),
        }
    }

    /// Whether block recording and dispatch are enabled.
    #[must_use]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.drop_blocks();
    }

    fn slot(pc: u32) -> usize {
        (pc >> 1) as usize & (BLOCK_SLOTS - 1)
    }

    fn drop_blocks(&mut self) {
        let mut demoted = 0;
        for b in &mut self.blocks {
            b.start = TAG_EMPTY;
            b.insts = Arc::clone(&self.empty);
            b.links = [LINK_EMPTY; BLOCK_LINKS];
            b.heat = 0;
            b.dispatches = 0;
            demoted += u64::from(b.threaded.take().is_some());
        }
        self.stats.demotions += demoted;
        self.lo = u32::MAX;
        self.hi = 0;
    }

    /// Looks up the block starting at `pc` under generation `stamp`,
    /// returning its slot. A stamp change clears the table first.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, stamp: u64) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        if self.stamp != stamp {
            self.drop_blocks();
            self.stamp = stamp;
            return None;
        }
        self.probe(pc)
    }

    /// Probes for the block starting at `pc` without stamp validation
    /// (the caller has already validated this pass's stamp).
    #[inline]
    pub(crate) fn probe(&self, pc: u32) -> Option<usize> {
        let slot = BlockCache::slot(pc);
        match self.blocks.get(slot) {
            Some(b) if b.start == pc => Some(slot),
            _ => None,
        }
    }

    /// The block's decoded run (cheap `Arc` clone).
    #[inline]
    pub(crate) fn insts(&self, slot: usize) -> Arc<[Entry]> {
        Arc::clone(&self.blocks[slot].insts)
    }

    /// Installs a block recorded under generation `stamp`, covering the
    /// byte range `[pc, end]` (inclusive). Returns its slot.
    pub(crate) fn insert(&mut self, pc: u32, end: u32, stamp: u64, insts: Arc<[Entry]>) {
        if !self.enabled || self.stamp != stamp || insts.is_empty() {
            return;
        }
        if self.blocks.is_empty() {
            self.blocks = vec![
                Block {
                    start: TAG_EMPTY,
                    insts: Arc::clone(&self.empty),
                    links: [LINK_EMPTY; BLOCK_LINKS],
                    heat: 0,
                    threaded: None,
                    dispatches: 0,
                };
                BLOCK_SLOTS
            ];
        }
        self.lo = self.lo.min(pc);
        self.hi = self.hi.max(end);
        let slot = BlockCache::slot(pc);
        self.stats.demotions += u64::from(self.blocks[slot].threaded.is_some());
        self.blocks[slot] = Block {
            start: pc,
            insts,
            links: [LINK_EMPTY; BLOCK_LINKS],
            heat: 0,
            threaded: None,
            dispatches: 0,
        };
        self.stats.built += 1;
    }

    /// Follows `slot`'s chain hint for an exit at `pc`, verifying that
    /// the hinted successor still starts there.
    #[inline]
    pub(crate) fn follow(&self, slot: usize, pc: u32) -> Option<usize> {
        for &(exit, succ) in &self.blocks[slot].links {
            if exit == pc {
                let s = succ as usize;
                if self.blocks.get(s).is_some_and(|b| b.start == pc) {
                    return Some(s);
                }
                return None;
            }
        }
        None
    }

    /// Records the chain hint `exit pc -> successor slot` on `slot`,
    /// evicting the older hint when both are taken.
    pub(crate) fn link(&mut self, slot: usize, pc: u32, succ: usize) {
        let links = &mut self.blocks[slot].links;
        let pos = links
            .iter()
            .position(|&(exit, _)| exit == pc || exit == TAG_EMPTY)
            .unwrap_or(BLOCK_LINKS - 1);
        // Keep the most recent hint in front so `follow` finds the hot
        // exit first.
        links[pos] = links[0];
        links[0] = (pc, succ as u16);
    }

    /// Whether a write of `len` bytes at `addr` overlaps any cached
    /// block (the store-path self-modifying-code check, alongside
    /// [`Predecode::covers`]).
    #[must_use]
    pub(crate) fn covers(&self, addr: u32, len: u32) -> bool {
        addr <= self.hi && addr.saturating_add(len.max(1) - 1) >= self.lo
    }

    // -----------------------------------------------------------------
    // Tier-3 promotion
    // -----------------------------------------------------------------

    /// The block's threaded lowering, if promoted (cheap `Arc` clone).
    #[inline]
    pub(crate) fn threaded(&self, slot: usize) -> Option<Arc<crate::threaded::ThreadedBlock>> {
        self.blocks[slot].threaded.clone()
    }

    /// Bumps the slot's dispatch heat, returning `true` exactly once:
    /// on the dispatch that reaches the promotion threshold.
    #[inline]
    pub(crate) fn heat_up(&mut self, slot: usize) -> bool {
        let b = &mut self.blocks[slot];
        b.heat = b.heat.saturating_add(1);
        b.heat == crate::threaded::PROMOTE_HEAT
    }

    /// The block's start address (valid for occupied slots).
    #[inline]
    pub(crate) fn block_start(&self, slot: usize) -> u32 {
        self.blocks[slot].start
    }

    /// Installs a threaded lowering on `slot`, counting the promotion
    /// and its fused pairs.
    pub(crate) fn install_threaded(
        &mut self,
        slot: usize,
        tb: Arc<crate::threaded::ThreadedBlock>,
    ) {
        self.stats.promoted += 1;
        self.stats.fused_pairs += u64::from(tb.fused);
        self.stats.plans_free += u64::from(tb.plans_free);
        self.stats.plans_refill += u64::from(tb.plans_refill);
        self.stats.plans_slow += u64::from(tb.plans_slow);
        self.blocks[slot].threaded = Some(tb);
    }

    /// Charges `n` dispatches to the slot's per-block profile counter.
    #[inline]
    pub(crate) fn note_dispatch(&mut self, slot: usize, n: u64) {
        self.blocks[slot].dispatches += n;
    }

    /// Per-block profile of every occupied slot:
    /// `(start, instruction count, dispatches, promoted, fused pairs)`.
    /// Unsorted — callers rank by whatever axis they report.
    pub(crate) fn profile(&self) -> Vec<(u32, u32, u64, bool, u32)> {
        self.blocks
            .iter()
            .filter(|b| b.start != TAG_EMPTY)
            .map(|b| {
                (
                    b.start,
                    b.insts.len() as u32,
                    b.dispatches,
                    b.threaded.is_some(),
                    b.threaded.as_ref().map_or(0, |t| t.fused),
                )
            })
            .collect()
    }

    /// Drops every threaded lowering (and its heat) while keeping the
    /// tier-2 blocks — the tier-3 disable path.
    pub(crate) fn drop_threaded(&mut self) {
        let mut demoted = 0;
        for b in &mut self.blocks {
            b.heat = 0;
            demoted += u64::from(b.threaded.take().is_some());
        }
        self.stats.demotions += demoted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u32, size: u32) -> Entry {
        Entry::decoded(pc, Instr::Nop, size, 0)
    }

    #[test]
    fn miss_then_hit() {
        let mut p = Predecode::new(true, true);
        assert!(p.lookup(0x100, 5).is_none()); // first lookup sets stamp
        p.insert(0x100, 5, entry(0x100, 2));
        assert!(p.lookup(0x100, 5).is_some());
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn stamp_change_clears() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        assert!(p.lookup(0x100, 2).is_none(), "new stamp invalidates");
        assert!(p.lookup(0x100, 2).is_none(), "entry really gone");
        assert_eq!(p.stats().invalidations, 2, "construction stamp 0 -> 1 -> 2");
    }

    #[test]
    fn stale_insert_is_dropped() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 2, entry(0x100, 2)); // filled under a newer stamp
        assert!(p.lookup(0x100, 1).is_none());
    }

    #[test]
    fn disabled_never_hits() {
        let mut p = Predecode::new(false, true);
        p.insert(0x100, 0, entry(0x100, 2));
        assert!(p.lookup(0x100, 0).is_none());
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn watermark_covers_cached_range_only() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        assert!(!p.covers(0x100, 4), "empty cache covers nothing");
        p.insert(0x100, 1, entry(0x100, 4));
        p.insert(0x200, 1, entry(0x200, 2));
        assert!(p.covers(0x100, 1));
        assert!(p.covers(0x103, 1));
        assert!(p.covers(0x201, 1));
        assert!(p.covers(0xFE, 8), "straddling write detected");
        assert!(!p.covers(0x202, 4));
        assert!(!p.covers(0, 0x100));
    }

    #[test]
    fn direct_mapped_aliasing_slots_overwrite() {
        let mut p = Predecode::new(true, false);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        // Same slot: 0x100 and 0x100 + 2*SLOTS alias.
        let alias = 0x100 + 2 * SLOTS as u32;
        p.insert(alias, 1, entry(alias, 2));
        assert!(p.lookup(0x100, 1).is_none());
        assert!(p.lookup(alias, 1).is_some());
    }

    #[test]
    fn two_way_holds_a_pair_of_aliases() {
        // In the 2-way layout two addresses mapping to the same set
        // coexist — the main-loop/handler aliasing case.
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        let alias = 0x100 + 2 * SETS as u32;
        p.insert(0x100, 1, entry(0x100, 2));
        p.insert(alias, 1, entry(alias, 2));
        assert!(p.lookup(0x100, 1).is_some(), "way 0 survives");
        assert!(p.lookup(alias, 1).is_some(), "way 1 coexists");
    }

    #[test]
    fn two_way_evicts_the_lru_way() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        let a = 0x100;
        let b = a + 2 * SETS as u32;
        let c = b + 2 * SETS as u32;
        p.insert(a, 1, entry(a, 2));
        p.insert(b, 1, entry(b, 2));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(p.lookup(a, 1).is_some());
        p.insert(c, 1, entry(c, 2));
        assert!(p.lookup(a, 1).is_some(), "MRU way kept");
        assert!(p.lookup(b, 1).is_none(), "LRU way evicted");
        assert!(p.lookup(c, 1).is_some());
    }

    #[test]
    fn switching_associativity_drops_entries() {
        let mut p = Predecode::new(true, true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        p.set_two_way(false);
        assert!(p.lookup(0x100, 1).is_none(), "layout change invalidates");
        p.insert(0x100, 1, entry(0x100, 2));
        assert!(p.lookup(0x100, 1).is_some());
    }

    fn run(pcs: &[(u32, u32)]) -> Arc<[Entry]> {
        pcs.iter().map(|&(pc, size)| entry(pc, size)).collect::<Vec<_>>().into()
    }

    #[test]
    fn block_miss_insert_hit() {
        let mut b = BlockCache::new(true);
        assert!(b.lookup(0x100, 5).is_none());
        b.insert(0x100, 0x105, 5, run(&[(0x100, 2), (0x102, 4)]));
        let slot = b.lookup(0x100, 5).expect("block cached");
        assert_eq!(b.insts(slot).len(), 2);
        assert_eq!(b.stats.built, 1);
    }

    #[test]
    fn block_stamp_change_clears() {
        let mut b = BlockCache::new(true);
        b.lookup(0x100, 1);
        b.insert(0x100, 0x101, 1, run(&[(0x100, 2)]));
        assert!(b.lookup(0x100, 2).is_none(), "new stamp invalidates");
        assert!(b.lookup(0x100, 2).is_none(), "block really gone");
        assert!(!b.covers(0x100, 2), "watermark cleared with the blocks");
    }

    #[test]
    fn block_empty_runs_are_rejected() {
        let mut b = BlockCache::new(true);
        b.lookup(0x100, 1);
        b.insert(0x100, 0x100, 1, run(&[]));
        assert!(b.lookup(0x100, 1).is_none(), "empty blocks would never advance");
    }

    #[test]
    fn block_watermark_covers_cached_ranges() {
        let mut b = BlockCache::new(true);
        b.lookup(0x100, 1);
        assert!(!b.covers(0x100, 4));
        b.insert(0x100, 0x107, 1, run(&[(0x100, 4), (0x104, 4)]));
        assert!(b.covers(0x106, 1));
        assert!(b.covers(0xFE, 8), "straddling write detected");
        assert!(!b.covers(0x108, 4));
    }

    #[test]
    fn block_chain_links_verify_their_successor() {
        let mut b = BlockCache::new(true);
        b.lookup(0x100, 1);
        b.insert(0x100, 0x103, 1, run(&[(0x100, 4)]));
        b.insert(0x200, 0x203, 1, run(&[(0x200, 4)]));
        let a = b.probe(0x100).unwrap();
        let c = b.probe(0x200).unwrap();
        assert!(b.follow(a, 0x200).is_none(), "no hint yet");
        b.link(a, 0x200, c);
        assert_eq!(b.follow(a, 0x200), Some(c));
        // Evict the successor's slot with an aliasing block: the stale
        // hint must fail the start-tag verify instead of dispatching it.
        let alias = 0x200 + 2 * BLOCK_SLOTS as u32;
        b.insert(alias, alias + 3, 1, run(&[(alias, 4)]));
        assert!(b.follow(a, 0x200).is_none(), "stale link fails safe");
    }

    #[test]
    fn block_links_keep_the_two_hottest_exits() {
        let mut b = BlockCache::new(true);
        b.lookup(0x100, 1);
        b.insert(0x100, 0x103, 1, run(&[(0x100, 4)]));
        b.insert(0x200, 0x203, 1, run(&[(0x200, 4)]));
        b.insert(0x300, 0x303, 1, run(&[(0x300, 4)]));
        b.insert(0x400, 0x403, 1, run(&[(0x400, 4)]));
        let a = b.probe(0x100).unwrap();
        b.link(a, 0x200, b.probe(0x200).unwrap());
        b.link(a, 0x300, b.probe(0x300).unwrap());
        assert!(b.follow(a, 0x200).is_some());
        assert!(b.follow(a, 0x300).is_some());
        b.link(a, 0x400, b.probe(0x400).unwrap());
        assert!(b.follow(a, 0x400).is_some(), "newest hint kept");
        assert!(b.follow(a, 0x300).is_some(), "previous front demoted, kept");
        assert!(b.follow(a, 0x200).is_none(), "oldest hint evicted");
    }

    #[test]
    fn disabled_block_cache_never_hits() {
        let mut b = BlockCache::new(false);
        b.insert(0x100, 0x101, 0, run(&[(0x100, 2)]));
        assert!(b.lookup(0x100, 0).is_none());
    }
}
