//! Predecoded-instruction cache: decode each instruction address once.
//!
//! Guest instruction memory is effectively immutable between flash loads,
//! flash-patch updates and (rare) self-modifying stores, yet the seed
//! interpreter re-fetched bytes and re-ran the table decoder on every
//! single step. This module adds the classic interpreter remedy — a
//! *predecode cache* (translation cache without code generation): a
//! direct-mapped table from instruction address to the already-decoded
//! [`Instr`], its size, its condition field and its flash-patch
//! interaction, consulted by `Machine::step` before falling back to
//! `alia_isa::decode_window`.
//!
//! # Semantics preservation
//!
//! The cache changes *host* cost only. Everything the cycle model
//! observes is replayed on every step, hit or miss:
//!
//! * fetch **timing** (flash streaming/prefetch state, I-cache lookups and
//!   parity recoveries, TCM hold-and-repair, MPU execute checks) — the
//!   machine re-runs the timing side of every fetch; only the byte
//!   extraction and decode are skipped,
//! * **flash-patch accounting** — a cached entry remembers how many patch
//!   hits the fetch contributed and whether it was a patch breakpoint, so
//!   `FlashPatch::hits` and `StopReason::PatchBreakpoint` are identical,
//! * **condition evaluation** — IT-block and A32 predication read live CPU
//!   state, never the cache.
//!
//! # Invalidation
//!
//! Entries are guarded by a *generation stamp* — the sum of revision
//! counters on everything that can change what bytes decode to:
//!
//! * [`crate::Flash::revision`] — flash image loads / host mutation,
//! * [`crate::FlashPatch::revision`] — patch slot programming,
//! * [`crate::Sram::revision`] / [`crate::Tcm::revision`] — host-side RAM
//!   mutation (bulk loads, fault injection),
//! * the machine's *code-write generation*, bumped when a simulated store
//!   (including bit-band aliases) lands inside the cache's **watermark**
//!   — the address interval covered by cached instructions. Stores
//!   outside the watermark (the overwhelmingly common case: data is data)
//!   cost two compares.
//!
//! A stamp mismatch clears the whole table on the next lookup. This is
//! deliberately coarse: correct first, cheap second — invalidation events
//! are rare compared to steps, and a full clear makes the consistency
//! argument one sentence long.

use alia_isa::{Cond, Instr};

/// Number of direct-mapped slots (covers 4 KiB of contiguous Thumb code
/// before aliasing; kernels in this repo are a few hundred bytes).
const SLOTS: usize = 2048;

/// Marker for an empty slot (instruction addresses are even, so an odd
/// tag can never match a real PC).
const TAG_EMPTY: u32 = 1;

/// One predecoded instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    tag: u32,
    /// The decoded instruction (meaningless for breakpoint entries).
    pub instr: Instr,
    /// Encoded size in bytes (2 or 4).
    pub size: u32,
    /// Precomputed `instr.cond()`.
    pub cond: Cond,
    /// Precomputed `matches!(instr, Instr::It { .. })`.
    pub is_it: bool,
    /// Flash-patch breakpoint on the first fetched unit (stop before
    /// executing; `StopReason::PatchBreakpoint { addr: pc }`).
    pub bp_first: bool,
    /// Flash-patch breakpoint on the second halfword of a wide Thumb
    /// instruction (`StopReason::PatchBreakpoint { addr: pc + 2 }`).
    pub bp_second: bool,
    /// `FlashPatch::hits` increments this fetch contributes per step.
    pub patch_hits: u8,
}

impl Entry {
    /// An entry for a successfully decoded instruction at `pc`.
    pub(crate) fn decoded(pc: u32, instr: Instr, size: u32, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr,
            size,
            cond: instr.cond(),
            is_it: matches!(instr, Instr::It { .. }),
            bp_first: false,
            bp_second: false,
            patch_hits,
        }
    }

    /// An entry for a flash-patch breakpoint at `pc`; `second` marks a
    /// breakpoint on the second halfword of a wide Thumb instruction.
    pub(crate) fn breakpoint(pc: u32, size: u32, second: bool, patch_hits: u8) -> Entry {
        Entry {
            tag: pc,
            instr: Instr::Nop,
            size,
            cond: Cond::Al,
            is_it: false,
            bp_first: !second,
            bp_second: second,
            patch_hits,
        }
    }
}

/// Hit/miss/invalidation counters for the predecode cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell back to the full fetch + decode path.
    pub misses: u64,
    /// Whole-cache invalidations (generation-stamp changes).
    pub invalidations: u64,
}

/// The predecoded-instruction cache. See the module docs.
#[derive(Debug, Clone)]
pub struct Predecode {
    /// Direct-mapped table, allocated lazily on the first insert so a
    /// machine that never steps (or runs with the cache disabled) pays
    /// nothing at construction.
    entries: Vec<Entry>,
    stamp: u64,
    /// Watermark over cached instruction bytes: lowest / highest address
    /// (inclusive) any live entry covers. `lo > hi` means empty.
    lo: u32,
    hi: u32,
    enabled: bool,
    stats: PredecodeStats,
}

impl Predecode {
    pub(crate) fn new(enabled: bool) -> Predecode {
        Predecode {
            entries: Vec::new(),
            stamp: 0,
            lo: u32::MAX,
            hi: 0,
            enabled,
            stats: PredecodeStats::default(),
        }
    }

    /// Whether lookups are served (disabling also drops all entries).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.drop_entries();
    }

    /// Counters since construction (cleared entries keep their counts).
    #[must_use]
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    fn slot(pc: u32) -> usize {
        (pc >> 1) as usize & (SLOTS - 1)
    }

    fn drop_entries(&mut self) {
        for e in &mut self.entries {
            e.tag = TAG_EMPTY;
        }
        self.lo = u32::MAX;
        self.hi = 0;
    }

    /// Looks up `pc` under generation `stamp`, copying out the entry on a
    /// hit. A stamp change clears the table first.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32, stamp: u64) -> Option<Entry> {
        if !self.enabled {
            return None;
        }
        if self.stamp != stamp {
            self.drop_entries();
            self.stamp = stamp;
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        match self.entries.get(Predecode::slot(pc)) {
            Some(e) if e.tag == pc => {
                self.stats.hits += 1;
                Some(*e)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs an entry for `pc` filled under generation `stamp`.
    pub(crate) fn insert(&mut self, pc: u32, stamp: u64, entry: Entry) {
        if !self.enabled || self.stamp != stamp {
            return;
        }
        if self.entries.is_empty() {
            self.entries = vec![
                Entry {
                    tag: TAG_EMPTY,
                    instr: Instr::Nop,
                    size: 0,
                    cond: Cond::Al,
                    is_it: false,
                    bp_first: false,
                    bp_second: false,
                    patch_hits: 0,
                };
                SLOTS
            ];
        }
        debug_assert_eq!(entry.tag, pc);
        let end = pc + entry.size.max(2) - 1;
        self.lo = self.lo.min(pc);
        self.hi = self.hi.max(end);
        self.entries[Predecode::slot(pc)] = entry;
    }

    /// Whether a write of `len` bytes at `addr` overlaps any cached
    /// instruction (the self-modifying-code check on the store path).
    #[must_use]
    pub(crate) fn covers(&self, addr: u32, len: u32) -> bool {
        // Empty cache has lo > hi, which can never satisfy both bounds.
        addr <= self.hi && addr.saturating_add(len.max(1) - 1) >= self.lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u32, size: u32) -> Entry {
        Entry::decoded(pc, Instr::Nop, size, 0)
    }

    #[test]
    fn miss_then_hit() {
        let mut p = Predecode::new(true);
        assert!(p.lookup(0x100, 5).is_none()); // first lookup sets stamp
        p.insert(0x100, 5, entry(0x100, 2));
        assert!(p.lookup(0x100, 5).is_some());
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn stamp_change_clears() {
        let mut p = Predecode::new(true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        assert!(p.lookup(0x100, 2).is_none(), "new stamp invalidates");
        assert!(p.lookup(0x100, 2).is_none(), "entry really gone");
        assert_eq!(p.stats().invalidations, 2, "construction stamp 0 -> 1 -> 2");
    }

    #[test]
    fn stale_insert_is_dropped() {
        let mut p = Predecode::new(true);
        p.lookup(0x100, 1);
        p.insert(0x100, 2, entry(0x100, 2)); // filled under a newer stamp
        assert!(p.lookup(0x100, 1).is_none());
    }

    #[test]
    fn disabled_never_hits() {
        let mut p = Predecode::new(false);
        p.insert(0x100, 0, entry(0x100, 2));
        assert!(p.lookup(0x100, 0).is_none());
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn watermark_covers_cached_range_only() {
        let mut p = Predecode::new(true);
        p.lookup(0x100, 1);
        assert!(!p.covers(0x100, 4), "empty cache covers nothing");
        p.insert(0x100, 1, entry(0x100, 4));
        p.insert(0x200, 1, entry(0x200, 2));
        assert!(p.covers(0x100, 1));
        assert!(p.covers(0x103, 1));
        assert!(p.covers(0x201, 1));
        assert!(p.covers(0xFE, 8), "straddling write detected");
        assert!(!p.covers(0x202, 4));
        assert!(!p.covers(0, 0x100));
    }

    #[test]
    fn aliasing_slots_overwrite() {
        let mut p = Predecode::new(true);
        p.lookup(0x100, 1);
        p.insert(0x100, 1, entry(0x100, 2));
        // Same slot: 0x100 and 0x100 + 2*SLOTS alias.
        let alias = 0x100 + 2 * SLOTS as u32;
        p.insert(alias, 1, entry(alias, 2));
        assert!(p.lookup(0x100, 1).is_none());
        assert!(p.lookup(alias, 1).is_some());
    }
}
