//! Multi-ECU execution: N machines, N shared CAN wires, a deterministic
//! quantum scheduler.
//!
//! A [`System`] owns a set of [`Node`]s (a [`Machine`] plus its device
//! set and local cycle clock) and a set of named [`SharedCanBus`]
//! **wires** ([`System::add_wire`]) that nodes' CAN controllers attach
//! to ([`crate::DeviceSpec::SharedCan`]) and [`crate::Dma`] gateway
//! engines bridge ([`crate::DeviceSpec::Dma`]) — a network topology,
//! not just one bus. [`System::run`] advances the nodes in bounded
//! quanta:
//!
//! 1. every live node runs to the quantum boundary
//!    ([`Machine::run_until`] — WFI sleeps park at the boundary instead
//!    of overshooting it);
//! 2. every wire arbitrates and transmits everything enqueued up
//!    to the boundary ([`SharedCanBus::run_to_cycle`]);
//! 3. each wire client — CAN controller or DMA gateway — is re-armed at
//!    the arrival cycle of its next delivery
//!    ([`CanController::note_wire_progress`] /
//!    [`crate::Dma::note_wire_progress`]), so reception — FIFO push, RX
//!    interrupt, gateway forward — happens at the exact completion
//!    cycle inside a later quantum, through the ordinary device-tick
//!    machinery.
//!
//! # Why this is deterministic
//!
//! The quantum never exceeds any wire's **lookahead**
//! ([`SharedCanBus::min_quantum_cycles`]): the minimum time any CAN
//! frame occupies a wire. The effective quantum is the minimum
//! lookahead over all wires, so a frame enqueued on *any* wire inside
//! quantum *k* cannot complete before the boundary of quantum *k+1* —
//! by the time that wire arbitrates it, every node has already enqueued
//! everything it could have contributed to that arbitration window, and
//! same-id ties break on `(enqueue time, node id)`, not host call
//! order. Transmission start times depend only on enqueue times and
//! prior wire state, never on where the boundaries fall, so per-node
//! cycle counts, checksums and every wire's delivery log are
//! bit-identical for *any* quantum at or below the lookahead and *any*
//! node service order ([`SystemConfig`] exposes both knobs precisely so
//! tests can prove it). When a wire is busy past the next boundary the
//! quantum may stretch to its `busy_until` — but only as far as the
//! *earliest* such point over all wires (`min` over wires of
//! `max(boundary, busy_until)`): an idle wire can start a new
//! arbitration at any moment, so no wire's stretch may leap over
//! another wire's decision point.
//!
//! Gateway forwarding composes with the same argument: a delivery
//! materialized at a boundary always completes at or after that
//! boundary, the gateway's tick examines it at exactly its completion
//! cycle, and the forward is enqueued on the far wire at an exact
//! `completion + latency` stamp — never earlier than the far wire has
//! been advanced. Multi-hop (wire → gateway → wire → gateway → wire)
//! timing is therefore boundary-independent end to end.
//!
//! # Determinism under faults
//!
//! An active [`alia_can::FaultPlan`] adds three event sources, each
//! keyed to wire bit time and none able to outrun the lookahead:
//!
//! * **error frames** occupy at least `34 + 17` bits from the aborted
//!   transmission's start — strictly more than a clean minimal frame —
//!   so an error's completion stamp (the observable event: TEC/REC
//!   bumps, state transitions, the retransmission's requeue) obeys the
//!   same "enqueued in quantum *k*, completes after boundary *k+1*"
//!   contract as any delivery;
//! * **babble arms** enqueue at plan-fixed bit times, pumped by the
//!   wire itself in wire-time order — host call order and boundary
//!   placement never enter;
//! * **bus-off recoveries** complete at request-fixed bit times,
//!   applied by the wire before any transmission that starts later.
//!
//! Because an idle wire with a live arm or pending recovery can
//! generate traffic (and guest-visible IRQs) without any node acting,
//! the idle-stretch may not leap past a wire's
//! [`SharedCanBus::next_fault_cycle`], and a system with one pending is
//! not quiescent. With that veto in place, delivery logs, error-state
//! logs, retransmission stamps and guest checksums are bit-identical
//! across quantum sizes, node orderings and idle-stretch — the fault
//! determinism sweep in `tests/integration_faults.rs` proves it.

use crate::devices::{CanController, SharedCanBus};
use crate::dma::Dma;
use crate::machine::{Machine, StopReason};

/// A machine participating in a [`System`]: the machine, its name, and
/// its halt state. The node's clock is the machine's cycle counter; the
/// scheduler advances it in quanta via [`Node::run_until`].
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    machine: Machine,
    halted: Option<StopReason>,
}

impl Node {
    /// Wraps `machine` as a schedulable node.
    #[must_use]
    pub fn new(name: impl Into<String>, machine: Machine) -> Node {
        Node { name: name.into(), machine, halted: None }
    }

    /// The node's name (diagnostics and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the wrapped machine (loading images, reading
    /// results). Callers must not advance the machine directly while a
    /// `System` is scheduling it.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Why the node halted, if it has ([`StopReason::CycleLimit`] never
    /// halts a node — it only marks a quantum boundary).
    #[must_use]
    pub fn halted(&self) -> Option<StopReason> {
        self.halted
    }

    /// The node's local clock (machine cycles).
    ///
    /// A node that settled as parked-idle ([`StopReason::WfiIdle`])
    /// reports the architectural sleep-entry cycle of its final WFI
    /// sleep — the scheduler normalizes the parked clock when it
    /// declares quiescence, so *every* node's clock (parked-idle ones
    /// included) is bit-identical across quantum sizes, node orderings,
    /// idle-stretch and thread counts.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Runs the node up to `cycle` (a bounded, resumable advance).
    /// Returns the halt reason if the node stopped for a reason other
    /// than the bound, now or previously.
    pub fn run_until(&mut self, cycle: u64) -> Option<StopReason> {
        if self.halted.is_none() && self.machine.cycles() < cycle {
            let r = self.machine.run_until(cycle);
            if r.reason != StopReason::CycleLimit {
                self.halted = Some(r.reason);
            }
        }
        self.halted
    }
}

/// Scheduler knobs. The defaults are always safe; the knobs exist so
/// determinism tests can vary the schedule and assert identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Quantum override in cycles. Clamped to the shared wire's
    /// lookahead ([`SharedCanBus::min_quantum_cycles`]) — larger values
    /// could deliver frames late. `None` uses the lookahead itself
    /// (or one whole-horizon quantum when no shared wire is attached).
    pub quantum: Option<u64>,
    /// Rotate the node service order every quantum instead of always
    /// starting at node 0. Results must not change either way.
    pub rotate_order: bool,
    /// Stretch quanta past the wire lookahead while the wire is idle,
    /// no controller holds armed TX state and every live node is parked
    /// in a WFI sleep — the system skips straight to the earliest local
    /// wakeup in one quantum instead of pacing the gap at lookahead
    /// granularity. Results must not change either way (no node can
    /// execute — let alone transmit — inside the stretch). `false`
    /// keeps conservative quanta for determinism comparisons.
    pub idle_stretch: bool,
    /// Worker threads for the node-advance phase of each quantum
    /// (clamped to at least 1; 1 = the sequential scheduler). Inside a
    /// quantum nodes only *read* frozen wire state and *append* to
    /// pending queues whose arbitration order is a total order over
    /// `(id, enqueue time, node, per-node seq)` — independent of host
    /// interleaving — so results are bit-identical at any thread count;
    /// the thread-sweep tests prove it, faults included.
    pub threads: usize,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig { quantum: None, rotate_order: false, idle_stretch: true, threads: 1 }
    }
}

/// Why [`System::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemStop {
    /// Every node halted: exit, breakpoint, fault, or system-wide
    /// quiescence (all live nodes asleep in WFI with no local events
    /// and a quiet wire — each is marked [`StopReason::WfiIdle`]).
    AllHalted,
    /// The horizon was reached with at least one node still live.
    Horizon,
}

/// The outcome of [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemRunResult {
    /// Why the run returned.
    pub reason: SystemStop,
    /// Global time reached (cycles).
    pub now: u64,
    /// Quanta executed (scheduler introspection).
    pub quanta: u64,
}

// The parallel quantum scheduler migrates whole nodes to scoped worker
// threads; this must keep compiling if anyone adds non-Send state to
// the machine stack.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Node>();
};

/// The `(wire, node id)` attachments carried by `machine`'s devices:
/// one entry per shared CAN controller, two per DMA gateway engine
/// (each side). The scheduler uses these to adopt wires and enforce
/// per-wire node-id uniqueness.
fn wire_clients(machine: &Machine) -> Vec<(SharedCanBus, usize)> {
    let mut out = Vec::new();
    for d in machine.bus.devices() {
        if let Some(c) = d.dev.as_any().downcast_ref::<CanController>() {
            if let Some(w) = c.shared_bus() {
                out.push((w.clone(), c.config().node));
            }
        } else if let Some(g) = d.dev.as_any().downcast_ref::<Dma>() {
            out.push((g.wire_a().clone(), g.config().node_a));
            out.push((g.wire_b().clone(), g.config().node_b));
        }
    }
    out
}

/// N nodes plus shared interconnects, advanced by a deterministic
/// event-driven quantum scheduler. See the module docs for the
/// scheduling contract.
#[derive(Debug, Default)]
pub struct System {
    nodes: Vec<Node>,
    wires: Vec<SharedCanBus>,
    config: SystemConfig,
    now: u64,
    quanta: u64,
    /// The scheduler's own tracer ([`alia_obs::category::SCHED`]:
    /// quantum boundaries, idle stretches). These events are an
    /// artifact of the scheduler configuration — excluded from
    /// [`alia_obs::category::SEMANTIC`] hashing by design.
    tracer: alia_obs::Tracer,
}

impl System {
    /// An empty system with default scheduling.
    #[must_use]
    pub fn new() -> System {
        System::default()
    }

    /// An empty system with explicit scheduler knobs.
    #[must_use]
    pub fn with_config(config: SystemConfig) -> System {
        System { config, ..System::default() }
    }

    /// Creates a named shared CAN wire, registers it with the scheduler
    /// and returns the attachment handle (pass it to
    /// [`crate::DeviceSpec::SharedCan`] for each participating
    /// controller, or to [`crate::DeviceSpec::Dma`] for a gateway
    /// engine). A system may carry any number of wires; the effective
    /// quantum is the minimum lookahead over all of them.
    ///
    /// # Panics
    ///
    /// Panics when a registered wire already carries `name` (reports key
    /// on wire names).
    pub fn add_wire(&mut self, name: impl Into<String>, cycles_per_bit: u64) -> SharedCanBus {
        let name = name.into();
        assert!(
            self.wires.iter().all(|w| w.name() != name),
            "duplicate wire name {name:?}"
        );
        let wire = SharedCanBus::named(name, cycles_per_bit);
        self.wires.push(wire.clone());
        wire
    }

    /// Creates the system's shared CAN wire with the default name
    /// `"can0"` — the single-wire convenience kept from the one-bus
    /// era; topologies with several wires use [`System::add_wire`].
    ///
    /// # Panics
    ///
    /// Panics if the system already has a wire (a second call almost
    /// certainly wanted the *same* wire — two controllers on separate
    /// wires would silently never exchange a frame; multi-wire
    /// topologies name their wires via [`System::add_wire`]).
    pub fn shared_can_bus(&mut self, cycles_per_bit: u64) -> SharedCanBus {
        assert!(
            self.wires.is_empty(),
            "the system already has a shared CAN wire; use add_wire for multi-wire topologies"
        );
        self.add_wire("can0", cycles_per_bit)
    }

    /// Adds a node and returns its index. Nodes join at the system's
    /// current time; machines must not have been run ahead of it.
    ///
    /// Every wire the machine's devices attach to — through shared CAN
    /// controllers or DMA gateway engines — is adopted into the
    /// system's wire set if not already registered (wires created
    /// standalone via [`SharedCanBus::named`] work exactly like ones
    /// from [`System::add_wire`]): a wire the scheduler does not
    /// service would never deliver a frame.
    ///
    /// # Panics
    ///
    /// Panics when the machine was run ahead of system time, or when an
    /// attachment reuses a CAN node id already present **on the same
    /// wire** (receivers filter their own transmissions by node id, so
    /// a duplicate would silently drop every peer frame; the same id on
    /// *different* wires is fine).
    pub fn add_node(&mut self, name: impl Into<String>, machine: Machine) -> usize {
        assert!(
            machine.cycles() <= self.now,
            "a node must not join ahead of system time"
        );
        let mut taken: Vec<(usize, usize)> = Vec::new();
        for n in &self.nodes {
            for (w, id) in wire_clients(n.machine()) {
                if let Some(wi) = self.wires.iter().position(|x| x.same_wire(&w)) {
                    taken.push((wi, id));
                }
            }
        }
        for (w, id) in wire_clients(&machine) {
            let wi = match self.wires.iter().position(|x| x.same_wire(&w)) {
                Some(wi) => wi,
                None => {
                    // Adoption must uphold the same invariant add_wire
                    // asserts: reports key on wire names.
                    assert!(
                        self.wires.iter().all(|x| x.name() != w.name()),
                        "adopted wire duplicates the name {:?} of a registered wire",
                        w.name()
                    );
                    self.wires.push(w.clone());
                    self.wires.len() - 1
                }
            };
            assert!(
                !taken.contains(&(wi, id)),
                "duplicate CAN node id {id} on wire {:?}",
                w.name()
            );
            taken.push((wi, id));
        }
        self.nodes.push(Node::new(name, machine));
        self.nodes.len() - 1
    }

    /// The nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node `i`.
    #[must_use]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable node `i` (setup and result extraction).
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// The first registered wire, if any — the single-wire convenience
    /// accessor; topologies use [`System::wires`] /
    /// [`System::wire_named`].
    #[must_use]
    pub fn wire(&self) -> Option<&SharedCanBus> {
        self.wires.first()
    }

    /// Every wire the scheduler services, in registration order.
    #[must_use]
    pub fn wires(&self) -> &[SharedCanBus] {
        &self.wires
    }

    /// The registered wire named `name`, if any.
    #[must_use]
    pub fn wire_named(&self, name: &str) -> Option<&SharedCanBus> {
        self.wires.iter().find(|w| w.name() == name)
    }

    /// Global time reached so far (cycles).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Quanta executed so far.
    #[must_use]
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// Transmits everything still queued on every wire
    /// ([`SharedCanBus::settle`]) so per-wire utilization and latency
    /// reports account for frames enqueued just before the run ended.
    pub fn settle_wires(&self) {
        for w in &self.wires {
            w.settle();
        }
    }

    /// The scheduler configuration.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Replaces the scheduler configuration. Any configuration yields
    /// bit-identical results (that is the scheduling contract), so a
    /// forked system may freely change quantum, ordering, idle-stretch
    /// or thread count between runs.
    pub fn set_config(&mut self, config: SystemConfig) {
        self.config = config;
    }

    /// Sets the tracing category bitmask on the scheduler's own tracer
    /// and on every node's machine (which propagates to its DMA
    /// gateways). Pass [`alia_obs::category::ALL`] to record
    /// everything, `0` to disable tracing entirely (the default).
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.tracer.set_mask(mask);
        for node in &mut self.nodes {
            node.machine.set_trace_mask(mask);
        }
    }

    /// Collects every recorded trace stream into one [`alia_obs::TraceSet`]:
    /// one stream per node (CPU-side events plus its DMA gateways'
    /// events, merged by cycle), one synthesized stream per wire
    /// (arbitration wins from the delivery log, error-state transitions
    /// from the state log — both deterministic, so the synthesized
    /// stream is too), and a final `"scheduler"` stream of quantum
    /// boundaries and idle stretches (config-dependent by design).
    ///
    /// Wire-log bit times are scaled to core cycles by each wire's
    /// `cycles_per_bit`, so all streams share one timebase.
    #[must_use]
    pub fn trace_set(&self) -> alia_obs::TraceSet {
        let mut set = alia_obs::TraceSet::default();
        for node in &self.nodes {
            let mut events: Vec<alia_obs::TraceEvent> =
                node.machine.tracer().events().to_vec();
            for dev in node.machine.bus.devices() {
                if let Some(g) = dev.dev.as_any().downcast_ref::<Dma>() {
                    events.extend_from_slice(&g.tracer().events());
                }
            }
            // Machine and gateway events are each cycle-ordered; a
            // stable merge keeps the combined stream cycle-ordered with
            // CPU events first within a cycle.
            events.sort_by_key(|e| e.cycle);
            set.push_stream(node.name(), events);
        }
        for wire in &self.wires {
            let cpb = wire.cycles_per_bit();
            let mut events: Vec<alia_obs::TraceEvent> = Vec::new();
            for d in wire.delivery_log() {
                events.push(alia_obs::TraceEvent {
                    cycle: d.completed_at.saturating_mul(cpb),
                    kind: alia_obs::EventKind::FrameTx {
                        id: d.frame.id.raw(),
                        node: d.node as u32,
                        enqueued: d.enqueued_at.saturating_mul(cpb),
                        // `Delivery::attempt` counts *failed* attempts
                        // before this event; the trace reports the
                        // 1-based attempt ordinal.
                        attempt: d.attempt + 1,
                        data: d.kind == alia_can::DeliveryKind::Data,
                    },
                });
            }
            for s in wire.state_log() {
                events.push(alia_obs::TraceEvent {
                    cycle: s.at.saturating_mul(cpb),
                    kind: alia_obs::EventKind::ErrorState {
                        node: s.node as u32,
                        state: s.to as u8,
                    },
                });
            }
            events.sort_by_key(|e| e.cycle);
            set.push_stream(wire.name(), events);
        }
        set.push_stream("scheduler", self.tracer.events().to_vec());
        set
    }

    /// Publishes every node's and wire's metrics into `reg`:
    /// `node.<name>.*` for each machine (see
    /// [`Machine::publish_metrics`]) and `wire.<name>.*` counters and
    /// gauges for each CAN wire (deliveries, error frames, rejected /
    /// purged transmissions, utilization).
    pub fn publish_metrics(&self, reg: &mut alia_obs::metrics::Registry) {
        for node in &self.nodes {
            node.machine.publish_metrics(reg, &format!("node.{}.", node.name()));
        }
        for wire in &self.wires {
            let p = format!("wire.{}.", wire.name());
            reg.counter(&format!("{p}deliveries"), wire.deliveries_len() as u64);
            reg.counter(&format!("{p}error_frames"), wire.error_frames());
            reg.counter(&format!("{p}rejected_tx"), wire.rejected_tx());
            reg.counter(&format!("{p}purged_tx"), wire.purged_tx());
            reg.gauge(&format!("{p}utilization"), wire.utilization());
        }
    }

    /// A fully independent deep copy of the whole topology: every node
    /// is forked (dirty-page machine copies — see [`Machine::snapshot`]),
    /// every wire is deep-copied onto a new identity
    /// ([`SharedCanBus::fork_detached`]), and each forked node's shared
    /// CAN controllers and DMA gateway engines are rebound to the
    /// forked wires — matched by wire identity, so multi-wire
    /// topologies fork correctly. Traffic in the fork never appears on
    /// the original's wires or vice versa, and both systems continue
    /// bit-identically from the fork point given identical inputs.
    ///
    /// Forking a warmed-up topology costs microseconds (proportional to
    /// the touched memory footprint), which is what makes campaign
    /// fan-out cheap: build and warm one system, fork it per run.
    #[must_use]
    pub fn fork(&self) -> System {
        let wires: Vec<SharedCanBus> =
            self.wires.iter().map(SharedCanBus::fork_detached).collect();
        let mut nodes = self.nodes.clone();
        for node in &mut nodes {
            for d in node.machine.bus.devices_mut() {
                if let Some(c) = d.as_any_mut().downcast_mut::<CanController>() {
                    c.rebind_shared_wire(&self.wires, &wires);
                } else if let Some(g) = d.as_any_mut().downcast_mut::<Dma>() {
                    g.rebind_wires(&self.wires, &wires);
                }
            }
        }
        System {
            nodes,
            wires,
            config: self.config,
            now: self.now,
            quanta: self.quanta,
            tracer: self.tracer.clone(),
        }
    }

    /// The effective quantum in cycles: the configured override clamped
    /// to the **minimum lookahead over all wires** (a frame on the
    /// fastest-lookahead wire is the earliest anything enqueued this
    /// quantum could complete), or that minimum itself (`u64::MAX` with
    /// no wires — independent nodes need no boundaries).
    #[must_use]
    pub fn effective_quantum(&self) -> u64 {
        let lookahead = self
            .wires
            .iter()
            .map(SharedCanBus::min_quantum_cycles)
            .min()
            .unwrap_or(u64::MAX);
        self.config.quantum.unwrap_or(lookahead).min(lookahead).max(1)
    }

    /// The idle-stretch boundary, when the system is eligible: every
    /// wire is idle, no wire client holds armed state
    /// ([`CanController::tx_armed`] / [`Dma::armed`]) and every live
    /// node is parked in a WFI sleep — so nothing can execute (let
    /// alone transmit or forward) before the earliest local wakeup, and
    /// the quantum may stretch straight to it. A wire with a pending
    /// fault event (a babble arm's next enqueue or a bus-off recovery
    /// completion — [`SharedCanBus::next_fault_cycle`]) can generate
    /// traffic and IRQs with every node asleep, so the stretch is
    /// capped at the earliest such event. `None` when ineligible or no
    /// finite wakeup exists (the quiescence check below handles the
    /// latter).
    fn idle_stretch_boundary(&self) -> Option<u64> {
        for wire in &self.wires {
            if wire.pending() > 0 || wire.busy_until_cycle() > self.now {
                return None;
            }
        }
        let mut wake = u64::MAX;
        for wire in &self.wires {
            if let Some(fault) = wire.next_fault_cycle() {
                wake = wake.min(fault);
            }
        }
        for node in &self.nodes {
            // A halted node's devices never tick again, so even armed
            // state there can't put traffic on a wire (a frame it
            // already enqueued shows up in the wire's own pending/busy
            // check above) — only live nodes' devices veto the stretch.
            if node.halted.is_some() {
                continue;
            }
            let m = node.machine();
            if !m.wfi_parked() {
                return None;
            }
            wake = wake.min(m.next_local_event());
            for d in m.bus.devices() {
                if let Some(c) = d.dev.as_any().downcast_ref::<CanController>() {
                    if c.tx_armed() {
                        return None;
                    }
                } else if let Some(g) = d.dev.as_any().downcast_ref::<Dma>() {
                    if g.armed() {
                        return None;
                    }
                }
            }
        }
        (wake != u64::MAX).then_some(wake)
    }

    /// Advances the system to `horizon` (cycles) or until every node
    /// halts, delivering cross-node CAN frames cycle-accurately.
    pub fn run(&mut self, horizon: u64) -> SystemRunResult {
        let quantum = self.effective_quantum();
        while self.now < horizon && self.nodes.iter().any(|n| n.halted.is_none()) {
            // Quantum boundary: never beyond the lookahead past `now`,
            // but stretched across busy wires — only to the *earliest*
            // per-wire decision point (`min` over wires of
            // `max(base, busy_until)`): a busy wire admits no new
            // arbitration before its `busy_until`, but an idle wire can
            // start one at any moment, so no single wire's stretch may
            // leap over another's. Also stretched across an all-asleep
            // system (the scheduler idle-stretch) and clamped to the
            // horizon.
            let base = self.now.saturating_add(quantum);
            let mut boundary = self
                .wires
                .iter()
                .map(|w| base.max(w.busy_until_cycle()))
                .min()
                .unwrap_or(base);
            if self.config.idle_stretch {
                if let Some(wake) = self.idle_stretch_boundary() {
                    if wake > boundary {
                        self.tracer
                            .record(self.now, alia_obs::EventKind::IdleStretch { to: wake });
                    }
                    boundary = boundary.max(wake);
                }
            }
            let mut boundary = boundary.min(horizon);
            // Never leap over a wire's scheduled fault event (a babble
            // arm's next enqueue or a bus-off recovery completion).
            // Busy wires already pin boundaries to their completion
            // stamps (above), but a fault event can fire on an *idle*
            // wire — landing the boundary exactly on its stamp keeps
            // the IRQs it raises (and so parked nodes' wake cycles)
            // bit-identical across quantum sizes and the idle-stretch.
            for wire in &self.wires {
                if let Some(fault) = wire.next_fault_cycle() {
                    if fault > self.now && fault < boundary {
                        boundary = fault;
                    }
                }
            }
            let boundary = boundary;
            // 1. Every live node runs to the boundary. The service
            // order is immaterial (nodes only interact through the
            // wires, which are parked until step 2); `rotate_order`
            // exists to prove that, and the same argument is what lets
            // the worker pool run nodes concurrently: within a quantum
            // a node only appends to pending wire queues (arbitrated by
            // a host-order-independent total order at step 2) and reads
            // delivery/state log prefixes frozen since the last
            // boundary.
            let n = self.nodes.len();
            let workers = self.config.threads.max(1).min(n.max(1));
            if workers > 1 {
                let chunk = n.div_ceil(workers);
                std::thread::scope(|scope| {
                    let mut chunks = self.nodes.chunks_mut(chunk);
                    let first = chunks.next();
                    for rest in chunks {
                        scope.spawn(move || {
                            for node in rest {
                                node.run_until(boundary);
                            }
                        });
                    }
                    // The scheduler thread takes the first chunk itself.
                    for node in first.into_iter().flatten() {
                        node.run_until(boundary);
                    }
                });
            } else {
                let offset = if self.config.rotate_order && n > 0 {
                    (self.quanta as usize) % n
                } else {
                    0
                };
                for i in 0..n {
                    self.nodes[(i + offset) % n].run_until(boundary);
                }
            }
            // 2. Every wire arbitrates everything enqueued this quantum.
            // 3. Wire clients (controllers, gateways) re-arm at their
            //    next delivery's arrival.
            if !self.wires.is_empty() {
                for wire in &self.wires {
                    wire.run_to_cycle(boundary);
                }
                for node in &mut self.nodes {
                    let bus = &mut node.machine.bus;
                    let mut touched = false;
                    for d in bus.devices_mut() {
                        if let Some(c) = d.as_any_mut().downcast_mut::<CanController>() {
                            c.note_wire_progress();
                            touched = true;
                        } else if let Some(g) = d.as_any_mut().downcast_mut::<Dma>() {
                            g.note_wire_progress();
                            touched = true;
                        }
                    }
                    if touched {
                        bus.refresh_next_event();
                    }
                }
            }
            // Quiescence: when every wire is quiet (nothing queued, in
            // flight, or scheduled by a fault plan) and every live node
            // is parked in a WFI sleep with no local wakeup source, no
            // event can ever occur again — the nodes are idle exactly
            // as a lone machine reporting `WfiIdle` would be. Without
            // this, an all-idle system would spin one quantum at a time
            // to the horizon. A live babble arm or pending bus-off
            // recovery vetoes: the wire will act (and may raise IRQs)
            // without any node doing anything.
            let wire_quiet = self.wires.iter().all(|w| {
                w.pending() == 0
                    && w.busy_until_cycle() <= boundary
                    && w.next_fault_cycle().is_none()
            });
            if wire_quiet
                && self
                    .nodes
                    .iter()
                    .all(|n| n.halted.is_some() || n.machine.idle_parked())
            {
                for n in &mut self.nodes {
                    if n.halted.is_none() {
                        // The park point was a scheduler boundary; the
                        // architectural sleep-entry cycle is what the
                        // node's clock reports from here on (see
                        // `Node::cycles`).
                        n.machine.normalize_parked_clock();
                        n.halted = Some(StopReason::WfiIdle);
                    }
                }
            }
            self.tracer.record(boundary, alia_obs::EventKind::Quantum { index: self.quanta });
            self.now = boundary;
            self.quanta += 1;
        }
        let reason = if self.nodes.iter().all(|n| n.halted.is_some()) {
            SystemStop::AllHalted
        } else {
            SystemStop::Horizon
        };
        SystemRunResult { reason, now: self.now, quanta: self.quanta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{CanConfig, TimerConfig};
    use crate::machine::{DeviceSpec, MachineConfig};
    use crate::{CAN_BASE, SRAM_BASE, TIMER_BASE};
    use alia_isa::{Assembler, IsaMode};

    fn asm(src: &str) -> Vec<u8> {
        Assembler::new(IsaMode::T2).assemble(src).expect("assembles").bytes
    }

    fn machine(config: MachineConfig, main: &[u8]) -> Machine {
        let mut m = Machine::new(config);
        m.load_flash(0x100, main);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    }

    #[test]
    fn independent_nodes_run_to_completion() {
        let mut sys = System::new();
        let count = |n: u32| {
            asm(&format!(
                "mov r0, #0
                 loop: add r0, r0, #1
                 cmp r0, #{n}
                 bne loop
                 bkpt #0"
            ))
        };
        sys.add_node("a", machine(MachineConfig::m3_like(), &count(10)));
        sys.add_node("b", machine(MachineConfig::m3_like(), &count(200)));
        let r = sys.run(1_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(0).halted(), Some(StopReason::Bkpt(0)));
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(0)));
        assert_eq!(sys.node(0).machine().cpu.regs[0], 10);
        assert_eq!(sys.node(1).machine().cpu.regs[0], 200);
        assert!(sys.node(1).cycles() > sys.node(0).cycles());
        assert_eq!(r.quanta, 1, "no wire: a single whole-horizon quantum");
    }

    #[test]
    fn frames_cross_the_shared_wire_guest_to_guest() {
        // Producer: timer-paced TX of 4 frames, then exit. Consumer:
        // spins until its RX IRQ handler has drained 4 frames, then
        // exits with the checksum.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![
            DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 800 }),
            DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            ),
        ];
        let main_p = asm(
            "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #800
             str r1, [r0, #4]
             mov r1, #3
             str r1, [r0, #0]
             spin: cmp r4, #4
             bne spin
             movw r0, #0
             movt r0, #0x4000
             str r4, [r0, #0]
             halt: b halt",
        );
        let tx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             cmp r4, #4
             bge done
             movw r1, #0x100
             add r1, r1, r4
             str r1, [r0, #0]
             mov r1, #4
             str r1, [r0, #4]
             str r4, [r0, #8]
             mov r1, #0
             str r1, [r0, #12]
             str r1, [r0, #16]
             add r4, r4, #1
             done: bx lr",
        );
        let mut p = machine(pconf, &main_p);
        p.load_flash(0x200, &tx_handler);
        p.load_flash(0, &0x200u32.to_le_bytes());
        sys.add_node("producer", p);

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm(
            "spin: cmp r7, #4
             bne spin
             movw r0, #0
             movt r0, #0x4000
             str r6, [r0, #0]
             halt: b halt",
        );
        let rx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             rxloop: ldr r1, [r0, #20]
             cmp r1, #0
             beq rxdone
             ldr r1, [r0, #24]
             add r6, r6, r1
             ldr r1, [r0, #32]
             add r6, r6, r1
             str r1, [r0, #40]
             add r7, r7, #1
             b rxloop
             rxdone: bx lr",
        );
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);

        let r = sys.run(10_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        let expected: u32 = (0..4).map(|k| 0x100 + k + k).sum();
        assert_eq!(sys.node(0).halted(), Some(StopReason::MmioExit(4)));
        assert_eq!(sys.node(1).halted(), Some(StopReason::MmioExit(expected)));
        assert_eq!(wire.deliveries_len(), 4);
        // RX interrupts were stamped at frame-completion cycles: the
        // consumer's observed latencies are the entry overhead, not a
        // quantum-boundary artifact.
        let lats = sys.node(1).machine().latencies();
        assert_eq!(lats.len(), 4);
        assert!(lats.iter().all(|l| l.entry_cycle - l.pend_cycle < 100));

        // The metrics registry is a uniform view over the same
        // counters the legacy accessors report — pin them equal so the
        // two can never drift.
        let mut reg = alia_obs::metrics::Registry::new();
        sys.publish_metrics(&mut reg);
        let snap = reg.snapshot();
        let find_can = |node: usize| {
            sys.node(node)
                .machine()
                .bus
                .devices()
                .iter()
                .enumerate()
                .find_map(|(i, d)| d.dev.as_any().downcast_ref::<CanController>().map(|c| (i, c)))
                .expect("node has a CAN controller")
        };
        let (pi, producer_can) = find_can(0);
        assert_eq!(
            snap.counter(&format!("node.producer.dev{pi}.can.tx_count")),
            Some(producer_can.tx_count())
        );
        let (ci, consumer_can) = find_can(1);
        assert_eq!(
            snap.counter(&format!("node.consumer.dev{ci}.can.rx_count")),
            Some(consumer_can.rx_count())
        );
        assert_eq!(consumer_can.rx_count(), 4);
        assert_eq!(snap.counter("wire.can0.deliveries"), Some(wire.deliveries_len() as u64));
        assert_eq!(snap.counter("wire.can0.error_frames"), Some(wire.error_frames()));
        for (i, node) in ["producer", "consumer"].iter().enumerate() {
            let m = sys.node(i).machine();
            assert_eq!(snap.counter(&format!("node.{node}.cycles")), Some(m.cycles()));
            assert_eq!(snap.counter(&format!("node.{node}.instructions")), Some(m.instructions()));
            let s = m.predecode_stats();
            assert_eq!(snap.counter(&format!("node.{node}.predecode.hits")), Some(s.hits));
            assert_eq!(snap.counter(&format!("node.{node}.blocks.built")), Some(s.blocks_built));
            assert_eq!(
                snap.counter(&format!("node.{node}.irq.taken")),
                Some(m.latencies().len() as u64)
            );
        }
    }

    #[test]
    fn quiescent_wfi_system_halts_as_idle() {
        // Every live node asleep with no local events and a quiet wire:
        // the system must settle to AllHalted/WfiIdle, not spin one
        // quantum at a time until the horizon.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        sys.add_node("sleeper", machine(conf, &asm("wfi\n bkpt #0")));
        sys.add_node("done", machine(MachineConfig::m3_like(), &asm("bkpt #0")));
        let r = sys.run(100_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(0).halted(), Some(StopReason::WfiIdle));
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(0)));
        assert!(r.quanta < 4, "settled immediately, not at the horizon");
    }

    #[test]
    fn babble_arm_wakes_a_parked_system_and_vetoes_quiescence() {
        // A wire with a live babble arm generates traffic (and RX
        // IRQs) while every node sleeps: the idle-stretch must land on
        // the arm's enqueues instead of leaping past them, quiescence
        // must not fire, and results are identical stretch on or off.
        let run = |idle_stretch: bool| {
            let mut sys = System::with_config(SystemConfig {
                idle_stretch,
                ..SystemConfig::default()
            });
            let wire = sys.shared_can_bus(4);
            let mut plan = alia_can::FaultPlan::new();
            plan.add_babbler(alia_can::BabbleArm {
                node: 9,
                id: alia_can::CanId::Standard(0x010),
                dlc: 2,
                start: 2_000,
                period: 1_000,
                frames: 3,
                corrupt: false,
            });
            wire.set_fault_plan(plan);
            let mut conf = MachineConfig::m3_like();
            conf.devices = vec![DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            )];
            let main = asm(
                "sleep: wfi
                 cmp r7, #3
                 bne sleep
                 movw r0, #0
                 movt r0, #0x4000
                 str r7, [r0, #0]
                 halt: b halt",
            );
            let rx_handler = asm(
                "movw r0, #0x2000
                 movt r0, #0x4000
                 rxloop: ldr r1, [r0, #20]
                 cmp r1, #0
                 beq rxdone
                 ldr r1, [r0, #24]
                 add r6, r6, r1
                 str r1, [r0, #40]
                 add r7, r7, #1
                 b rxloop
                 rxdone: bx lr",
            );
            let mut m = machine(conf, &main);
            m.load_flash(0x200, &rx_handler);
            m.load_flash(4, &0x200u32.to_le_bytes());
            sys.add_node("victim", m);
            let r = sys.run(1_000_000);
            let stamps: Vec<u64> =
                (0..wire.deliveries_len()).map(|i| wire.delivery(i).unwrap().completed_at).collect();
            (r, sys.node(0).halted(), stamps)
        };
        let (r_on, halt_on, stamps_on) = run(true);
        let (r_off, halt_off, stamps_off) = run(false);
        for (r, halt, stamps) in [(&r_on, halt_on, &stamps_on), (&r_off, halt_off, &stamps_off)] {
            assert_eq!(r.reason, SystemStop::AllHalted);
            assert_eq!(
                halt,
                Some(StopReason::MmioExit(3)),
                "woken by babble frames, not parked idle"
            );
            assert_eq!(stamps.len(), 3);
        }
        assert_eq!(stamps_on, stamps_off, "delivery stamps are stretch-independent");
        assert!(r_on.quanta < r_off.quanta, "the stretch engaged between babble frames");
    }

    #[test]
    fn standalone_wire_is_adopted_at_add_node() {
        // A SharedCanBus built outside System::shared_can_bus must
        // still be serviced by the scheduler.
        let wire = SharedCanBus::new(4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        let mut sys = System::new();
        sys.add_node("n0", machine(conf, &asm("bkpt #0")));
        assert!(sys.wire().is_some_and(|w| w.same_wire(&wire)));
    }

    #[test]
    #[should_panic(expected = "duplicate CAN node id")]
    fn duplicate_node_ids_are_rejected() {
        // Receivers filter their own transmissions by node id; two
        // controllers sharing an id would silently drop peer frames.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let conf = |node| {
            let mut c = MachineConfig::m3_like();
            c.devices = vec![DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node, ..CanConfig::default() },
                wire.clone(),
            )];
            c
        };
        sys.add_node("a", machine(conf(0), &asm("bkpt #0")));
        sys.add_node("b", machine(conf(0), &asm("bkpt #0")));
    }

    #[test]
    fn second_wire_is_adopted_and_ids_are_per_wire() {
        // Multi-bus: a controller on a wire the system has never seen
        // joins the wire set, and node ids only collide *within* a
        // wire — the same id on two different wires is two different
        // stations.
        let mut sys = System::new();
        let w0 = sys.add_wire("body", 4);
        let other = SharedCanBus::named("powertrain", 8);
        let conf = |wire: &SharedCanBus| {
            let mut c = MachineConfig::m3_like();
            c.devices = vec![DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            )];
            c
        };
        sys.add_node("a", machine(conf(&w0), &asm("bkpt #0")));
        sys.add_node("b", machine(conf(&other), &asm("bkpt #0")));
        assert_eq!(sys.wires().len(), 2);
        assert!(sys.wire_named("powertrain").is_some_and(|w| w.same_wire(&other)));
        assert_eq!(sys.wire_named("body").unwrap().cycles_per_bit(), 4);
        // The effective quantum is governed by the tightest wire.
        assert_eq!(
            sys.effective_quantum(),
            w0.min_quantum_cycles().min(other.min_quantum_cycles())
        );
        assert_eq!(sys.effective_quantum(), w0.min_quantum_cycles());
    }

    #[test]
    #[should_panic(expected = "duplicate wire name")]
    fn duplicate_wire_names_are_rejected() {
        let mut sys = System::new();
        let _ = sys.add_wire("body", 4);
        let _ = sys.add_wire("body", 8);
    }

    #[test]
    #[should_panic(expected = "adopted wire duplicates the name")]
    fn adoption_upholds_the_wire_name_invariant() {
        // A standalone wire (default name "can") arriving via add_node
        // must not slip past the name-uniqueness check add_wire enforces.
        let mut sys = System::new();
        let _registered = sys.add_wire("can", 4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            SharedCanBus::new(4),
        )];
        sys.add_node("stray", machine(conf, &asm("bkpt #0")));
    }

    #[test]
    #[should_panic(expected = "already has a shared CAN wire")]
    fn second_shared_can_bus_call_is_rejected() {
        // The one-wire convenience keeps its old contract: a second
        // call wanted the same wire, not a disconnected new one.
        let mut sys = System::new();
        let _ = sys.shared_can_bus(4);
        let _ = sys.shared_can_bus(4);
    }

    #[test]
    fn dma_gateway_bridges_two_wires_guest_to_guest() {
        // Producer ECU on the sensor wire, consumer ECU on the backbone,
        // a gateway ECU bridging them with a guest-programmed DMA route
        // (0x100..=0x1FF rewritten to 0x400+) — the gateway core parks
        // in WFI while the engine forwards.
        use crate::dma::DmaConfig;
        use crate::DMA_BASE;
        let mut sys = System::new();
        let wa = sys.add_wire("sensor", 4);
        let wb = sys.add_wire("backbone", 4);

        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wa.clone(),
        )];
        let main_p = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             movw r1, #0x123
             str r1, [r0, #0]
             mov r1, #1
             str r1, [r0, #4]
             mov r1, #0x55
             str r1, [r0, #8]
             str r1, [r0, #16]
             bkpt #0",
        );
        sys.add_node("producer", machine(pconf, &main_p));

        let mut gconf = MachineConfig::m3_like();
        gconf.devices = vec![DeviceSpec::Dma(
            DmaConfig { base: DMA_BASE, irq: 3, node_a: 7, node_b: 7, latency: 32 },
            wa.clone(),
            wb.clone(),
        )];
        let main_g = asm(
            "movw r0, #0x4000
             movt r0, #0x4000
             movw r1, #0x100
             str r1, [r0, #0x44]
             movw r1, #0x1FF
             str r1, [r0, #0x48]
             movw r1, #0x400
             movt r1, #0x8000
             str r1, [r0, #0x4C]
             mov r1, #1
             str r1, [r0, #0x40]
             str r1, [r0, #0]
             sleep: wfi
             b sleep",
        );
        sys.add_node("gateway", machine(gconf, &main_g));

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wb.clone(),
        )];
        let mut c = machine(cconf, &asm("wfi\n bkpt #1"));
        c.load_flash(0x200, &asm("bx lr"));
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);

        let r = sys.run(1_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(0).halted(), Some(StopReason::Bkpt(0)));
        assert_eq!(sys.node(1).halted(), Some(StopReason::WfiIdle), "gateway parks");
        assert_eq!(sys.node(2).halted(), Some(StopReason::Bkpt(1)));
        let gw = sys.node(1).machine().bus.device::<crate::Dma>().expect("engine");
        assert_eq!(gw.forwarded(), 1);
        assert_eq!(gw.route_count(0), 1);
        let d = wb.delivery(0).expect("forward crossed the backbone");
        assert_eq!(d.frame.id.raw(), 0x423, "rewritten: 0x400 + (0x123 - 0x100)");
        assert_eq!(d.frame.data[0], 0x55, "payload preserved");
        // The forward's enqueue respects the store-and-forward latency
        // after the sensor-wire completion.
        let src = wa.delivery(0).expect("sensor delivery");
        assert!(d.enqueued_at * 4 >= src.completed_at * 4 + 32);
        let rx = sys.node(2).machine().bus.device::<CanController>().unwrap();
        assert_eq!(rx.rx_count(), 1);
    }

    /// A WFI-paced exchange: the producer sleeps between timer ticks
    /// and ships one frame per wakeup; the consumer sleeps until its RX
    /// interrupt has counted `frames`. Between events the whole system
    /// is asleep, so the idle-stretch has real gaps to skip.
    fn sleepy_exchange(config: SystemConfig, frames: u32) -> System {
        let mut sys = System::with_config(config);
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![
            DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 2_000 }),
            DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            ),
        ];
        let main_p = asm(&format!(
            "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #2000
             str r1, [r0, #4]
             mov r1, #3
             str r1, [r0, #0]
             sleep: wfi
             cmp r4, #{frames}
             blt sleep
             bkpt #0"
        ));
        let tick_handler = asm(&format!(
            "movw r0, #0x2000
             movt r0, #0x4000
             cmp r4, #{frames}
             bge done
             movw r1, #0x60
             add r1, r1, r4
             str r1, [r0, #0]
             mov r1, #2
             str r1, [r0, #4]
             str r4, [r0, #8]
             mov r1, #0
             str r1, [r0, #16]
             add r4, r4, #1
             done: bx lr"
        ));
        let mut p = machine(pconf, &main_p);
        p.load_flash(0x200, &tick_handler);
        p.load_flash(0, &0x200u32.to_le_bytes());
        sys.add_node("producer", p);

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm(&format!(
            "sleep: wfi
             cmp r7, #{frames}
             blt sleep
             movw r0, #0
             movt r0, #0x4000
             str r6, [r0, #0]
             halt: b halt"
        ));
        let rx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             rxloop: ldr r1, [r0, #20]
             cmp r1, #0
             beq rxdone
             ldr r1, [r0, #24]
             add r6, r6, r1
             str r1, [r0, #40]
             add r7, r7, #1
             b rxloop
             rxdone: bx lr",
        );
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);
        sys
    }

    #[test]
    fn idle_stretch_matches_conservative_quanta() {
        // ROADMAP's scheduler idle-stretch: while every live node
        // sleeps, the wire is idle and no controller is armed, quanta
        // stretch to the next local wakeup — with bit-identical per-node
        // cycles, registers and delivery logs, in far fewer quanta.
        let frames = 6u32;
        let mut base = sleepy_exchange(
            SystemConfig { idle_stretch: false, ..SystemConfig::default() },
            frames,
        );
        let rb = base.run(10_000_000);
        let mut fast = sleepy_exchange(SystemConfig::default(), frames);
        let rf = fast.run(10_000_000);
        assert_eq!(rb.reason, SystemStop::AllHalted);
        assert_eq!(rf.reason, rb.reason);
        for i in 0..2 {
            assert_eq!(fast.node(i).halted(), base.node(i).halted(), "node {i}");
            assert_eq!(fast.node(i).cycles(), base.node(i).cycles(), "node {i} cycles");
            assert_eq!(
                fast.node(i).machine().cpu.regs,
                base.node(i).machine().cpu.regs,
                "node {i} registers"
            );
            assert_eq!(
                fast.node(i).machine().latencies(),
                base.node(i).machine().latencies(),
                "node {i} IRQ stamps"
            );
        }
        assert_eq!(
            fast.wire().unwrap().delivery_log(),
            base.wire().unwrap().delivery_log()
        );
        assert_eq!(
            fast.node(1).halted(),
            Some(StopReason::MmioExit((0..frames).map(|k| 0x60 + k).sum())),
            "checksum of the delivered ids"
        );
        assert!(
            fast.quanta() * 2 < base.quanta(),
            "stretch must skip the all-asleep gaps ({} vs {} quanta)",
            fast.quanta(),
            base.quanta()
        );
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        // The parallel node-advance phase must not move a single bit:
        // clocks, registers, IRQ stamps and the wire log at 2/4/8
        // worker threads all equal the sequential scheduler's.
        let frames = 6u32;
        let mut base = sleepy_exchange(SystemConfig::default(), frames);
        let rb = base.run(10_000_000);
        assert_eq!(rb.reason, SystemStop::AllHalted);
        for threads in [2, 4, 8] {
            let mut par = sleepy_exchange(
                SystemConfig { threads, ..SystemConfig::default() },
                frames,
            );
            let rp = par.run(10_000_000);
            assert_eq!(rp.reason, rb.reason, "threads={threads}");
            for i in 0..2 {
                assert_eq!(par.node(i).halted(), base.node(i).halted(), "t={threads} node {i}");
                assert_eq!(par.node(i).cycles(), base.node(i).cycles(), "t={threads} node {i}");
                assert_eq!(
                    par.node(i).machine().cpu.regs,
                    base.node(i).machine().cpu.regs,
                    "t={threads} node {i} registers"
                );
                assert_eq!(
                    par.node(i).machine().latencies(),
                    base.node(i).machine().latencies(),
                    "t={threads} node {i} IRQ stamps"
                );
            }
            assert_eq!(
                par.wire().unwrap().delivery_log(),
                base.wire().unwrap().delivery_log(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fork_mid_mission_is_independent_and_bit_identical() {
        let frames = 6u32;
        let mut sys = sleepy_exchange(SystemConfig::default(), frames);
        let r = sys.run(5_000);
        assert_eq!(r.reason, SystemStop::Horizon, "fork point is mid-mission");
        let mut clean = sys.fork();
        let mut dirty = sys.fork();
        // The forks live on their own wires: identical names, new
        // identities.
        assert_eq!(clean.wire().unwrap().name(), sys.wire().unwrap().name());
        assert!(!clean.wire().unwrap().same_wire(sys.wire().unwrap()));
        assert!(!clean.wire().unwrap().same_wire(dirty.wire().unwrap()));
        // Fork state starts where the original is.
        assert_eq!(clean.now(), sys.now());
        assert_eq!(clean.node(0).cycles(), sys.node(0).cycles());
        // An extra frame injected on the dirty fork's wire must never
        // leak into the original or the clean fork. It poses as the
        // producer (station 0) so only the consumer receives it.
        dirty.wire().unwrap().enqueue(
            dirty.now() / 4 + 100,
            0,
            alia_can::CanFrame::new(alia_can::CanId::Standard(0x0F), &[0xEE]),
        );
        let r0 = sys.run(10_000_000);
        let r1 = clean.run(10_000_000);
        let r2 = dirty.run(10_000_000);
        assert_eq!(r0.reason, SystemStop::AllHalted);
        assert_eq!(r1, r0, "clean fork replays the original bit-identically");
        for i in 0..2 {
            assert_eq!(clean.node(i).halted(), sys.node(i).halted(), "node {i}");
            assert_eq!(clean.node(i).cycles(), sys.node(i).cycles(), "node {i} cycles");
            assert_eq!(
                clean.node(i).machine().cpu.regs,
                sys.node(i).machine().cpu.regs,
                "node {i} registers"
            );
        }
        assert_eq!(
            clean.wire().unwrap().delivery_log(),
            sys.wire().unwrap().delivery_log()
        );
        // The dirty fork saw one more delivery (its injected frame) and
        // a different consumer checksum — inputs diverged, so results
        // diverged; the original's log is unchanged.
        assert_eq!(r2.reason, SystemStop::AllHalted);
        assert_eq!(
            dirty.wire().unwrap().deliveries_len(),
            sys.wire().unwrap().deliveries_len() + 1
        );
        assert_ne!(
            dirty.node(1).machine().cpu.regs[6],
            sys.node(1).machine().cpu.regs[6],
            "the consumer checksum absorbed the injected frame"
        );
    }

    #[test]
    fn fork_rebinds_gateway_engine_wires() {
        // A forked multi-wire topology: the Dma engine's two wire
        // handles must point at the fork's wires, not the original's.
        use crate::dma::DmaConfig;
        use crate::DMA_BASE;
        let mut sys = System::new();
        let wa = sys.add_wire("sensor", 4);
        let wb = sys.add_wire("backbone", 4);
        let mut gconf = MachineConfig::m3_like();
        gconf.devices = vec![DeviceSpec::Dma(
            DmaConfig { base: DMA_BASE, irq: 3, node_a: 7, node_b: 7, latency: 32 },
            wa.clone(),
            wb.clone(),
        )];
        sys.add_node("gateway", machine(gconf, &asm("wfi\n bkpt #0")));
        let fork = sys.fork();
        let g = fork.node(0).machine().bus.device::<Dma>().expect("engine");
        assert!(g.wire_a().same_wire(fork.wire_named("sensor").unwrap()));
        assert!(g.wire_b().same_wire(fork.wire_named("backbone").unwrap()));
        assert!(!g.wire_a().same_wire(&wa), "fork left the original wire");
        assert!(!g.wire_b().same_wire(&wb));
        let orig = sys.node(0).machine().bus.device::<Dma>().expect("engine");
        assert!(orig.wire_a().same_wire(&wa), "original untouched");
    }

    #[test]
    fn parked_wfi_node_wakes_on_shared_frame() {
        // The consumer sleeps in WFI with no local events: only a frame
        // from the producer can wake it. The bounded scheduler must
        // park the sleep at quantum boundaries, then wake it at the
        // exact arrival cycle.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_p = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             movw r1, #0x77
             str r1, [r0, #0]
             mov r1, #1
             str r1, [r0, #4]
             str r1, [r0, #8]
             str r1, [r0, #16]
             bkpt #0",
        );
        sys.add_node("producer", machine(pconf, &main_p));

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm("wfi\n bkpt #1");
        let rx_handler = asm("bx lr");
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);

        let r = sys.run(1_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(1)));
        let d = wire.delivery(0).expect("frame crossed");
        let arrival = d.completed_at * 4;
        let lat = sys.node(1).machine().latencies()[0];
        assert_eq!(lat.pend_cycle, arrival, "woken at the exact arrival cycle");
    }
}
