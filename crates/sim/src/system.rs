//! Multi-ECU execution: N machines, one shared CAN wire, a
//! deterministic quantum scheduler.
//!
//! A [`System`] owns a set of [`Node`]s (a [`Machine`] plus its device
//! set and local cycle clock) and, optionally, one [`SharedCanBus`] that
//! several nodes' CAN controllers attach to. [`System::run`] advances
//! the nodes in bounded quanta:
//!
//! 1. every live node runs to the quantum boundary
//!    ([`Machine::run_until`] — WFI sleeps park at the boundary instead
//!    of overshooting it);
//! 2. the shared wire arbitrates and transmits everything enqueued up
//!    to the boundary ([`SharedCanBus::run_to_cycle`]);
//! 3. each controller is re-armed at the arrival cycle of its next
//!    delivery ([`CanController::note_wire_progress`]), so reception —
//!    FIFO push and RX interrupt — happens at the exact completion
//!    cycle inside a later quantum, through the ordinary device-tick
//!    machinery.
//!
//! # Why this is deterministic
//!
//! The quantum never exceeds the wire's **lookahead**
//! ([`SharedCanBus::min_quantum_cycles`]): the minimum time any CAN
//! frame occupies the wire. A frame enqueued inside quantum *k*
//! therefore cannot complete before the boundary of quantum *k+1* — by
//! the time the wire arbitrates it, every node has already enqueued
//! everything it could have contributed to that arbitration window, and
//! same-id ties break on `(enqueue time, node id)`, not host call
//! order. Transmission start times depend only on enqueue times and
//! prior wire state, never on where the boundaries fall, so per-node
//! cycle counts, checksums and the delivery log are bit-identical for
//! *any* quantum at or below the lookahead and *any* node service
//! order ([`SystemConfig`] exposes both knobs precisely so tests can
//! prove it). When the wire is busy past the next boundary, the
//! scheduler stretches the quantum to `busy_until` — no new arbitration
//! can happen earlier, so the extra length is free.

use crate::devices::{CanController, SharedCanBus};
use crate::machine::{Machine, StopReason};

/// A machine participating in a [`System`]: the machine, its name, and
/// its halt state. The node's clock is the machine's cycle counter; the
/// scheduler advances it in quanta via [`Node::run_until`].
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    machine: Machine,
    halted: Option<StopReason>,
}

impl Node {
    /// Wraps `machine` as a schedulable node.
    #[must_use]
    pub fn new(name: impl Into<String>, machine: Machine) -> Node {
        Node { name: name.into(), machine, halted: None }
    }

    /// The node's name (diagnostics and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the wrapped machine (loading images, reading
    /// results). Callers must not advance the machine directly while a
    /// `System` is scheduling it.
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Why the node halted, if it has ([`StopReason::CycleLimit`] never
    /// halts a node — it only marks a quantum boundary).
    #[must_use]
    pub fn halted(&self) -> Option<StopReason> {
        self.halted
    }

    /// The node's local clock (machine cycles).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Runs the node up to `cycle` (a bounded, resumable advance).
    /// Returns the halt reason if the node stopped for a reason other
    /// than the bound, now or previously.
    pub fn run_until(&mut self, cycle: u64) -> Option<StopReason> {
        if self.halted.is_none() && self.machine.cycles() < cycle {
            let r = self.machine.run_until(cycle);
            if r.reason != StopReason::CycleLimit {
                self.halted = Some(r.reason);
            }
        }
        self.halted
    }
}

/// Scheduler knobs. The defaults are always safe; the knobs exist so
/// determinism tests can vary the schedule and assert identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Quantum override in cycles. Clamped to the shared wire's
    /// lookahead ([`SharedCanBus::min_quantum_cycles`]) — larger values
    /// could deliver frames late. `None` uses the lookahead itself
    /// (or one whole-horizon quantum when no shared wire is attached).
    pub quantum: Option<u64>,
    /// Rotate the node service order every quantum instead of always
    /// starting at node 0. Results must not change either way.
    pub rotate_order: bool,
    /// Stretch quanta past the wire lookahead while the wire is idle,
    /// no controller holds armed TX state and every live node is parked
    /// in a WFI sleep — the system skips straight to the earliest local
    /// wakeup in one quantum instead of pacing the gap at lookahead
    /// granularity. Results must not change either way (no node can
    /// execute — let alone transmit — inside the stretch). `false`
    /// keeps conservative quanta for determinism comparisons.
    pub idle_stretch: bool,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig { quantum: None, rotate_order: false, idle_stretch: true }
    }
}

/// Why [`System::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemStop {
    /// Every node halted: exit, breakpoint, fault, or system-wide
    /// quiescence (all live nodes asleep in WFI with no local events
    /// and a quiet wire — each is marked [`StopReason::WfiIdle`]).
    AllHalted,
    /// The horizon was reached with at least one node still live.
    Horizon,
}

/// The outcome of [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemRunResult {
    /// Why the run returned.
    pub reason: SystemStop,
    /// Global time reached (cycles).
    pub now: u64,
    /// Quanta executed (scheduler introspection).
    pub quanta: u64,
}

/// The shared-wire CAN node ids carried by `machine`'s controllers.
fn shared_can_node_ids(machine: &Machine) -> impl Iterator<Item = usize> + '_ {
    machine.bus.devices().iter().filter_map(|d| {
        let c = d.dev.as_any().downcast_ref::<CanController>()?;
        c.shared_bus().map(|_| c.config().node)
    })
}

/// N nodes plus shared interconnects, advanced by a deterministic
/// event-driven quantum scheduler. See the module docs for the
/// scheduling contract.
#[derive(Debug, Default)]
pub struct System {
    nodes: Vec<Node>,
    wire: Option<SharedCanBus>,
    config: SystemConfig,
    now: u64,
    quanta: u64,
}

impl System {
    /// An empty system with default scheduling.
    #[must_use]
    pub fn new() -> System {
        System::default()
    }

    /// An empty system with explicit scheduler knobs.
    #[must_use]
    pub fn with_config(config: SystemConfig) -> System {
        System { config, ..System::default() }
    }

    /// Creates the system's shared CAN wire and returns the attachment
    /// handle (pass it to [`crate::DeviceSpec::SharedCan`] for each
    /// participating machine). One wire per system.
    ///
    /// # Panics
    ///
    /// Panics if the system already has a wire.
    pub fn shared_can_bus(&mut self, cycles_per_bit: u64) -> SharedCanBus {
        assert!(self.wire.is_none(), "the system already has a shared CAN wire");
        let wire = SharedCanBus::new(cycles_per_bit);
        self.wire = Some(wire.clone());
        wire
    }

    /// Adds a node and returns its index. Nodes join at the system's
    /// current time; machines must not have been run ahead of it.
    ///
    /// If the machine carries shared-wire CAN controllers, their wire
    /// becomes the system's wire (created standalone via
    /// [`SharedCanBus::new`] or via [`System::shared_can_bus`]) — a
    /// shared controller the scheduler does not service would never
    /// receive a frame.
    ///
    /// # Panics
    ///
    /// Panics when the machine was run ahead of system time, when one
    /// of its controllers is attached to a *different* wire than the
    /// system's (one wire per system), or when a controller reuses a
    /// CAN node id already present on the wire (receivers filter their
    /// own transmissions by node id, so a duplicate would silently
    /// drop every peer frame).
    pub fn add_node(&mut self, name: impl Into<String>, machine: Machine) -> usize {
        assert!(
            machine.cycles() <= self.now,
            "a node must not join ahead of system time"
        );
        let mut wire_ids: Vec<usize> =
            self.nodes.iter().flat_map(|n| shared_can_node_ids(n.machine())).collect();
        for d in machine.bus.devices() {
            let Some(ctrl) = d.dev.as_any().downcast_ref::<CanController>() else {
                continue;
            };
            let Some(wire) = ctrl.shared_bus() else { continue };
            match &self.wire {
                None => self.wire = Some(wire.clone()),
                Some(existing) => assert!(
                    existing.same_wire(wire),
                    "all shared CAN controllers in a System must attach to one wire"
                ),
            }
            let id = ctrl.config().node;
            assert!(
                !wire_ids.contains(&id),
                "duplicate CAN node id {id} on the shared wire"
            );
            wire_ids.push(id);
        }
        self.nodes.push(Node::new(name, machine));
        self.nodes.len() - 1
    }

    /// The nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node `i`.
    #[must_use]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Mutable node `i` (setup and result extraction).
    pub fn node_mut(&mut self, i: usize) -> &mut Node {
        &mut self.nodes[i]
    }

    /// The shared wire, if one was created.
    #[must_use]
    pub fn wire(&self) -> Option<&SharedCanBus> {
        self.wire.as_ref()
    }

    /// Global time reached so far (cycles).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Quanta executed so far.
    #[must_use]
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// The effective quantum in cycles: the configured override clamped
    /// to the wire lookahead, or the lookahead itself (`u64::MAX` with
    /// no wire — independent nodes need no boundaries).
    #[must_use]
    pub fn effective_quantum(&self) -> u64 {
        let lookahead =
            self.wire.as_ref().map_or(u64::MAX, SharedCanBus::min_quantum_cycles);
        self.config.quantum.unwrap_or(lookahead).min(lookahead).max(1)
    }

    /// The idle-stretch boundary, when the system is eligible: the wire
    /// is idle, no controller holds armed TX state
    /// ([`CanController::tx_armed`]) and every live node is parked in a
    /// WFI sleep — so nothing can execute (let alone transmit) before
    /// the earliest local wakeup, and the quantum may stretch straight
    /// to it. `None` when ineligible or no finite wakeup exists (the
    /// quiescence check below handles the latter).
    fn idle_stretch_boundary(&self) -> Option<u64> {
        if let Some(wire) = &self.wire {
            if wire.pending() > 0 || wire.busy_until_cycle() > self.now {
                return None;
            }
        }
        let mut wake = u64::MAX;
        for node in &self.nodes {
            let m = node.machine();
            if node.halted.is_none() {
                if !m.wfi_parked() {
                    return None;
                }
                wake = wake.min(m.next_local_event());
            }
            for d in m.bus.devices() {
                if let Some(c) = d.dev.as_any().downcast_ref::<CanController>() {
                    if c.tx_armed() {
                        return None;
                    }
                }
            }
        }
        (wake != u64::MAX).then_some(wake)
    }

    /// Advances the system to `horizon` (cycles) or until every node
    /// halts, delivering cross-node CAN frames cycle-accurately.
    pub fn run(&mut self, horizon: u64) -> SystemRunResult {
        let quantum = self.effective_quantum();
        while self.now < horizon && self.nodes.iter().any(|n| n.halted.is_none()) {
            // Quantum boundary: never beyond the lookahead past `now`,
            // but stretched across a busy wire (no new arbitration can
            // start before `busy_until`), across an all-asleep system
            // (ROADMAP's scheduler idle-stretch), and clamped to the
            // horizon.
            let mut boundary = self.now.saturating_add(quantum);
            if let Some(wire) = &self.wire {
                boundary = boundary.max(wire.busy_until_cycle());
            }
            if self.config.idle_stretch {
                if let Some(wake) = self.idle_stretch_boundary() {
                    boundary = boundary.max(wake);
                }
            }
            let boundary = boundary.min(horizon);
            // 1. Every live node runs to the boundary. The service
            // order is immaterial (nodes only interact through the
            // wire, which is parked until step 2); `rotate_order`
            // exists to prove that.
            let n = self.nodes.len();
            let offset = if self.config.rotate_order && n > 0 {
                (self.quanta as usize) % n
            } else {
                0
            };
            for i in 0..n {
                self.nodes[(i + offset) % n].run_until(boundary);
            }
            // 2. The wire arbitrates everything enqueued this quantum.
            // 3. Controllers re-arm at their next delivery's arrival.
            if let Some(wire) = &self.wire {
                wire.run_to_cycle(boundary);
                for node in &mut self.nodes {
                    let bus = &mut node.machine.bus;
                    let mut touched = false;
                    for d in bus.devices_mut() {
                        if let Some(c) = d.as_any_mut().downcast_mut::<CanController>() {
                            c.note_wire_progress();
                            touched = true;
                        }
                    }
                    if touched {
                        bus.refresh_next_event();
                    }
                }
            }
            // Quiescence: when the wire is quiet (nothing queued or in
            // flight) and every live node is parked in a WFI sleep with
            // no local wakeup source, no event can ever occur again —
            // the nodes are idle exactly as a lone machine reporting
            // `WfiIdle` would be. Without this, an all-idle system
            // would spin one quantum at a time to the horizon.
            let wire_quiet = self
                .wire
                .as_ref()
                .is_none_or(|w| w.pending() == 0 && w.busy_until_cycle() <= boundary);
            if wire_quiet
                && self
                    .nodes
                    .iter()
                    .all(|n| n.halted.is_some() || n.machine.idle_parked())
            {
                for n in &mut self.nodes {
                    if n.halted.is_none() {
                        n.halted = Some(StopReason::WfiIdle);
                    }
                }
            }
            self.now = boundary;
            self.quanta += 1;
        }
        let reason = if self.nodes.iter().all(|n| n.halted.is_some()) {
            SystemStop::AllHalted
        } else {
            SystemStop::Horizon
        };
        SystemRunResult { reason, now: self.now, quanta: self.quanta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{CanConfig, TimerConfig};
    use crate::machine::{DeviceSpec, MachineConfig};
    use crate::{CAN_BASE, SRAM_BASE, TIMER_BASE};
    use alia_isa::{Assembler, IsaMode};

    fn asm(src: &str) -> Vec<u8> {
        Assembler::new(IsaMode::T2).assemble(src).expect("assembles").bytes
    }

    fn machine(config: MachineConfig, main: &[u8]) -> Machine {
        let mut m = Machine::new(config);
        m.load_flash(0x100, main);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    }

    #[test]
    fn independent_nodes_run_to_completion() {
        let mut sys = System::new();
        let count = |n: u32| {
            asm(&format!(
                "mov r0, #0
                 loop: add r0, r0, #1
                 cmp r0, #{n}
                 bne loop
                 bkpt #0"
            ))
        };
        sys.add_node("a", machine(MachineConfig::m3_like(), &count(10)));
        sys.add_node("b", machine(MachineConfig::m3_like(), &count(200)));
        let r = sys.run(1_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(0).halted(), Some(StopReason::Bkpt(0)));
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(0)));
        assert_eq!(sys.node(0).machine().cpu.regs[0], 10);
        assert_eq!(sys.node(1).machine().cpu.regs[0], 200);
        assert!(sys.node(1).cycles() > sys.node(0).cycles());
        assert_eq!(r.quanta, 1, "no wire: a single whole-horizon quantum");
    }

    #[test]
    fn frames_cross_the_shared_wire_guest_to_guest() {
        // Producer: timer-paced TX of 4 frames, then exit. Consumer:
        // spins until its RX IRQ handler has drained 4 frames, then
        // exits with the checksum.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![
            DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 800 }),
            DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            ),
        ];
        let main_p = asm(
            "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #800
             str r1, [r0, #4]
             mov r1, #3
             str r1, [r0, #0]
             spin: cmp r4, #4
             bne spin
             movw r0, #0
             movt r0, #0x4000
             str r4, [r0, #0]
             halt: b halt",
        );
        let tx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             cmp r4, #4
             bge done
             movw r1, #0x100
             add r1, r1, r4
             str r1, [r0, #0]
             mov r1, #4
             str r1, [r0, #4]
             str r4, [r0, #8]
             mov r1, #0
             str r1, [r0, #12]
             str r1, [r0, #16]
             add r4, r4, #1
             done: bx lr",
        );
        let mut p = machine(pconf, &main_p);
        p.load_flash(0x200, &tx_handler);
        p.load_flash(0, &0x200u32.to_le_bytes());
        sys.add_node("producer", p);

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm(
            "spin: cmp r7, #4
             bne spin
             movw r0, #0
             movt r0, #0x4000
             str r6, [r0, #0]
             halt: b halt",
        );
        let rx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             rxloop: ldr r1, [r0, #20]
             cmp r1, #0
             beq rxdone
             ldr r1, [r0, #24]
             add r6, r6, r1
             ldr r1, [r0, #32]
             add r6, r6, r1
             str r1, [r0, #40]
             add r7, r7, #1
             b rxloop
             rxdone: bx lr",
        );
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);

        let r = sys.run(10_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        let expected: u32 = (0..4).map(|k| 0x100 + k + k).sum();
        assert_eq!(sys.node(0).halted(), Some(StopReason::MmioExit(4)));
        assert_eq!(sys.node(1).halted(), Some(StopReason::MmioExit(expected)));
        assert_eq!(wire.deliveries_len(), 4);
        // RX interrupts were stamped at frame-completion cycles: the
        // consumer's observed latencies are the entry overhead, not a
        // quantum-boundary artifact.
        let lats = sys.node(1).machine().latencies();
        assert_eq!(lats.len(), 4);
        assert!(lats.iter().all(|l| l.entry_cycle - l.pend_cycle < 100));
    }

    #[test]
    fn quiescent_wfi_system_halts_as_idle() {
        // Every live node asleep with no local events and a quiet wire:
        // the system must settle to AllHalted/WfiIdle, not spin one
        // quantum at a time until the horizon.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        sys.add_node("sleeper", machine(conf, &asm("wfi\n bkpt #0")));
        sys.add_node("done", machine(MachineConfig::m3_like(), &asm("bkpt #0")));
        let r = sys.run(100_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(0).halted(), Some(StopReason::WfiIdle));
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(0)));
        assert!(r.quanta < 4, "settled immediately, not at the horizon");
    }

    #[test]
    fn standalone_wire_is_adopted_at_add_node() {
        // A SharedCanBus built outside System::shared_can_bus must
        // still be serviced by the scheduler.
        let wire = SharedCanBus::new(4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        let mut sys = System::new();
        sys.add_node("n0", machine(conf, &asm("bkpt #0")));
        assert!(sys.wire().is_some_and(|w| w.same_wire(&wire)));
    }

    #[test]
    #[should_panic(expected = "duplicate CAN node id")]
    fn duplicate_node_ids_are_rejected() {
        // Receivers filter their own transmissions by node id; two
        // controllers sharing an id would silently drop peer frames.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let conf = |node| {
            let mut c = MachineConfig::m3_like();
            c.devices = vec![DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node, ..CanConfig::default() },
                wire.clone(),
            )];
            c
        };
        sys.add_node("a", machine(conf(0), &asm("bkpt #0")));
        sys.add_node("b", machine(conf(0), &asm("bkpt #0")));
    }

    #[test]
    #[should_panic(expected = "must attach to one wire")]
    fn mismatched_wires_are_rejected() {
        let mut sys = System::new();
        let _wire = sys.shared_can_bus(4);
        let other = SharedCanBus::new(4);
        let mut conf = MachineConfig::m3_like();
        conf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            other,
        )];
        sys.add_node("stray", machine(conf, &asm("bkpt #0")));
    }

    /// A WFI-paced exchange: the producer sleeps between timer ticks
    /// and ships one frame per wakeup; the consumer sleeps until its RX
    /// interrupt has counted `frames`. Between events the whole system
    /// is asleep, so the idle-stretch has real gaps to skip.
    fn sleepy_exchange(config: SystemConfig, frames: u32) -> System {
        let mut sys = System::with_config(config);
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![
            DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 2_000 }),
            DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            ),
        ];
        let main_p = asm(&format!(
            "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #2000
             str r1, [r0, #4]
             mov r1, #3
             str r1, [r0, #0]
             sleep: wfi
             cmp r4, #{frames}
             blt sleep
             bkpt #0"
        ));
        let tick_handler = asm(&format!(
            "movw r0, #0x2000
             movt r0, #0x4000
             cmp r4, #{frames}
             bge done
             movw r1, #0x60
             add r1, r1, r4
             str r1, [r0, #0]
             mov r1, #2
             str r1, [r0, #4]
             str r4, [r0, #8]
             mov r1, #0
             str r1, [r0, #16]
             add r4, r4, #1
             done: bx lr"
        ));
        let mut p = machine(pconf, &main_p);
        p.load_flash(0x200, &tick_handler);
        p.load_flash(0, &0x200u32.to_le_bytes());
        sys.add_node("producer", p);

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm(&format!(
            "sleep: wfi
             cmp r7, #{frames}
             blt sleep
             movw r0, #0
             movt r0, #0x4000
             str r6, [r0, #0]
             halt: b halt"
        ));
        let rx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             rxloop: ldr r1, [r0, #20]
             cmp r1, #0
             beq rxdone
             ldr r1, [r0, #24]
             add r6, r6, r1
             str r1, [r0, #40]
             add r7, r7, #1
             b rxloop
             rxdone: bx lr",
        );
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);
        sys
    }

    #[test]
    fn idle_stretch_matches_conservative_quanta() {
        // ROADMAP's scheduler idle-stretch: while every live node
        // sleeps, the wire is idle and no controller is armed, quanta
        // stretch to the next local wakeup — with bit-identical per-node
        // cycles, registers and delivery logs, in far fewer quanta.
        let frames = 6u32;
        let mut base = sleepy_exchange(
            SystemConfig { idle_stretch: false, ..SystemConfig::default() },
            frames,
        );
        let rb = base.run(10_000_000);
        let mut fast = sleepy_exchange(SystemConfig::default(), frames);
        let rf = fast.run(10_000_000);
        assert_eq!(rb.reason, SystemStop::AllHalted);
        assert_eq!(rf.reason, rb.reason);
        for i in 0..2 {
            assert_eq!(fast.node(i).halted(), base.node(i).halted(), "node {i}");
            assert_eq!(fast.node(i).cycles(), base.node(i).cycles(), "node {i} cycles");
            assert_eq!(
                fast.node(i).machine().cpu.regs,
                base.node(i).machine().cpu.regs,
                "node {i} registers"
            );
            assert_eq!(
                fast.node(i).machine().latencies(),
                base.node(i).machine().latencies(),
                "node {i} IRQ stamps"
            );
        }
        assert_eq!(
            fast.wire().unwrap().delivery_log(),
            base.wire().unwrap().delivery_log()
        );
        assert_eq!(
            fast.node(1).halted(),
            Some(StopReason::MmioExit((0..frames).map(|k| 0x60 + k).sum())),
            "checksum of the delivered ids"
        );
        assert!(
            fast.quanta() * 2 < base.quanta(),
            "stretch must skip the all-asleep gaps ({} vs {} quanta)",
            fast.quanta(),
            base.quanta()
        );
    }

    #[test]
    fn parked_wfi_node_wakes_on_shared_frame() {
        // The consumer sleeps in WFI with no local events: only a frame
        // from the producer can wake it. The bounded scheduler must
        // park the sleep at quantum boundaries, then wake it at the
        // exact arrival cycle.
        let mut sys = System::new();
        let wire = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_p = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             movw r1, #0x77
             str r1, [r0, #0]
             mov r1, #1
             str r1, [r0, #4]
             str r1, [r0, #8]
             str r1, [r0, #16]
             bkpt #0",
        );
        sys.add_node("producer", machine(pconf, &main_p));

        let mut cconf = MachineConfig::m3_like();
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm("wfi\n bkpt #1");
        let rx_handler = asm("bx lr");
        let mut c = machine(cconf, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        sys.add_node("consumer", c);

        let r = sys.run(1_000_000);
        assert_eq!(r.reason, SystemStop::AllHalted);
        assert_eq!(sys.node(1).halted(), Some(StopReason::Bkpt(1)));
        let d = wire.delivery(0).expect("frame crossed");
        let arrival = d.completed_at * 4;
        let lat = sys.node(1).machine().latencies()[0];
        assert_eq!(lat.pend_cycle, arrival, "woken at the exact arrival cycle");
    }
}
