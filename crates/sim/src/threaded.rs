//! Tier-3 threaded-code engine: the block cache's hot-block lowering.
//!
//! The tier-2 block engine ([`crate::predecode::BlockCache`]) replays
//! cached straight-line runs entry-at-a-time through the generic
//! executor: per instruction it re-runs the fetch-timing walk, the
//! predication lookup and the full `Instr` match. This module lowers
//! *hot* blocks one step further, to classic threaded code: each
//! [`Op`] is a pre-resolved handler function pointer plus decoded
//! operands (registers, immediates, access lengths, a memory-class
//! fetch plan), dispatched by a tight loop with no re-decode and no
//! generic match.
//!
//! Three mechanisms carry the speedup:
//!
//! * **Handler specialization** — the dominant single instructions
//!   (ALU reg/imm, `mov`, `cmp`, direct branches, `cbz`,
//!   immediate-offset `ldr`/`str`) get dedicated handlers that touch
//!   exactly the state the instruction touches. Everything else falls
//!   back to a generic handler that reuses [`Machine::issue`], so the
//!   lowering never has to be complete to be correct.
//! * **Superinstruction fusion** — the dominant dynamic pairs
//!   (`cmp`+branch, `alu`+`cmp`, `alu`+branch loop backedges,
//!   `ldr`+`alu`) are fused into single handlers at promotion time,
//!   halving dispatch count on loop-shaped code. A fused handler
//!   re-checks the tier-2 split conditions *between* its two halves,
//!   so interrupts and `run_until` bounds land on exactly the same
//!   instruction boundary the unfused path puts them on.
//! * **Batched fetch-timing replay** — for straight-line code in
//!   uncached, MPU-less flash the streaming-buffer walk of
//!   `Machine::fetch_timing` is precomputed per fetch into a
//!   [`FetchPlan`]: statically window-resident fetches charge zero
//!   cycles with no state change, single-refill fetches charge one
//!   live [`crate::Flash::access_timing`] call (keeping seq/nonseq
//!   cycles, flash stats and stream state exact), and anything the
//!   builder cannot prove falls back to the full `fetch_timing` call.
//!
//! # Bit-identity contract
//!
//! The lowering is host-only: cycles, checksums, IRQ pend/entry
//! stamps, flash/patch statistics and stop reasons are bit-identical
//! with the tier on or off. The argument mirrors tier-2's (see
//! `Machine::exec_blocks`), plus one hoisting step: after a *pure*
//! op — one that cannot pend an interrupt, raise a device signal,
//! move a revision counter, touch `next_event` or set the exit code —
//! the tier-2 safety re-checks are vacuous, so only the cycle budget
//! is compared (against a bound recomputed after every impure op).
//! Purity is classified conservatively at build time; anything that
//! touches memory, a device, or might exception-return is impure and
//! gets the full tier-2 check sequence after it executes.
//!
//! Promotion is heat-directed: `Machine::exec_blocks` counts per-slot
//! dispatches and promotes a block after [`PROMOTE_HEAT`] tier-2
//! executions, so cold blocks never pay the build. Invalidation is
//! tier-2's, unchanged: threaded blocks live inside `BlockCache`
//! slots and die with them (generation stamps, watermark stores,
//! device revisions, disable), counted as demotions.

use alia_isa::{Cond, DpOp, Index, Instr, IsaMode, Offset, Operand2, Reg};

use crate::cpu::{add_with_carry, EXC_RETURN_HW, EXC_RETURN_SW};
use crate::machine::{Machine, StopReason};
use crate::mem::{Access, FLASH_BASE};
use crate::predecode::Entry;

/// Tier-2 dispatches of a block before it is promoted to threaded
/// code. Low enough that benchmark loops promote almost immediately,
/// high enough that straight-line startup code never pays the build.
pub(crate) const PROMOTE_HEAT: u32 = 8;

/// A handler: executes one [`Op`] (one instruction or one fused pair)
/// against the machine and reports how the dispatch loop should
/// proceed.
pub(crate) type Handler = fn(&mut Machine, &Op, &mut ExecCtx) -> Ctl;

/// Handler outcome, consumed by [`dispatch`].
#[derive(Debug)]
pub(crate) enum Ctl {
    /// Straight-line: fell through to the next op.
    Next,
    /// Control transfer (or conditional fall-through past a terminal
    /// branch): leave the block and chain at the current PC.
    Exit,
    /// A tier-2 safety condition tripped mid-op (fused pairs check
    /// between halves): split to the per-step path, no budget stat.
    Split,
    /// The cycle budget tripped mid-op: split, counting a budget split.
    SplitBudget,
    /// Execution stopped (fault, breakpoint, MMIO exit...).
    Stop(StopReason),
}

/// How a threaded (or tier-2) block execution ended, as seen by the
/// chain loop in `Machine::exec_blocks`.
#[derive(Debug)]
pub(crate) enum BlockExit {
    /// Block completed; chain at the current PC.
    Chain,
    /// Safety split back to the per-step path.
    Split,
    /// Budget split back to the per-step path (counted by the caller).
    SplitBudget,
    /// Execution stopped.
    Stop(StopReason),
}

/// Per-dispatch context shared between the loop and the handlers.
#[derive(Debug)]
pub(crate) struct ExecCtx {
    /// `run`/`run_until` cycle bound for this dispatch.
    pub(crate) cycle_limit: u64,
    /// Earliest scheduled-interrupt cycle (stable across the chain).
    pub(crate) sched_due: u64,
    /// Code-write generation snapshot the chain entered with.
    pub(crate) cwg: u64,
    /// Device-revision snapshot the chain entered with.
    pub(crate) revs: u64,
    /// `min(cycle_limit, sched_due, bus.next_event())`, recomputed
    /// after every impure op — the single compare pure ops make.
    pub(crate) bound: u64,
    /// Flash streaming-window size (bytes) for [`FetchPlan::Refill`].
    pub(crate) window: u32,
    /// First fetch length: `mode.min_instr_size()`.
    pub(crate) flen: u32,
}

/// Precomputed replay of one `Machine::fetch_timing` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FetchPlan {
    /// No call at all (unused second-fetch slot of a narrow op).
    None,
    /// Statically window-resident: zero cycles, no state change.
    Free,
    /// Exactly one streaming refill of the given window base: one live
    /// `Flash::access_timing` fetch plus the buffered-window update.
    Refill(u32),
    /// Unplannable (block entry, post-impure state, non-flash code,
    /// I-cache/MPU fitted, multi-window): run `fetch_timing` in full.
    Slow,
}

/// ALU micro-operation kind shared by specialized and fused handlers.
/// Only the two-operand forms without carry-in participate; `adc`,
/// `sbc` and `rsb` stay on the generic handler.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AluKind {
    /// `rd = rn + op2`
    Add,
    /// `rd = rn - op2`
    Sub,
    /// `rd = rn & op2`
    And,
    /// `rd = rn | op2`
    Orr,
    /// `rd = rn ^ op2`
    Eor,
    /// `rd = rn & !op2`
    Bic,
}

/// Pre-resolved operands for one instruction (or one half of a fused
/// pair). Fields are only meaningful for the handler that reads them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Half {
    /// ALU kind (ALU handlers).
    pub(crate) kind: AluKind,
    /// Flag-setting (`s` suffix).
    pub(crate) s: bool,
    /// Second operand is `rm` (`true`) or `imm` (`false`).
    pub(crate) b_reg: bool,
    /// Destination register / `ldr`/`str` transfer register.
    pub(crate) rd: Reg,
    /// First operand register / memory base register.
    pub(crate) rn: Reg,
    /// Register second operand.
    pub(crate) rm: Reg,
    /// Immediate second operand / memory offset (sign-extended).
    pub(crate) imm: u32,
    /// Memory access length in bytes (`ldr`/`str` handlers).
    pub(crate) len: u32,
}

impl Half {
    /// Placeholder for unused halves.
    pub(crate) const NONE: Half = Half {
        kind: AluKind::Add,
        s: false,
        b_reg: false,
        rd: Reg::R0,
        rn: Reg::R0,
        rm: Reg::R0,
        imm: 0,
        len: 0,
    };
}

/// One threaded-code entry: a handler pointer plus everything it needs
/// pre-resolved. Covers one instruction, or two when fused.
#[derive(Debug, Clone)]
pub(crate) struct Op {
    /// The handler.
    pub(crate) run: Handler,
    /// The first (or only) instruction's predecode entry — the generic
    /// handler issues it; every handler charges its patch accounting.
    pub(crate) entry: Entry,
    /// Whether the whole op (both halves when fused) is pure: cannot
    /// pend an interrupt, raise a device signal, move a revision,
    /// change `next_event`, or set the exit code. Pure ops get a
    /// single budget compare after execution instead of the full
    /// tier-2 check sequence.
    pub(crate) pure: bool,
    /// Total byte size (both halves when fused).
    pub(crate) size: u32,
    /// First-half byte size (== `size` when not fused).
    pub(crate) size1: u32,
    /// Fetch plans: first instruction's first call and (wide Thumb)
    /// second-halfword call.
    pub(crate) f1: FetchPlan,
    /// Second fetch call of the first instruction ([`FetchPlan::None`]
    /// when narrow or A32).
    pub(crate) f1b: FetchPlan,
    /// Fetch plans of the fused second instruction.
    pub(crate) f2: FetchPlan,
    /// Second fetch call of the fused second instruction.
    pub(crate) f2b: FetchPlan,
    /// First-instruction operands.
    pub(crate) a: Half,
    /// Fused-second-instruction operands.
    pub(crate) b: Half,
    /// Branch condition (terminal branch handlers, fused or not).
    pub(crate) cond2: Cond,
    /// Precomputed absolute branch target (`& !1` applied at build).
    pub(crate) target: u32,
    /// `cbz`/`cbnz` polarity.
    pub(crate) nonzero: bool,
    /// Flash-patch hit count of the fused second instruction.
    pub(crate) patch2: u8,
}

/// A promoted block: the threaded lowering of one `BlockCache` slot.
#[derive(Debug)]
pub(crate) struct ThreadedBlock {
    /// The ops, in program order.
    pub(crate) ops: Box<[Op]>,
    /// The block's start PC — the self-loop fast path in [`dispatch`]
    /// compares the exit PC against it.
    pub(crate) start: u32,
    /// Alternate first op for self-loop iterations: identical to
    /// `ops[0]` except its fetch plans assume the streaming window the
    /// block itself leaves buffered at its taken backedge (instead of
    /// the unknown-entry `Slow` walk). Only reached after a *pure*
    /// terminal exit, which provably cannot disturb the fetch stream.
    pub(crate) loop_head: Op,
    /// Flash streaming-window size the fetch plans were built for.
    pub(crate) window: u32,
    /// First-fetch length (`mode.min_instr_size()`).
    pub(crate) flen: u32,
    /// Fused pairs selected at build time (stat reporting).
    pub(crate) fused: u32,
    /// [`FetchPlan::Free`] plans across the block's ops (fetch-plan
    /// mix reporting; the `loop_head` alternate entry is not counted).
    pub(crate) plans_free: u32,
    /// [`FetchPlan::Refill`] plans across the block's ops.
    pub(crate) plans_refill: u32,
    /// [`FetchPlan::Slow`] plans across the block's ops.
    pub(crate) plans_slow: u32,
}

// ---------------------------------------------------------------------
// Dispatch loop
// ---------------------------------------------------------------------

/// Executes one threaded block. The caller (`Machine::exec_blocks`)
/// owns chaining, stats and the per-chain snapshots; the loop owns the
/// per-op boundary checks (see the module docs for why pure ops only
/// compare the budget).
///
/// Returns the exit plus the number of *self-loop* iterations taken:
/// when the terminal op is pure and branches back to the block's own
/// start, the loop restarts internally instead of returning `Chain` —
/// skipping the per-dispatch chain machinery (slot probe, tier gates,
/// context rebuild) the caller would redo only to land back here. The
/// restart is gated on exactly the conditions the caller's re-entry
/// path (`Machine::tier3_for`) would check: empty IT queue and no
/// latched exit code — and the retained `ctx.bound` equals the rebuild
/// (pure ops cannot move `Bus::next_event`, and the limits are
/// chain-constant). The caller charges one hit / threaded dispatch /
/// chain follow per iteration, matching the unrolled accounting.
pub(crate) fn dispatch(
    m: &mut Machine,
    tb: &ThreadedBlock,
    cycle_limit: u64,
    sched_due: u64,
    cwg: u64,
    revs: u64,
) -> (BlockExit, u64) {
    let mut ctx = ExecCtx {
        cycle_limit,
        sched_due,
        cwg,
        revs,
        bound: cycle_limit.min(sched_due).min(m.bus.next_event()),
        window: tb.window,
        flen: tb.flen,
    };
    let last = tb.ops.len() - 1;
    let mut loops = 0u64;
    let mut looped = false;
    'restart: loop {
        for (idx, block_op) in tb.ops.iter().enumerate() {
            // Self-loop iterations enter with a statically known
            // streaming window: swap in the steady-state first op.
            let op = if looped && idx == 0 { &tb.loop_head } else { block_op };
            match (op.run)(m, op, &mut ctx) {
                Ctl::Next => {
                    if op.pure {
                        if m.cycles >= ctx.bound {
                            return (BlockExit::SplitBudget, loops);
                        }
                    } else {
                        if !m.threaded_safety_ok(cwg, revs) {
                            return (BlockExit::Split, loops);
                        }
                        ctx.bound = cycle_limit.min(sched_due).min(m.bus.next_event());
                        if m.cycles >= ctx.bound {
                            return (BlockExit::SplitBudget, loops);
                        }
                    }
                }
                Ctl::Exit => {
                    // Same boundary checks as Next — tier-2 runs them
                    // before noticing the PC diverged — then chain.
                    if op.pure {
                        if m.cycles >= ctx.bound {
                            return (BlockExit::SplitBudget, loops);
                        }
                        // Self-loop fast path (see the method docs).
                        if idx == last
                            && m.cpu.pc == tb.start
                            && m.cpu.it_queue.is_empty()
                            && m.bus.signals.exit_code.is_none()
                        {
                            loops += 1;
                            looped = true;
                            continue 'restart;
                        }
                    } else {
                        if !m.threaded_safety_ok(cwg, revs) {
                            return (BlockExit::Split, loops);
                        }
                        if m.cycles >= cycle_limit.min(sched_due).min(m.bus.next_event()) {
                            return (BlockExit::SplitBudget, loops);
                        }
                    }
                    return (BlockExit::Chain, loops);
                }
                Ctl::Split => return (BlockExit::Split, loops),
                Ctl::SplitBudget => return (BlockExit::SplitBudget, loops),
                Ctl::Stop(r) => return (BlockExit::Stop(r), loops),
            }
        }
        return (BlockExit::Chain, loops);
    }
}

// ---------------------------------------------------------------------
// Fetch-plan replay
// ---------------------------------------------------------------------

/// Replays one planned `fetch_timing` call, returning its cycles.
#[inline(always)]
fn plan_cycles(
    m: &mut Machine,
    plan: FetchPlan,
    addr: u32,
    len: u32,
    window: u32,
) -> Result<u32, StopReason> {
    match plan {
        FetchPlan::None => Ok(0),
        FetchPlan::Free => {
            // Statically resident: fetch_timing would walk the windows,
            // find every one buffered, and leave the final window — the
            // current one — buffered. Zero cycles, no state change.
            debug_assert_eq!(
                m.fetch_window,
                Some((addr + len - 1) & !(window - 1)),
                "Free fetch plan with a stale window"
            );
            Ok(0)
        }
        FetchPlan::Refill(w) => {
            // Exactly one non-resident window: one live access_timing
            // call keeps seq/nonseq selection, flash stats and stream
            // state identical to the full walk.
            let c = m.flash.access_timing(w - FLASH_BASE, window, Access::Fetch);
            m.fetch_window = Some(w);
            Ok(c)
        }
        FetchPlan::Slow => match m.fetch_timing(addr, len) {
            Ok((c, _, _)) => Ok(c),
            Err(f) => Err(StopReason::Fault(f)),
        },
    }
}

/// Replays the fetch of one instruction (both calls for wide Thumb)
/// and its flash-patch accounting — the threaded mirror of
/// `Machine::replay_fetch` for breakpoint-free entries.
#[inline(always)]
fn fetch_instr(
    m: &mut Machine,
    f1: FetchPlan,
    f1b: FetchPlan,
    pc: u32,
    patch_hits: u8,
    ctx: &ExecCtx,
) -> Result<u32, StopReason> {
    let mut c = plan_cycles(m, f1, pc, ctx.flen, ctx.window)?;
    m.patch.hits += u64::from(patch_hits);
    if f1b != FetchPlan::None {
        c += plan_cycles(m, f1b, pc.wrapping_add(2), 2, ctx.window)?;
    }
    Ok(c)
}

/// Fetches + retires one instruction half: charges the fetch-overlap
/// cycles and the instruction count, exactly as `Machine::issue` does
/// before predication.
#[inline(always)]
fn retire_fetch(
    m: &mut Machine,
    f1: FetchPlan,
    f1b: FetchPlan,
    pc: u32,
    patch_hits: u8,
    ctx: &ExecCtx,
) -> Result<(), StopReason> {
    let fc = fetch_instr(m, f1, f1b, pc, patch_hits, ctx)?;
    m.cycles += u64::from(fc.saturating_sub(1));
    m.instret += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// Semantic halves (shared by single and fused handlers)
// ---------------------------------------------------------------------

/// One ALU data-processing step: semantics and the 1-cycle issue cost.
/// With an immediate or plain-register second operand the shifter
/// carry-out equals the current carry flag, so flag updates reduce to
/// N/Z plus the adder's C/V — identical to the generic executor.
#[inline(always)]
fn alu_half(m: &mut Machine, h: &Half) {
    let a = m.cpu.read_reg(h.rn, 0);
    let b = if h.b_reg { m.cpu.read_reg(h.rm, 0) } else { h.imm };
    let (r, c, v) = match h.kind {
        AluKind::Add => add_with_carry(a, b, false),
        AluKind::Sub => add_with_carry(a, !b, true),
        AluKind::And => (a & b, m.cpu.flags.c, m.cpu.flags.v),
        AluKind::Orr => (a | b, m.cpu.flags.c, m.cpu.flags.v),
        AluKind::Eor => (a ^ b, m.cpu.flags.c, m.cpu.flags.v),
        AluKind::Bic => (a & !b, m.cpu.flags.c, m.cpu.flags.v),
    };
    if h.s {
        m.cpu.set_nz(r);
        m.cpu.flags.c = c;
        m.cpu.flags.v = v;
    }
    m.cpu.write_reg(h.rd, r);
    m.cycles += 1;
}

/// One `cmp` step: flags only, 1 cycle.
#[inline(always)]
fn cmp_half(m: &mut Machine, h: &Half) {
    let a = m.cpu.read_reg(h.rn, 0);
    let b = if h.b_reg { m.cpu.read_reg(h.rm, 0) } else { h.imm };
    let (r, c, v) = add_with_carry(a, !b, true);
    m.cpu.set_nz(r);
    m.cpu.flags.c = c;
    m.cpu.flags.v = v;
    m.cycles += 1;
}

/// One immediate-offset `ldr[b|h]` (unsigned, no writeback) step.
#[inline(always)]
fn ldr_half(m: &mut Machine, h: &Half) -> Result<(), StopReason> {
    let ea = m.cpu.read_reg(h.rn, 0).wrapping_add(h.imm);
    let (v, c) = match m.data_read(ea, h.len) {
        Ok(t) => t,
        Err(f) => return Err(StopReason::Fault(f)),
    };
    m.cycles += 1 + u64::from(c) + u64::from(m.config.timing.load_internal);
    m.cpu.write_reg(h.rd, v);
    Ok(())
}

/// The terminal direct-branch step: evaluates the (possibly `AL`)
/// condition live, charging the skip/taken cycles the generic path
/// charges. The caller has already retired the fetch.
#[inline(always)]
fn branch_half(m: &mut Machine, op: &Op, pc: u32) {
    m.cycles += 1;
    if op.cond2.eval(m.cpu.flags) {
        m.cycles += u64::from(m.config.timing.branch_taken_penalty);
        m.cpu.pc = op.target;
    } else {
        m.cpu.pc = pc.wrapping_add(op.size);
    }
}

/// The tier-2 boundary check after an impure first half, mid-pair:
/// exit-code stop, safety split, budget recompute + split — in exactly
/// the order the per-entry loop applies them between two instructions.
#[inline(always)]
fn impure_boundary(m: &mut Machine, ctx: &mut ExecCtx) -> Option<Ctl> {
    if let Some(code) = m.bus.signals.exit_code {
        return Some(Ctl::Stop(StopReason::MmioExit(code)));
    }
    if !m.threaded_safety_ok(ctx.cwg, ctx.revs) {
        return Some(Ctl::Split);
    }
    ctx.bound = ctx.cycle_limit.min(ctx.sched_due).min(m.bus.next_event());
    if m.cycles >= ctx.bound {
        return Some(Ctl::SplitBudget);
    }
    None
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

macro_rules! try_ctl {
    ($e:expr) => {
        match $e {
            Ok(v) => v,
            Err(stop) => return Ctl::Stop(stop),
        }
    };
}

/// Fallback: plan-replayed fetch plus the shared issue sequence
/// (live predication, full executor). Anything the specializer skips
/// lands here, so the lowering never needs to be complete.
fn h_generic(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    let fc = try_ctl!(fetch_instr(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    let next_pc = pc.wrapping_add(op.entry.size);
    if let Some(stop) = m.issue(&op.entry, pc, fc) {
        return Ctl::Stop(stop);
    }
    if m.cpu.pc == next_pc { Ctl::Next } else { Ctl::Exit }
}

/// Specialized unconditional ALU reg/imm (`add`/`sub`/`and`/`orr`/
/// `eor`/`bic`, optional `s`, no PC operands).
fn h_alu(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    alu_half(m, &op.a);
    m.cpu.pc = pc.wrapping_add(op.size);
    Ctl::Next
}

/// Specialized unconditional `mov`/`movw` reg/imm (no PC operands).
fn h_mov(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    let v = if op.a.b_reg { m.cpu.read_reg(op.a.rm, 0) } else { op.a.imm };
    if op.a.s {
        m.cpu.set_nz(v);
    }
    m.cpu.write_reg(op.a.rd, v);
    m.cycles += 1;
    m.cpu.pc = pc.wrapping_add(op.size);
    Ctl::Next
}

/// Specialized unconditional `cmp` reg/imm.
fn h_cmp(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    cmp_half(m, &op.a);
    m.cpu.pc = pc.wrapping_add(op.size);
    Ctl::Next
}

/// Specialized direct branch (`b`, any condition, static non-EXC
/// target).
fn h_b(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    branch_half(m, op, pc);
    Ctl::Exit
}

/// Specialized `cbz`/`cbnz`.
fn h_cbz(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    m.cycles += 1;
    let v = m.cpu.read_reg(op.a.rn, 0);
    if (v == 0) != op.nonzero {
        m.cycles += u64::from(m.config.timing.branch_taken_penalty);
        m.cpu.pc = op.target;
    } else {
        m.cpu.pc = pc.wrapping_add(op.size);
    }
    Ctl::Exit
}

/// Specialized unconditional immediate-offset `ldr` (unsigned, no
/// writeback, no PC operands). Impure: the load may touch a device.
fn h_ldr(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    try_ctl!(ldr_half(m, &op.a));
    m.cpu.pc = pc.wrapping_add(op.size);
    if let Some(code) = m.bus.signals.exit_code {
        return Ctl::Stop(StopReason::MmioExit(code));
    }
    Ctl::Next
}

/// Specialized unconditional immediate-offset `str` (no writeback, no
/// PC operands). Impure: the store may touch a device or code bytes.
fn h_str(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    let ea = m.cpu.read_reg(op.a.rn, 0).wrapping_add(op.a.imm);
    let v = m.cpu.read_reg(op.a.rd, 0);
    let c = match m.data_write(ea, op.a.len, v) {
        Ok(c) => c,
        Err(f) => return Ctl::Stop(StopReason::Fault(f)),
    };
    m.cycles += 1 + u64::from(c) + u64::from(m.config.timing.store_internal);
    m.cpu.pc = pc.wrapping_add(op.size);
    if let Some(code) = m.bus.signals.exit_code {
        return Ctl::Stop(StopReason::MmioExit(code));
    }
    Ctl::Next
}

/// Fused ALU + `cmp` (the `add`+`cmp` loop-counter idiom). Both halves
/// pure; the mid-pair boundary needs only the budget compare.
fn h_fused_alu_cmp(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    alu_half(m, &op.a);
    let pc2 = pc.wrapping_add(op.size1);
    m.cpu.pc = pc2;
    if m.cycles >= ctx.bound {
        return Ctl::SplitBudget;
    }
    try_ctl!(retire_fetch(m, op.f2, op.f2b, pc2, op.patch2, ctx));
    cmp_half(m, &op.b);
    m.cpu.pc = pc.wrapping_add(op.size);
    Ctl::Next
}

/// Fused `cmp` + conditional branch (the compare-and-loop backedge).
fn h_fused_cmp_b(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    cmp_half(m, &op.a);
    let pc2 = pc.wrapping_add(op.size1);
    m.cpu.pc = pc2;
    if m.cycles >= ctx.bound {
        return Ctl::SplitBudget;
    }
    try_ctl!(retire_fetch(m, op.f2, op.f2b, pc2, op.patch2, ctx));
    branch_half(m, op, pc2.wrapping_sub(op.size1));
    Ctl::Exit
}

/// Fused flag-setting ALU + conditional branch (the `subs`+`bne`
/// countdown backedge).
fn h_fused_alu_b(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    alu_half(m, &op.a);
    let pc2 = pc.wrapping_add(op.size1);
    m.cpu.pc = pc2;
    if m.cycles >= ctx.bound {
        return Ctl::SplitBudget;
    }
    try_ctl!(retire_fetch(m, op.f2, op.f2b, pc2, op.patch2, ctx));
    branch_half(m, op, pc);
    Ctl::Exit
}

/// Fused immediate-offset `ldr` + ALU (pointer-chase / accumulate).
/// The first half is impure, so the mid-pair boundary runs the full
/// tier-2 check sequence before the second half issues.
fn h_fused_ldr_alu(m: &mut Machine, op: &Op, ctx: &mut ExecCtx) -> Ctl {
    let pc = m.cpu.pc;
    try_ctl!(retire_fetch(m, op.f1, op.f1b, pc, op.entry.patch_hits, ctx));
    try_ctl!(ldr_half(m, &op.a));
    let pc2 = pc.wrapping_add(op.size1);
    m.cpu.pc = pc2;
    if let Some(ctl) = impure_boundary(m, ctx) {
        return ctl;
    }
    try_ctl!(retire_fetch(m, op.f2, op.f2b, pc2, op.patch2, ctx));
    alu_half(m, &op.b);
    m.cpu.pc = pc.wrapping_add(op.size);
    Ctl::Next
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Static model of the flash streaming buffer, used to plan each
/// `fetch_timing` call at build time. `cur` tracks the buffered window
/// the machine will hold at that point in the block, when provable.
struct FetchSim {
    window: u32,
    /// Statically known buffered window (`None` at block entry and
    /// after any impure op — data accesses may clobber the stream).
    cur: Option<u32>,
    /// Whether planning applies at all: uncached, MPU-less flash code.
    plannable: bool,
}

impl FetchSim {
    /// Plans one `fetch_timing(addr, len)` call and advances the model.
    fn call(&mut self, addr: u32, len: u32) -> FetchPlan {
        if !self.plannable {
            return FetchPlan::Slow;
        }
        let wm = self.window - 1;
        let fin = (addr + len - 1) & !wm;
        let Some(mut cur) = self.cur else {
            // Unknown entry state: run the full walk, after which the
            // buffered window is deterministic.
            self.cur = Some(fin);
            return FetchPlan::Slow;
        };
        // Replicate the fetch_timing window walk statically.
        let mut w = addr & !wm;
        let end = addr + len;
        let mut refills = 0u32;
        let mut refill_at = 0u32;
        while w < end {
            if cur != w {
                refills += 1;
                refill_at = w;
                cur = w;
            }
            w += self.window;
        }
        self.cur = Some(fin);
        match refills {
            0 => FetchPlan::Free,
            // A single refill whose window is also the final buffered
            // window collapses to one live access_timing call.
            1 if refill_at == fin => FetchPlan::Refill(refill_at),
            _ => FetchPlan::Slow,
        }
    }

    /// Forgets the buffered window (called after impure ops: a data
    /// access may break the fetch stream).
    fn invalidate(&mut self) {
        self.cur = None;
    }
}

/// Operand source for the micro-op classifier.
#[derive(Debug, Clone, Copy)]
enum Src {
    Imm(u32),
    Reg(Reg),
}

/// The specializer's view of one instruction: a pattern the fusion
/// and handler selection match on. `Generic` runs through
/// [`h_generic`] (still threaded — just not specialized).
#[derive(Debug, Clone, Copy)]
enum Micro {
    Alu { kind: AluKind, s: bool, rd: Reg, rn: Reg, src: Src },
    Mov { s: bool, rd: Reg, src: Src },
    Cmp { rn: Reg, src: Src },
    B { cond: Cond, target: u32 },
    Cbz { nonzero: bool, rn: Reg, target: u32 },
    Ldr { rt: Reg, rn: Reg, off: u32, len: u32 },
    Str { rt: Reg, rn: Reg, off: u32, len: u32 },
    Generic,
}

fn src_of(op2: Operand2) -> Option<Src> {
    match op2 {
        Operand2::Imm(v) => Some(Src::Imm(v)),
        Operand2::Reg(r) if r != Reg::PC => Some(Src::Reg(r)),
        _ => None,
    }
}

/// A static branch target that must stay on the generic path: the
/// executor interprets these PC values as exception returns.
fn exc_target(target: u32) -> bool {
    target == EXC_RETURN_HW || target == EXC_RETURN_SW
}

/// Classifies one entry for specialization. Conservative: anything
/// with PC operands, shifts, conditions (beyond the branch's own),
/// carry-in arithmetic, sign extension or writeback stays `Generic`.
fn classify(e: &Entry, pc: u32) -> Micro {
    match e.instr {
        Instr::B { cond, offset } => {
            let raw = pc.wrapping_add(offset as u32);
            if exc_target(raw) {
                return Micro::Generic;
            }
            Micro::B { cond, target: raw & !1 }
        }
        Instr::Cbz { nonzero, rn, offset } => {
            let raw = pc.wrapping_add(offset as u32);
            if exc_target(raw) || rn == Reg::PC {
                return Micro::Generic;
            }
            Micro::Cbz { nonzero, rn, target: raw & !1 }
        }
        _ if e.cond != Cond::Al => Micro::Generic,
        Instr::Dp { op, s, rd, rn, op2, .. } if rd != Reg::PC && rn != Reg::PC => {
            let kind = match op {
                DpOp::Add => AluKind::Add,
                DpOp::Sub => AluKind::Sub,
                DpOp::And => AluKind::And,
                DpOp::Orr => AluKind::Orr,
                DpOp::Eor => AluKind::Eor,
                DpOp::Bic => AluKind::Bic,
                DpOp::Adc | DpOp::Sbc | DpOp::Rsb => return Micro::Generic,
            };
            match src_of(op2) {
                Some(src) => Micro::Alu { kind, s, rd, rn, src },
                None => Micro::Generic,
            }
        }
        Instr::Mov { s, rd, op2, .. } if rd != Reg::PC => match src_of(op2) {
            Some(src) => Micro::Mov { s, rd, src },
            None => Micro::Generic,
        },
        Instr::MovW { rd, imm16, .. } if rd != Reg::PC => {
            Micro::Mov { s: false, rd, src: Src::Imm(u32::from(imm16)) }
        }
        Instr::Cmp { op: alia_isa::CmpOp::Cmp, rn, op2, .. } if rn != Reg::PC => {
            match src_of(op2) {
                Some(src) => Micro::Cmp { rn, src },
                None => Micro::Generic,
            }
        }
        Instr::Ldr { size, signed: false, rt, addr, .. }
            if rt != Reg::PC
                && addr.base != Reg::PC
                && addr.index == Index::Offset
                && matches!(addr.offset, Offset::Imm(_)) =>
        {
            let Offset::Imm(i) = addr.offset else { unreachable!() };
            Micro::Ldr { rt, rn: addr.base, off: i as u32, len: size.bytes() }
        }
        Instr::Str { size, rt, addr, .. }
            if rt != Reg::PC
                && addr.base != Reg::PC
                && addr.index == Index::Offset
                && matches!(addr.offset, Offset::Imm(_)) =>
        {
            let Offset::Imm(i) = addr.offset else { unreachable!() };
            Micro::Str { rt, rn: addr.base, off: i as u32, len: size.bytes() }
        }
        _ => Micro::Generic,
    }
}

/// Whether `instr` is *pure*: it cannot pend an interrupt, raise a
/// device signal, bump a revision counter or the code-write
/// generation, change `Bus::next_event`, or set the MMIO exit code.
/// After a pure op the tier-2 safety re-checks are provably no-ops,
/// so the dispatch loop compares only the cycle budget. Conservative:
/// everything that touches memory or might exception-return is impure.
fn is_pure(instr: &Instr, pc: u32) -> bool {
    match *instr {
        Instr::Dp { rd, .. } | Instr::Mov { rd, .. } => rd != Reg::PC,
        Instr::Mvn { .. }
        | Instr::Cmp { .. }
        | Instr::MovW { .. }
        | Instr::MovT { .. }
        | Instr::Mul { .. }
        | Instr::Mla { .. }
        | Instr::Sdiv { .. }
        | Instr::Udiv { .. }
        | Instr::Bfi { .. }
        | Instr::Bfc { .. }
        | Instr::Ubfx { .. }
        | Instr::Sbfx { .. }
        | Instr::Rbit { .. }
        | Instr::Rev { .. }
        | Instr::It { .. }
        | Instr::Svc { .. }
        | Instr::Nop
        | Instr::Cpsid
        | Instr::Cpsie => true,
        Instr::B { offset, .. } | Instr::Bl { offset } | Instr::Cbz { offset, .. } => {
            !exc_target(pc.wrapping_add(offset as u32))
        }
        // Ldr/Str/LdrLit/Ldm/Stm/Push/Pop (memory), Bx (dynamic
        // target), Tbb/Tbh (memory), Bkpt/Wfi (never in blocks), and
        // anything future: impure.
        _ => false,
    }
}

fn alu_to_half(kind: AluKind, s: bool, rd: Reg, rn: Reg, src: Src) -> Half {
    let mut h = Half { kind, s, rd, rn, ..Half::NONE };
    match src {
        Src::Imm(v) => h.imm = v,
        Src::Reg(r) => {
            h.b_reg = true;
            h.rm = r;
        }
    }
    h
}

fn mem_to_half(rt: Reg, rn: Reg, off: u32, len: u32) -> Half {
    Half { rd: rt, rn, imm: off, len, ..Half::NONE }
}

/// A selected fusion: handler plus the pieces the [`Op`] needs.
struct Fusion {
    run: Handler,
    a: Half,
    b: Half,
    cond2: Cond,
    target: u32,
}

/// Tries to fuse the pair `(m1, m2)`, in pattern priority order:
/// `cmp`+branch, ALU+branch (the `subs`+`bne` backedge), ALU+`cmp`,
/// `ldr`+ALU.
fn fuse(m1: Micro, m2: Micro) -> Option<Fusion> {
    match (m1, m2) {
        (Micro::Cmp { rn, src }, Micro::B { cond, target }) => Some(Fusion {
            run: h_fused_cmp_b,
            a: alu_to_half(AluKind::Sub, true, Reg::R0, rn, src),
            b: Half::NONE,
            cond2: cond,
            target,
        }),
        (Micro::Alu { kind, s, rd, rn, src }, Micro::B { cond, target }) => Some(Fusion {
            run: h_fused_alu_b,
            a: alu_to_half(kind, s, rd, rn, src),
            b: Half::NONE,
            cond2: cond,
            target,
        }),
        (Micro::Alu { kind, s, rd, rn, src }, Micro::Cmp { rn: rn2, src: src2 }) => {
            Some(Fusion {
                run: h_fused_alu_cmp,
                a: alu_to_half(kind, s, rd, rn, src),
                b: alu_to_half(AluKind::Sub, true, Reg::R0, rn2, src2),
                cond2: Cond::Al,
                target: 0,
            })
        }
        (
            Micro::Ldr { rt, rn, off, len },
            Micro::Alu { kind, s, rd, rn: rn2, src },
        ) => Some(Fusion {
            run: h_fused_ldr_alu,
            a: mem_to_half(rt, rn, off, len),
            b: alu_to_half(kind, s, rd, rn2, src),
            cond2: Cond::Al,
            target: 0,
        }),
        _ => None,
    }
}

/// Selects the specialized handler (and operand halves) for a single
/// unfused instruction.
fn single(micro: Micro) -> (Handler, Half, Cond, u32, bool) {
    match micro {
        Micro::Alu { kind, s, rd, rn, src } => {
            (h_alu, alu_to_half(kind, s, rd, rn, src), Cond::Al, 0, false)
        }
        Micro::Mov { s, rd, src } => {
            (h_mov, alu_to_half(AluKind::Add, s, rd, Reg::R0, src), Cond::Al, 0, false)
        }
        Micro::Cmp { rn, src } => {
            (h_cmp, alu_to_half(AluKind::Sub, true, Reg::R0, rn, src), Cond::Al, 0, false)
        }
        Micro::B { cond, target } => (h_b, Half::NONE, cond, target, false),
        Micro::Cbz { nonzero, rn, target } => {
            (h_cbz, Half { rn, ..Half::NONE }, Cond::Al, target, nonzero)
        }
        Micro::Ldr { rt, rn, off, len } => {
            (h_ldr, mem_to_half(rt, rn, off, len), Cond::Al, 0, false)
        }
        Micro::Str { rt, rn, off, len } => {
            (h_str, mem_to_half(rt, rn, off, len), Cond::Al, 0, false)
        }
        Micro::Generic => (h_generic, Half::NONE, Cond::Al, 0, false),
    }
}

/// Lowers a recorded block to threaded code. Returns `None` only for
/// degenerate inputs (empty runs, breakpoint entries) — a promotable
/// block always lowers, with unspecialized entries on the generic
/// handler.
pub(crate) fn build(start: u32, entries: &[Entry], m: &Machine) -> Option<ThreadedBlock> {
    if entries.is_empty() || entries.iter().any(|e| e.bp_first || e.bp_second) {
        return None;
    }
    let mode = m.config.mode;
    let flen = mode.min_instr_size();
    let flash_cfg = m.flash.config();
    let window = flash_cfg.width.max(2);
    let end = entries.iter().fold(start, |pc, e| pc.wrapping_add(e.size));
    // Fetch plans only apply to streaming flash code with no I-cache
    // and no MPU (both would run per-fetch logic the plan elides);
    // everything else replays fetch_timing in full, which is always
    // correct.
    // (Flash occupies the bottom of the address space at FLASH_BASE =
    // 0, so `start` is in-region iff `end` stays under the flash top.)
    let plannable = m.icache.is_none()
        && m.mpu.is_none()
        && end <= FLASH_BASE.wrapping_add(flash_cfg.size)
        && end >= start;
    let mut sim = FetchSim { window, cur: None, plannable };

    let mut pcs = Vec::with_capacity(entries.len());
    let mut pc = start;
    for e in entries {
        pcs.push(pc);
        pc = pc.wrapping_add(e.size);
    }
    let micros: Vec<Micro> =
        entries.iter().zip(&pcs).map(|(e, &pc)| classify(e, pc)).collect();
    let pures: Vec<bool> =
        entries.iter().zip(&pcs).map(|(e, &pc)| is_pure(&e.instr, pc)).collect();
    let wide = |i: usize| mode != IsaMode::A32 && entries[i].size == 4;

    // Plans one instruction's fetch calls (both for wide Thumb).
    let plan = |sim: &mut FetchSim, k: usize| {
        let f = sim.call(pcs[k], flen);
        let fb = if wide(k) {
            sim.call(pcs[k].wrapping_add(2), 2)
        } else {
            FetchPlan::None
        };
        (f, fb)
    };

    let mut ops = Vec::with_capacity(entries.len());
    let mut fused = 0u32;
    let mut i = 0;
    while i < entries.len() {
        if i + 1 < entries.len() {
            if let Some(fu) = fuse(micros[i], micros[i + 1]) {
                let (f1, f1b) = plan(&mut sim, i);
                if !pures[i] {
                    sim.invalidate();
                }
                let (f2, f2b) = plan(&mut sim, i + 1);
                if !pures[i + 1] {
                    sim.invalidate();
                }
                ops.push(Op {
                    run: fu.run,
                    entry: entries[i],
                    pure: pures[i] && pures[i + 1],
                    size: entries[i].size + entries[i + 1].size,
                    size1: entries[i].size,
                    f1,
                    f1b,
                    f2,
                    f2b,
                    a: fu.a,
                    b: fu.b,
                    cond2: fu.cond2,
                    target: fu.target,
                    nonzero: false,
                    patch2: entries[i + 1].patch_hits,
                });
                fused += 1;
                i += 2;
                continue;
            }
        }
        let (f1, f1b) = plan(&mut sim, i);
        if !pures[i] {
            sim.invalidate();
        }
        let (run, a, cond2, target, nonzero) = single(micros[i]);
        ops.push(Op {
            run,
            entry: entries[i],
            pure: pures[i],
            size: entries[i].size,
            size1: entries[i].size,
            f1,
            f1b,
            f2: FetchPlan::None,
            f2b: FetchPlan::None,
            a,
            b: Half::NONE,
            cond2,
            target,
            nonzero,
            patch2: 0,
        });
        i += 1;
    }

    // Steady-state entry plans for the self-loop fast path: replan the
    // first op's fetches assuming the window the block leaves buffered
    // at its end (`sim.cur` — statically known whenever plannable and
    // the final planned call ran under a valid model). The dispatch
    // loop only uses these after a *pure* terminal exit, which cannot
    // disturb the stream, so the assumed window is exact at runtime.
    let mut loop_head = ops[0].clone();
    {
        let mut lsim = FetchSim { window, cur: sim.cur, plannable };
        let (f1, f1b) = plan(&mut lsim, 0);
        loop_head.f1 = f1;
        loop_head.f1b = f1b;
        // A fused first op carries the second instruction's plans too.
        if loop_head.size != loop_head.size1 {
            if !pures[0] {
                lsim.invalidate();
            }
            let (f2, f2b) = plan(&mut lsim, 1);
            loop_head.f2 = f2;
            loop_head.f2b = f2b;
        }
    }
    // Fetch-plan mix over the block's ops (every planned call: first
    // and second-halfword fetches of both halves of a fused pair).
    let (mut plans_free, mut plans_refill, mut plans_slow) = (0u32, 0u32, 0u32);
    for op in &ops {
        for plan in [op.f1, op.f1b, op.f2, op.f2b] {
            match plan {
                FetchPlan::None => {}
                FetchPlan::Free => plans_free += 1,
                FetchPlan::Refill(_) => plans_refill += 1,
                FetchPlan::Slow => plans_slow += 1,
            }
        }
    }
    Some(ThreadedBlock {
        ops: ops.into_boxed_slice(),
        start,
        loop_head,
        window,
        flen,
        fused,
        plans_free,
        plans_refill,
        plans_slow,
    })
}
