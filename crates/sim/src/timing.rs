//! Per-core timing parameters.
//!
//! Three design points, mirroring the paper's cores. The numbers are taken
//! from public technical reference material for the respective core
//! classes (ARM7TDMI TRM chapter "Instruction cycle timings"; Cortex-M3
//! TRM "Instruction set summary"; ARM1156T2-S TRM) and rounded to the
//! granularity of this model:
//!
//! | parameter              | `Arm7Like` | `M3Like` | `HighEndLike` |
//! |------------------------|-----------:|---------:|--------------:|
//! | taken-branch penalty   | 2          | 2        | 1             |
//! | load internal cycles   | 1          | 0        | 0             |
//! | store internal cycles  | 0          | 0        | 0             |
//! | multiply cycles        | 4          | 1        | 2             |
//! | hardware divide        | —          | 2..12    | 2..12         |
//! | interruptible LDM/STM  | no         | no       | yes           |
//!
//! A load on `Arm7Like` therefore costs `fetch + 1 + mem` ≈ 3 cycles
//! (1S + 1N + 1I in ARM7 terms); on `M3Like` it costs `1 + mem` ≈ 2.

/// Which core class a machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Von-Neumann, cacheless, 3-stage classic core (ARM7TDMI-class).
    Arm7Like,
    /// Harvard-style low-cost core with NVIC and bit-banding
    /// (Cortex-M3-class).
    M3Like,
    /// High-frequency cached core with MPU, fault-tolerant RAM and
    /// interruptible load/store multiple (ARM1156T2-class).
    HighEndLike,
}

/// Cycle-cost parameters of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreTiming {
    /// The core class these parameters describe.
    pub kind: CoreKind,
    /// Extra cycles when a branch is taken (pipeline refill).
    pub branch_taken_penalty: u32,
    /// Internal cycles added to each load beyond the memory access.
    pub load_internal: u32,
    /// Internal cycles added to each store beyond the memory access.
    pub store_internal: u32,
    /// Cycles for a 32×32 multiply.
    pub mul_cycles: u32,
    /// Whether `SDIV`/`UDIV` exist in hardware (otherwise the compiler
    /// emits a runtime-library call).
    pub has_hw_divide: bool,
    /// Whether a multi-register transfer can be interrupted and restarted
    /// (§3.1.2).
    pub interruptible_ldm: bool,
    /// Whether instruction and data paths are separate (fetches do not
    /// compete with data for one bus, and only *flash* data accesses
    /// disturb the prefetch stream).
    pub harvard: bool,
}

impl CoreTiming {
    /// ARM7TDMI-class parameters.
    #[must_use]
    pub fn arm7_like() -> CoreTiming {
        CoreTiming {
            kind: CoreKind::Arm7Like,
            branch_taken_penalty: 2,
            load_internal: 1,
            store_internal: 0,
            mul_cycles: 4,
            has_hw_divide: false,
            interruptible_ldm: false,
            harvard: false,
        }
    }

    /// Cortex-M3-class parameters.
    #[must_use]
    pub fn m3_like() -> CoreTiming {
        CoreTiming {
            kind: CoreKind::M3Like,
            branch_taken_penalty: 2,
            load_internal: 0,
            store_internal: 0,
            mul_cycles: 1,
            has_hw_divide: true,
            interruptible_ldm: false,
            harvard: true,
        }
    }

    /// ARM1156T2-class parameters.
    #[must_use]
    pub fn high_end_like() -> CoreTiming {
        CoreTiming {
            kind: CoreKind::HighEndLike,
            branch_taken_penalty: 1,
            load_internal: 0,
            store_internal: 0,
            mul_cycles: 2,
            has_hw_divide: true,
            interruptible_ldm: true,
            harvard: true,
        }
    }

    /// Cycles for a hardware divide, which early-terminates on small
    /// quotients (2..=12 like the M3).
    #[must_use]
    pub fn div_cycles(&self, dividend: u32, divisor: u32) -> u32 {
        if divisor == 0 {
            return 2;
        }
        let dbits = 32 - dividend.leading_zeros();
        let vbits = 32 - divisor.leading_zeros();
        let qbits = dbits.saturating_sub(vbits).min(31);
        // 0 quotient bits -> 2 cycles, 31 bits -> 12 cycles (M3-like).
        2 + qbits * 10 / 31
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_documented_shape() {
        let a = CoreTiming::arm7_like();
        let m = CoreTiming::m3_like();
        let h = CoreTiming::high_end_like();
        assert!(!a.has_hw_divide && m.has_hw_divide && h.has_hw_divide);
        assert!(!a.interruptible_ldm && h.interruptible_ldm);
        assert!(a.load_internal > m.load_internal);
        assert!(a.mul_cycles > m.mul_cycles);
        assert!(!a.harvard && m.harvard);
    }

    #[test]
    fn divide_early_terminates() {
        let m = CoreTiming::m3_like();
        let small = m.div_cycles(7, 3);
        let large = m.div_cycles(u32::MAX, 1);
        assert!(small >= 2);
        assert!(large <= 13);
        assert!(large > small);
        assert_eq!(m.div_cycles(5, 0), 2);
    }
}
