//! Device-bus integration: guest programs driving the timer and CAN
//! controller purely through loads and stores, plus regression coverage
//! for the unified remap point (sub-word accesses to flash-patched and
//! bit-band addresses take the same path as word accesses).

use alia_isa::{Assembler, IsaMode};
use alia_sim::{
    CanConfig, CanController, DeviceSpec, Machine, MachineConfig, PatchKind, StopReason, Timer,
    TimerConfig, BITBAND_BASE, CAN_BASE, SRAM_BASE, TIMER_BASE,
};

fn machine_with_devices(devices: Vec<DeviceSpec>, src: &str) -> Machine {
    let mut config = MachineConfig::m3_like();
    config.devices = devices;
    let out = Assembler::new(config.mode).assemble(src).expect("program assembles");
    let mut m = Machine::new(config);
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m
}

#[test]
fn guest_arms_timer_and_takes_its_irq() {
    // The guest programs COMPARE and CTRL with stores, then spins; the
    // compare match interrupts it and the handler stops the machine.
    let src = "movw r0, #0x1000
         movt r0, #0x4000
         movw r1, #500
         str r1, [r0, #4]
         mov r1, #1
         str r1, [r0, #0]
         spin: b spin";
    let handler = Assembler::new(IsaMode::T2).assemble("bkpt #5").unwrap();
    let mut m = machine_with_devices(
        vec![DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 999 })],
        src,
    );
    m.load_flash(0x300, &handler.bytes);
    m.load_flash(0, &0x300u32.to_le_bytes());
    let r = m.run(100_000);
    assert_eq!(r.reason, StopReason::Bkpt(5));
    let timer = m.bus.device::<Timer>().expect("timer attached");
    assert_eq!(timer.fires(), 1, "one-shot compare match");
    // Latency accounting measured from the programmed compare match.
    let lat = m.latencies()[0];
    assert!(lat.pend_cycle >= 500, "asserted at the compare match, got {}", lat.pend_cycle);
    assert!(lat.entry_cycle >= lat.pend_cycle);
}

#[test]
fn guest_timer_count_register_reads_remaining_cycles() {
    // Arm a long one-shot, read COUNT a few instructions later: the
    // remaining-cycle value must have decreased but stay positive.
    let src = "movw r0, #0x1000
         movt r0, #0x4000
         movw r1, #10000
         str r1, [r0, #4]
         mov r1, #1
         str r1, [r0, #0]
         nop
         nop
         ldr r2, [r0, #8]
         bkpt #0";
    let mut m = machine_with_devices(
        vec![DeviceSpec::Timer(TimerConfig::default())],
        src,
    );
    let r = m.run(100_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    let remaining = m.cpu.regs[2];
    assert!(remaining > 0 && remaining < 10_000, "COUNT read {remaining}");
}

#[test]
fn guest_loopback_can_frame_round_trip() {
    // Stage a frame with stores, submit it, spin on RX_STATUS with
    // loads, then read the frame back — no host-side CAN calls at all.
    // Polling mode: the guest masks the RX interrupt (`cpsid`) instead
    // of installing a handler.
    let src = "cpsid
         movw r0, #0x2000
         movt r0, #0x4000
         movw r1, #0x234
         str r1, [r0, #0]
         mov r1, #8
         str r1, [r0, #4]
         movw r1, #0x5678
         movt r1, #0x1234
         str r1, [r0, #8]
         movw r1, #0xBBAA
         movt r1, #0xDDCC
         str r1, [r0, #12]
         str r1, [r0, #16]
         wait: ldr r2, [r0, #20]
         cmp r2, #0
         beq wait
         ldr r3, [r0, #24]
         ldr r4, [r0, #28]
         ldr r5, [r0, #32]
         ldr r6, [r0, #36]
         str r2, [r0, #40]
         ldr r7, [r0, #20]
         bkpt #0";
    let mut m = machine_with_devices(
        vec![DeviceSpec::Can(CanConfig {
            base: CAN_BASE,
            irq: 1,
            node: 0,
            cycles_per_bit: 3,
            loopback: true,
            ..CanConfig::default()
        })],
        src,
    );
    let r = m.run(1_000_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    assert_eq!(m.cpu.regs[3], 0x234, "RX_ID");
    assert_eq!(m.cpu.regs[4], 8, "RX_DLC");
    assert_eq!(m.cpu.regs[5], 0x1234_5678, "RX_DATA0");
    assert_eq!(m.cpu.regs[6], 0xDDCC_BBAA, "RX_DATA1");
    assert_eq!(m.cpu.regs[7], 0, "FIFO drained after RX_POP");
    let can = m.bus.device::<CanController>().expect("controller attached");
    assert_eq!(can.tx_count(), 1);
    assert_eq!(can.rx_count(), 1);
}

#[test]
fn host_injected_remote_frame_interrupts_the_guest() {
    // The host enqueues a frame from a remote node before the run; the
    // guest sleeps in a spin loop until the RX IRQ fires.
    let src = "spin: b spin";
    let handler = Assembler::new(IsaMode::T2)
        .assemble(
            "movw r0, #0x2000
             movt r0, #0x4000
             ldr r1, [r0, #24]
             bkpt #1",
        )
        .unwrap();
    let mut m = machine_with_devices(
        vec![DeviceSpec::Can(CanConfig {
            base: CAN_BASE,
            irq: 1,
            node: 0,
            cycles_per_bit: 5,
            loopback: false,
            ..CanConfig::default()
        })],
        src,
    );
    m.load_flash(0x300, &handler.bytes);
    m.load_flash(4, &0x300u32.to_le_bytes()); // vector for irq 1
    {
        let can = m.bus.device_mut::<CanController>().expect("controller attached");
        can.host_enqueue(10, 3, alia_can::CanFrame::new(alia_can::CanId::Standard(0x77), &[1]));
    }
    m.bus.refresh_next_event();
    let r = m.run(1_000_000);
    assert_eq!(r.reason, StopReason::Bkpt(1));
    assert_eq!(m.cpu.regs[1], 0x77, "handler read the remote frame's id");
}

#[test]
fn subword_reads_of_patched_flash_remap_identically() {
    // A remapped flash word must serve patched bytes at every access
    // width, with and without a data cache in the path (the unified
    // remap point regression).
    for config in [MachineConfig::m3_like(), MachineConfig::high_end_like()] {
        let mut m = Machine::new(config);
        let addr = 0x840;
        m.load_flash(addr, &0x1111_1111u32.to_le_bytes());
        m.patch.set(0, addr, PatchKind::Remap(0xAABB_CCDD)).unwrap();
        assert_eq!(m.bus_read(addr, 4).unwrap().0, 0xAABB_CCDD, "word");
        assert_eq!(m.bus_read(addr, 2).unwrap().0, 0xCCDD, "low half");
        assert_eq!(m.bus_read(addr + 2, 2).unwrap().0, 0xAABB, "high half");
        assert_eq!(m.bus_read(addr, 1).unwrap().0, 0xDD, "byte 0");
        assert_eq!(m.bus_read(addr + 1, 1).unwrap().0, 0xCC, "byte 1");
        assert_eq!(m.bus_read(addr + 3, 1).unwrap().0, 0xAA, "byte 3");
        // Hits counted once per access, same as the word path.
        assert_eq!(m.patch.hits, 6);
    }
}

#[test]
fn subword_guest_loads_from_patched_flash_remap() {
    // Same regression through actual guest ldrb/ldrh instructions.
    let template = |addr: u32| {
        format!(
            "movw r0, #{}
             movt r0, #{}
             ldrb r2, [r0, #0]
             ldrh r3, [r0, #2]
             ldr r4, [r0, #0]
             bkpt #0",
            addr & 0xFFFF,
            addr >> 16
        )
    };
    let addr = 0x900u32;
    let mut m = Machine::new(MachineConfig::m3_like());
    let out = Assembler::new(IsaMode::T2).assemble(&template(addr)).unwrap();
    m.load_flash(0x100, &out.bytes);
    m.load_flash(addr, &0x2222_2222u32.to_le_bytes());
    m.patch.set(1, addr, PatchKind::Remap(0xCAFE_F00D)).unwrap();
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    let r = m.run(100_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    assert_eq!(m.cpu.regs[2], 0x0D, "ldrb");
    assert_eq!(m.cpu.regs[3], 0xCAFE, "ldrh of the high half");
    assert_eq!(m.cpu.regs[4], 0xCAFE_F00D, "ldr");
}

#[test]
fn bitband_accesses_hit_the_same_bit_at_every_width() {
    // Every access width through the alias maps to the same single bit
    // (the shared bit-band resolution point).
    let mut m = Machine::new(MachineConfig::m3_like());
    let bit = 11u32; // bit 3 of SRAM byte 1
    let alias = BITBAND_BASE + bit;
    for len in [1u32, 2, 4] {
        m.bus_write(alias, len, 1).unwrap();
        assert_eq!(m.sram.read(1, 1), 1 << 3, "width {len} set");
        assert_eq!(m.bus_read(alias, len).unwrap().0, 1, "width {len} read");
        m.bus_write(alias, len, 0).unwrap();
        assert_eq!(m.sram.read(1, 1), 0, "width {len} clear");
        assert_eq!(m.bus_read(alias, len).unwrap().0, 0);
    }
}

#[test]
fn device_state_survives_machine_clone() {
    // Machine (and its boxed devices) stay cloneable; clones diverge
    // independently.
    let mut config = MachineConfig::m3_like();
    config.devices = vec![DeviceSpec::Timer(TimerConfig::default())];
    let mut a = Machine::new(config);
    a.bus_write(TIMER_BASE + 4, 4, 100).unwrap();
    a.bus_write(TIMER_BASE, 4, 1).unwrap();
    let mut b = a.clone();
    let ra = a.run(50);
    let rb = b.run(50);
    assert_eq!(ra, rb, "clones replay identically");
}
