//! Machine-level scenario tests: assembled programs exercising the
//! executor paths the experiments rely on less directly.

use alia_isa::{Assembler, IsaMode};
use alia_sim::{Machine, StopReason, SRAM_BASE};

fn run(mode: IsaMode, src: &str) -> Machine {
    let out = Assembler::new(mode).assemble(src).expect("assembles");
    let mut m = match mode {
        IsaMode::T2 => Machine::m3_like(),
        _ => Machine::arm7_like(mode),
    };
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    let r = m.run(1_000_000);
    assert_eq!(r.reason, StopReason::Bkpt(0), "program must halt at bkpt: {src}");
    m
}

#[test]
fn pre_and_post_indexed_addressing_a32() {
    let m = run(
        IsaMode::A32,
        "mov r0, #0x20000000
         add r0, r0, #0x100
         mov r1, #11
         str r1, [r0], #4      ; post: store at +0x100, r0 -> +0x104
         mov r1, #22
         str r1, [r0, #4]!     ; pre: store at +0x108, r0 -> +0x108
         ldr r2, [r0], #-8     ; post: load 22, r0 -> +0x100
         ldr r3, [r0]
         bkpt #0",
    );
    assert_eq!(m.read_sram_word(0x2000_0100), 11);
    assert_eq!(m.read_sram_word(0x2000_0108), 22);
    assert_eq!(m.cpu.regs[2], 22);
    assert_eq!(m.cpu.regs[3], 11);
    assert_eq!(m.cpu.regs[0], 0x2000_0100);
}

#[test]
fn ldm_stm_writeback_roundtrip() {
    for mode in [IsaMode::A32, IsaMode::T2] {
        let m = run(
            mode,
            "mov r0, #0x20000000
             mov r1, #1
             mov r2, #2
             mov r3, #3
             stm r0!, {r1, r2, r3}
             mov r4, #0x20000000
             ldm r4!, {r5, r6, r7}
             bkpt #0",
        );
        assert_eq!(m.cpu.regs[5], 1, "{mode}");
        assert_eq!(m.cpu.regs[6], 2);
        assert_eq!(m.cpu.regs[7], 3);
        assert_eq!(m.cpu.regs[0], 0x2000_000C);
        assert_eq!(m.cpu.regs[4], 0x2000_000C);
    }
}

#[test]
fn tbh_dispatch() {
    // tbh over a 3-entry table; select case 2.
    // Layout: mov@0x100, tbh@0x102 (table base = 0x106), table 8 bytes,
    // case0@0x10E, case1@0x112, case2@0x116 -> entries 4, 6, 8 halfwords.
    let m = run(
        IsaMode::T2,
        "mov r0, #2
         tbh [pc, r0]
         .word 0x00060004
         .word 0x00000008
         case0: mov r1, #10
         bkpt #0
         case1: mov r1, #20
         bkpt #0
         case2: mov r1, #30
         bkpt #0",
    );
    assert_eq!(m.cpu.regs[1], 30);
}

#[test]
fn it_block_with_memory_ops() {
    let m = run(
        IsaMode::T2,
        "mov r0, #0x20000000
         mov r1, #77
         cmp r1, #77
         itt eq
         str r1, [r0]
         add r1, r1, #1
         bkpt #0",
    );
    assert_eq!(m.read_sram_word(SRAM_BASE), 77);
    assert_eq!(m.cpu.regs[1], 78);
}

#[test]
fn it_block_skips_memory_ops_when_false() {
    let m = run(
        IsaMode::T2,
        "mov r0, #0x20000000
         mov r1, #77
         str r1, [r0]
         cmp r1, #99
         itt eq
         str r1, [r0, #4]
         add r1, r1, #1
         bkpt #0",
    );
    assert_eq!(m.read_sram_word(SRAM_BASE + 4), 0, "skipped store must not land");
    assert_eq!(m.cpu.regs[1], 77);
}

#[test]
fn mla_and_wide_multiply() {
    let m = run(
        IsaMode::T2,
        "mov r0, #7
         mov r1, #9
         mov r2, #100
         mla r3, r0, r1, r2
         bkpt #0",
    );
    assert_eq!(m.cpu.regs[3], 163);
}

#[test]
fn unified_bus_data_access_breaks_flash_stream() {
    // On the von-Neumann ARM7-class machine even an SRAM store forces the
    // next fetch to be non-sequential.
    let mut m = Machine::arm7_like(IsaMode::A32);
    let out = Assembler::new(IsaMode::A32)
        .assemble(
            "mov r0, #0x20000000
             mov r1, #1
             str r1, [r0]
             nop
             nop
             bkpt #0",
        )
        .unwrap();
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m.run(10_000);
    // At least: initial fetch + post-store fetch are non-sequential.
    assert!(m.flash.stats().non_sequential >= 2);
}

#[test]
fn harvard_bus_keeps_stream_across_sram_access() {
    let mut m = Machine::m3_like();
    let out = Assembler::new(IsaMode::T2)
        .assemble(
            "mov r0, #0x20000000
             mov r1, #1
             str r1, [r0]
             nop
             nop
             bkpt #0",
        )
        .unwrap();
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m.run(10_000);
    // Only the initial fetch is non-sequential on the Harvard machine.
    assert_eq!(m.flash.stats().non_sequential, 1);
}

#[test]
fn hardware_interrupt_preserves_all_caller_saved_state() {
    // The handler trashes r0-r3 and r12; after return, main's registers
    // and flags are intact.
    let mut m = Machine::m3_like();
    let main = Assembler::new(IsaMode::T2)
        .assemble(
            "mov r0, #1
             mov r1, #2
             mov r2, #3
             mov r3, #4
             mov r4, #0
             wait: add r4, r4, #1
             cmp r4, #200
             blt wait              ; IRQ lands somewhere in this loop
             ite eq                ; loop exits with r4 == 200: eq holds
             mov r5, #111
             mov r5, #222
             bkpt #0",
        )
        .unwrap();
    let handler = Assembler::new(IsaMode::T2)
        .assemble(
            "mvn r0, r0
             mvn r1, r1
             mvn r2, r2
             mvn r3, r3
             mvn r12, r12
             cmp r0, #0          ; trash flags too
             bx lr",
        )
        .unwrap();
    m.load_flash(0x200, &main.bytes);
    m.load_flash(0x400, &handler.bytes);
    m.load_flash(0, &0x400u32.to_le_bytes());
    m.set_pc(0x200);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m.schedule_irq(60, 0);
    let r = m.run(100_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    assert_eq!(m.cpu.regs[0], 1);
    assert_eq!(m.cpu.regs[1], 2);
    assert_eq!(m.cpu.regs[2], 3);
    assert_eq!(m.cpu.regs[3], 4);
    assert_eq!(m.cpu.regs[5], 111, "flags restored from the stacked PSR");
    assert_eq!(m.irq.taken, 1, "interrupt must actually have run");
}

#[test]
fn t16_literal_pool_loads_execute() {
    let m = run(
        IsaMode::T16,
        "ldr r0, [pc, #0]
         bkpt #0
         .align 4
         .word 0x0BADF00D",
    );
    assert_eq!(m.cpu.regs[0], 0x0BAD_F00D);
}

#[test]
fn deep_call_chain_with_stack_frames() {
    // bl nesting with pushes: fib(6) iteratively via calls.
    let m = run(
        IsaMode::T2,
        "main:
            mov r0, #6
            bl fib
            bkpt #0
         fib:                  ; returns fib(r0), clobbers r1-r3
            push {r4, r5, lr}
            mov r4, #0
            mov r5, #1
            loop:
            cmp r0, #0
            beq done
            add r3, r4, r5
            mov r4, r5
            mov r5, r3
            sub r0, r0, #1
            b loop
            done:
            mov r0, r4
            pop {r4, r5, pc}",
    );
    assert_eq!(m.cpu.regs[0], 8); // fib(6)
}
