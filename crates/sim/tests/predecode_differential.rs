//! Differential tests: the predecode cache must be invisible.
//!
//! Every scenario here runs twice — predecode enabled and disabled — and
//! asserts bit-identical architectural outcomes: `StopReason`, `cycles`,
//! `instructions`, registers, flags, flash streaming statistics and
//! flash-patch hit accounting. Scenarios cover all three machine presets,
//! IRQs (both schemes), IT blocks, literal pools, flash-patch programming
//! mid-run, self-modifying SRAM code and randomized ALU programs.
//!
//! The second half (`blocks_*`) differentials the *block engine*: the
//! same machine with blocks enabled vs per-step execution (blocks off),
//! over branchy control flow, mid-block self-modifying code, flash-patch
//! toggles landing mid-block via a `run_until` split, and an IRQ storm
//! paced by a precise-cycle timer device — cycles, registers, stop
//! reasons and exact IRQ pend/entry stamps all bit-identical.

use alia_isa::{encode, Assembler, Instr, IsaMode, Operand2, Reg};
use alia_sim::{Machine, MachineConfig, PatchKind, StopReason, RunResult, SRAM_BASE};

/// Builds the pair: identical machines except for the predecode setting.
fn pair(build: impl Fn() -> Machine) -> (Machine, Machine) {
    let mut on = build();
    on.set_predecode_enabled(true);
    let mut off = build();
    off.set_predecode_enabled(false);
    (on, off)
}

/// Asserts both machines are architecturally identical right now.
fn assert_state_eq(on: &Machine, off: &Machine, what: &str) {
    assert_eq!(on.cycles(), off.cycles(), "{what}: cycles diverged");
    assert_eq!(on.instructions(), off.instructions(), "{what}: instret diverged");
    assert_eq!(on.cpu.pc, off.cpu.pc, "{what}: pc diverged");
    assert_eq!(on.cpu.regs, off.cpu.regs, "{what}: registers diverged");
    assert_eq!(on.cpu.flags, off.cpu.flags, "{what}: flags diverged");
    assert_eq!(on.patch.hits, off.patch.hits, "{what}: patch hits diverged");
    assert_eq!(on.flash.stats(), off.flash.stats(), "{what}: flash stats diverged");
    assert_eq!(on.svc_count(), off.svc_count(), "{what}: svc count diverged");
    assert_eq!(
        on.latencies().len(),
        off.latencies().len(),
        "{what}: IRQ latency observations diverged"
    );
}

/// Runs both machines to completion and asserts identical results.
fn run_both(mut on: Machine, mut off: Machine, limit: u64, what: &str) -> RunResult {
    let a = on.run(limit);
    let b = off.run(limit);
    assert_eq!(a, b, "{what}: RunResult diverged");
    assert_state_eq(&on, &off, what);
    let stats = on.predecode_stats();
    assert!(
        stats.hits > 0 || stats.block_hits > 0 || a.instructions < 2,
        "{what}: cache never hit — the differential exercised nothing"
    );
    let off_stats = off.predecode_stats();
    assert_eq!(off_stats.hits, 0, "{what}: disabled cache must not hit");
    assert_eq!(off_stats.block_hits, 0, "{what}: disabled cache must not dispatch blocks");
    a
}

/// A host-side mutation applied to both machines at a given step index.
type Event<'a> = (u64, &'a dyn Fn(&mut Machine));

/// Lockstep run: steps both machines together, comparing after every
/// step, applying `events` (host-side mutations) at given step indices.
fn lockstep(
    mut on: Machine,
    mut off: Machine,
    max_steps: u64,
    events: &[Event<'_>],
    what: &str,
) -> Option<StopReason> {
    for step in 0..max_steps {
        for (at, event) in events {
            if *at == step {
                event(&mut on);
                event(&mut off);
            }
        }
        let a = on.step();
        let b = off.step();
        assert_eq!(a, b, "{what}: stop reason diverged at step {step}");
        assert_state_eq(&on, &off, &format!("{what} (step {step})"));
        if a.is_some() {
            return a;
        }
    }
    None
}

fn presets() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("arm7_a32", MachineConfig::arm7_like(IsaMode::A32)),
        ("arm7_t16", MachineConfig::arm7_like(IsaMode::T16)),
        ("m3_t2", MachineConfig::m3_like()),
        ("high_end_t2", MachineConfig::high_end_like()),
    ]
}

fn machine_with(config: &MachineConfig, src: &str) -> Machine {
    let out = Assembler::new(config.mode).assemble(src).expect("program assembles");
    let mut m = Machine::new(config.clone());
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m
}

#[test]
fn alu_loop_identical_across_presets() {
    let src = "mov r0, #0
         mov r1, #200
         loop: add r0, r0, #1
         sub r1, r1, #1
         cmp r1, #0
         bne loop
         bkpt #0";
    for (name, config) in presets() {
        let (on, off) = pair(|| machine_with(&config, src));
        let r = run_both(on, off, 1_000_000, name);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{name}");
    }
}

#[test]
fn memory_stack_and_literals_identical() {
    // Loads, stores, push/pop in a loop, then a literal-pool load
    // (stream break). The literal offset is resolved with a two-pass
    // assembly over the layout symbols.
    let template = |off: i32| {
        format!(
            "movw r0, #0
             movt r0, #0x2000
             mov r7, #3
             loop: mov r1, #7
             str r1, [r0, #4]
             ldr r2, [r0, #4]
             push {{r1, r2}}
             pop {{r3, r4}}
             sub r7, r7, #1
             cmp r7, #0
             bne loop
             litload: ldr r5, [pc, #{off}]
             nop
             bkpt #0
             .align 4
             lit: .word 0xDEADBEEF"
        )
    };
    for (name, config) in presets() {
        if config.mode != IsaMode::T2 {
            continue;
        }
        let probe = Assembler::new(config.mode).assemble(&template(0)).unwrap();
        let base = (probe.symbols["litload"] + 4) & !3;
        let off = probe.symbols["lit"] as i32 - base as i32;
        let src = template(off);
        let out = Assembler::new(config.mode).assemble(&src).unwrap();
        assert_eq!(out.symbols, probe.symbols, "layout must be offset-independent");
        let (on, off_m) = pair(|| machine_with(&config, &src));
        let r = run_both(on, off_m, 1_000_000, name);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{name}");
        let mut check = machine_with(&config, &src);
        check.run(1_000_000);
        assert_eq!(check.cpu.regs[5], 0xDEAD_BEEF, "{name}: literal load landed wrong");
    }
}

#[test]
fn it_blocks_and_predication_identical() {
    let src = "mov r0, #5
         mov r2, #0
         loop: cmp r0, #3
         ite ge
         add r2, r2, #2
         sub r2, r2, #1
         sub r0, r0, #1
         cmp r0, #0
         bne loop
         bkpt #0";
    for (name, config) in presets() {
        if config.mode != IsaMode::T2 {
            continue;
        }
        let (on, off) = pair(|| machine_with(&config, src));
        run_both(on, off, 1_000_000, name);
    }
}

#[test]
fn a32_conditional_execution_identical() {
    let src = "mov r0, #10
         mov r1, #0
         loop: cmp r0, #5
         addgt r1, r1, #2
         addle r1, r1, #1
         sub r0, r0, #1
         cmp r0, #0
         bne loop
         bkpt #0";
    let config = MachineConfig::arm7_like(IsaMode::A32);
    let (on, off) = pair(|| machine_with(&config, src));
    run_both(on, off, 1_000_000, "a32_cond");
}

#[test]
fn interrupts_identical_under_both_schemes() {
    for (name, config) in presets() {
        let build = || {
            let main = Assembler::new(config.mode)
                .assemble("main: add r4, r4, #1\n cmp r4, #200\n bne main\n bkpt #0")
                .unwrap();
            let handler = Assembler::new(config.mode)
                .assemble("add r5, r5, #1\n bx lr")
                .unwrap();
            let mut m = Machine::new(config.clone());
            m.load_flash(0x100, &main.bytes);
            m.load_flash(0x400, &handler.bytes);
            m.load_flash(0, &0x400u32.to_le_bytes());
            m.set_pc(0x100);
            m.cpu.set_sp(SRAM_BASE + 0x8000);
            m.schedule_irq(60, 0);
            m.schedule_irq(200, 0);
            m
        };
        let (on, off) = pair(build);
        let r = run_both(on, off, 1_000_000, name);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{name}");
    }
}

#[test]
fn flash_patch_remap_programmed_mid_run_identical() {
    // The loop re-reads a flash word that gets remapped mid-run; the
    // predecode watermark doesn't cover data, but the patch *revision*
    // must invalidate cached views either way.
    //
    // Two-pass assembly: first with placeholder immediates to learn the
    // literal's offset (instruction sizes don't depend on immediates),
    // then with the real address baked into movw/movt.
    let template = |addr: u32| {
        format!(
            "movw r2, #{}
             movt r2, #{}
             mov r0, #0
             mov r6, #0
             loop: ldr r1, [r2, #0]
             add r6, r6, r1
             add r0, r0, #1
             cmp r0, #40
             bne loop
             bkpt #0
             .align 4
             lit: .word 0x00000001",
            addr & 0xFFFF,
            addr >> 16
        )
    };
    let config = MachineConfig::m3_like();
    let probe = Assembler::new(config.mode).assemble(&template(0)).unwrap();
    let lit_addr = 0x100 + probe.symbols["lit"];
    let out = Assembler::new(config.mode).assemble(&template(lit_addr)).unwrap();
    assert_eq!(out.symbols["lit"], probe.symbols["lit"], "layout must be immediate-independent");
    let build = || {
        let mut m = Machine::new(config.clone());
        m.load_flash(0x100, &out.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair(build);
    let set_patch: &dyn Fn(&mut Machine) =
        &|m| m.patch.set(0, lit_addr, PatchKind::Remap(0x100)).unwrap();
    let clear_patch: &dyn Fn(&mut Machine) = &|m| m.patch.clear(0).unwrap();
    let stop = lockstep(
        on,
        off,
        100_000,
        &[(40, set_patch), (120, clear_patch)],
        "patch_remap_mid_run",
    );
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
}

#[test]
fn flash_patch_breakpoint_on_cached_instruction() {
    // Execute a loop long enough to cache it, then drop a breakpoint
    // patch onto an instruction *already in the predecode cache*.
    let src = "mov r0, #0
         loop: add r0, r0, #1
         target: add r0, r0, #2
         cmp r0, #0
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();
    let out = Assembler::new(config.mode).assemble(src).unwrap();
    let target = (0x100 + out.symbols["target"]) & !3;
    let build = || {
        let mut m = Machine::new(config.clone());
        m.load_flash(0x100, &out.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair(build);
    let set_bp: &dyn Fn(&mut Machine) =
        &|m| m.patch.set(3, target, PatchKind::Breakpoint).unwrap();
    let stop = lockstep(on, off, 100_000, &[(30, set_bp)], "patch_bp_mid_run");
    assert!(
        matches!(stop, Some(StopReason::PatchBreakpoint { .. })),
        "expected patch breakpoint, got {stop:?}"
    );
}

#[test]
fn self_modifying_sram_code_program_driven() {
    // Code runs *from SRAM* and rewrites one of its own instructions
    // (`mov r4, #1` -> `mov r4, #99`) after it has been executed (and
    // therefore predecoded), then loops back through it. Two-pass
    // assembly bakes the target address and replacement encoding into
    // movw immediates (layout is immediate-independent).
    let code_base = SRAM_BASE + 0x100;
    let mode = IsaMode::T2;
    // Replacement `mov r4, #99` (narrow, 2 bytes), stored with strh so
    // the neighbouring instruction is untouched.
    let repl = encode(
        &Instr::Mov { s: false, cond: alia_isa::Cond::Al, rd: Reg::R4, op2: Operand2::Imm(99) },
        mode,
    )
    .unwrap();
    assert_eq!(repl.as_bytes().len(), 2, "narrow mov expected");
    let repl_halfword =
        u32::from(u16::from_le_bytes([repl.as_bytes()[0], repl.as_bytes()[1]]));
    let template = |target: u32, halfword: u32| {
        format!(
            "b start
             target: mov r4, #1
             b after
             start: mov r5, #0
             pass: add r5, r5, #1
             b target
             after: cmp r5, #2
             bge done
             movw r0, #{}
             movt r0, #{}
             movw r1, #{}
             strh r1, [r0, #0]
             b pass
             done: bkpt #0",
            target & 0xFFFF,
            target >> 16,
            halfword
        )
    };
    let probe = Assembler::new(mode).assemble(&template(0, 0)).unwrap();
    let target_addr = code_base + probe.symbols["target"];
    let out = Assembler::new(mode).assemble(&template(target_addr, repl_halfword)).unwrap();
    assert_eq!(out.symbols, probe.symbols, "layout must be immediate-independent");
    let build = || {
        let mut m = Machine::new(MachineConfig::m3_like());
        m.load_sram(code_base, &out.bytes);
        m.set_pc(code_base + out.symbols["start"]);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (mut on, mut off) = pair(build);
    let a = on.run(1_000_000);
    let b = off.run(1_000_000);
    assert_eq!(a, b, "SMC run diverged");
    assert_eq!(on.cpu.regs, off.cpu.regs, "SMC registers diverged");
    assert_eq!(a.reason, StopReason::Bkpt(0));
    // The second pass must have executed the *rewritten* instruction.
    assert_eq!(on.cpu.regs[4], 99, "stale predecode served the old instruction");
}

#[test]
fn direct_component_level_sram_write_invalidates() {
    // Mutating code through the *component-level* `Sram::write` API (the
    // pub `machine.sram` field, bypassing `Machine::write_sram_word`)
    // must also invalidate cached decode: `Sram::write` counts as a
    // host-side content mutation.
    let code_base = SRAM_BASE + 0x300;
    let src = "mov r0, #0
         loop: add r0, r0, #1
         target: add r6, r6, #1
         cmp r0, #30
         bne loop
         bkpt #0";
    let mode = IsaMode::T2;
    let out = Assembler::new(mode).assemble(src).unwrap();
    let target_addr = code_base + out.symbols["target"];
    let repl = Assembler::new(mode).assemble("add r6, r6, #5\n cmp r0, #30").unwrap();
    let word = u32::from_le_bytes(repl.bytes[..4].try_into().unwrap());
    let build = || {
        let mut m = Machine::new(MachineConfig::m3_like());
        m.load_sram(code_base, &out.bytes);
        m.set_pc(code_base);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair(build);
    let rewrite: &dyn Fn(&mut Machine) =
        &|m| m.sram.write(target_addr - SRAM_BASE, 4, word);
    let stop = lockstep(on, off, 100_000, &[(20, rewrite)], "component_sram_write");
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
}

#[test]
fn direct_component_level_tcm_write_invalidates() {
    // Same hole, TCM flavour: mutating code through the component-level
    // `Tcm::write` API must invalidate cached decode via `Tcm::revision`.
    use alia_sim::TCM_BASE;
    let code_base = TCM_BASE + 0x100;
    let src = "mov r0, #0
         loop: add r0, r0, #1
         target: add r6, r6, #1
         cmp r0, #30
         bne loop
         bkpt #0";
    let mode = IsaMode::T2;
    let out = Assembler::new(mode).assemble(src).unwrap();
    let target_off = (code_base - TCM_BASE) + out.symbols["target"];
    let repl = Assembler::new(mode).assemble("add r6, r6, #5\n cmp r0, #30").unwrap();
    let word = u32::from_le_bytes(repl.bytes[..4].try_into().unwrap());
    let build = || {
        let mut m = Machine::new(MachineConfig::high_end_like());
        m.tcm.as_mut().unwrap().load(code_base - TCM_BASE, &out.bytes);
        m.set_pc(code_base);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair(build);
    let rewrite: &dyn Fn(&mut Machine) =
        &|m| {
            m.tcm.as_mut().unwrap().write(target_off, 4, word);
        };
    let stop = lockstep(on, off, 100_000, &[(20, rewrite)], "component_tcm_write");
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
}

#[test]
fn self_modifying_sram_code_host_driven() {
    // Host rewrites an upcoming instruction mid-run via write_sram_word.
    let code_base = SRAM_BASE + 0x200;
    let src = "mov r0, #0
         loop: add r0, r0, #1
         target: add r7, r7, #1
         cmp r0, #60
         bne loop
         bkpt #0";
    let mode = IsaMode::T2;
    let out = Assembler::new(mode).assemble(src).unwrap();
    let target_addr = code_base + out.symbols["target"];
    assert_eq!(target_addr % 4, 0, "test wants an aligned word to rewrite");
    let build = || {
        let mut m = Machine::new(MachineConfig::m3_like());
        m.load_sram(code_base, &out.bytes);
        m.set_pc(code_base);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    // Replacement word: `add r7, r7, #3` + original `cmp r0, #60`.
    let repl = Assembler::new(mode).assemble("add r7, r7, #3\n cmp r0, #60").unwrap();
    let word = u32::from_le_bytes(repl.bytes[..4].try_into().unwrap());
    let (on, off) = pair(build);
    let rewrite: &dyn Fn(&mut Machine) = &|m| m.write_sram_word(target_addr, word);
    let stop = lockstep(on, off, 100_000, &[(50, rewrite)], "host_smc");
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
}

#[test]
fn toggling_predecode_mid_run_matches_disabled() {
    let src = "mov r0, #0
         mov r1, #300
         loop: add r0, r0, #3
         sub r1, r1, #1
         cmp r1, #0
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();
    let mut toggler = machine_with(&config, src);
    let mut reference = machine_with(&config, src);
    reference.set_predecode_enabled(false);
    let mut stop_a = None;
    for step in 0..100_000u64 {
        if step.is_multiple_of(37) {
            toggler.set_predecode_enabled(step.is_multiple_of(74));
        }
        let a = toggler.step();
        let b = reference.step();
        assert_eq!(a, b, "diverged at step {step}");
        assert_eq!(toggler.cycles(), reference.cycles(), "cycles diverged at step {step}");
        assert_eq!(toggler.cpu.regs, reference.cpu.regs, "regs diverged at step {step}");
        if a.is_some() {
            stop_a = a;
            break;
        }
    }
    assert_eq!(stop_a, Some(StopReason::Bkpt(0)));
}

#[test]
fn randomized_alu_programs_identical() {
    // Deterministic xorshift; straight-line random ALU over r0-r6.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ops = ["add", "sub", "and", "orr", "eor"];
    for trial in 0..12 {
        // Random straight-line body, looped thrice so the second and
        // third passes run from the predecode cache.
        let mut src = String::from(
            "mov r0, #1\nmov r1, #2\nmov r2, #3\nmov r3, #4\nmov r7, #3\nloop:\n",
        );
        for _ in 0..100 {
            let op = ops[(next() % ops.len() as u64) as usize];
            let rd = next() % 7;
            let rn = next() % 7;
            if next() % 2 == 0 {
                // T16's narrow immediate ALU forms only cover add/sub.
                let imm = next() % 256;
                let imm_op = if next() % 2 == 0 { "add" } else { "sub" };
                src.push_str(&format!("{imm_op} r{rd}, r{rd}, #{imm}\n"));
                let _ = (op, rn);
            } else {
                src.push_str(&format!("{op} r{rd}, r{rd}, r{rn}\n"));
            }
        }
        src.push_str("sub r7, r7, #1\ncmp r7, #0\nbne loop\nbkpt #0");
        for (name, config) in presets() {
            let (on, off) = pair(|| machine_with(&config, &src));
            let what = format!("random[{trial}] on {name}");
            let r = run_both(on, off, 1_000_000, &what);
            assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
        }
    }
}

// ---------------------------------------------------------------------
// Block engine vs per-step execution
// ---------------------------------------------------------------------

/// Builds the pair: identical machines except the block engine (the
/// per-instruction predecode cache stays on for both — this isolates
/// block dispatch + chaining, not predecoding).
fn pair_blocks(build: impl Fn() -> Machine) -> (Machine, Machine) {
    let on = build();
    let mut off = build();
    off.set_block_cache_enabled(false);
    (on, off)
}

/// Runs both machines to completion and asserts bit-identical outcomes,
/// including the exact per-interrupt pend/entry cycle stamps.
fn run_both_blocks(mut on: Machine, mut off: Machine, limit: u64, what: &str) -> RunResult {
    let a = on.run(limit);
    let b = off.run(limit);
    assert_eq!(a, b, "{what}: RunResult diverged");
    assert_state_eq(&on, &off, what);
    assert_eq!(on.latencies(), off.latencies(), "{what}: IRQ stamps diverged");
    assert!(
        on.predecode_stats().block_hits > 0 || a.instructions < 2,
        "{what}: block engine never dispatched — the differential exercised nothing"
    );
    assert_eq!(
        off.predecode_stats().block_hits,
        0,
        "{what}: disabled block engine must not dispatch"
    );
    a
}

#[test]
fn blocks_branchy_programs_identical_across_presets() {
    // Nested loops, calls and returns, conditional forward branches:
    // plenty of block exits, chain links and partial blocks.
    let src = "mov r0, #0
         mov r5, #8
         outer: mov r6, #6
         inner: bl helper
         cmp r0, #40
         bgt skip
         add r0, r0, #2
         skip: sub r6, r6, #1
         cmp r6, #0
         bne inner
         sub r5, r5, #1
         cmp r5, #0
         bne outer
         bkpt #0
         helper: add r0, r0, #1
         bx lr";
    for (name, config) in presets() {
        if config.mode == alia_isa::IsaMode::T16 {
            continue; // bl/bx helper shape assembles for A32/T2 here
        }
        let (on, off) = pair_blocks(|| machine_with(&config, src));
        let r = run_both_blocks(on, off, 1_000_000, name);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{name}");
    }
}

#[test]
fn blocks_mid_block_smc_identical() {
    // Mid-block self-modifying code: every pass, SRAM code stores a new
    // encoding over an instruction that sits *later in the same basic
    // block* as the store (the stored halfword alternates between
    // `add r6, r6, #1` and `add r6, r6, #5` via an xor mask). Pass 0
    // records the block — the store lands on not-yet-decoded code, so
    // the recording survives and caches the *new* encoding, which is
    // exactly what pass 0 then executes. Pass 1 *dispatches* that
    // block: now the store hits the watermark, the generation stamp
    // moves mid-block, and the engine must split before the (stale)
    // cached target entry issues. The alternating checksum in r6 would
    // expose a single stale execution.
    let code_base = SRAM_BASE + 0x400;
    let mode = alia_isa::IsaMode::T2;
    let enc = |src: &str| {
        let out = Assembler::new(mode).assemble(&format!("{src}\n nop")).unwrap();
        u32::from(u16::from_le_bytes([out.bytes[0], out.bytes[1]]))
    };
    let h0 = enc("add r6, r6, #1"); // the assembled original
    let h1 = enc("add r6, r6, #5");
    let passes = 16u32;
    let template = |target: u32| {
        format!(
            "movw r1, #{}
             movt r1, #{}
             movw r2, #{h1}
             movw r4, #{}
             mov r0, #0
             b mloop
             mloop: strh r2, [r1, #0]
             eor r2, r2, r4
             target: add r6, r6, #1
             add r0, r0, #1
             cmp r0, #{passes}
             bne mloop
             bkpt #0",
            target & 0xFFFF,
            target >> 16,
            h0 ^ h1
        )
    };
    let probe = Assembler::new(mode).assemble(&template(0)).unwrap();
    let target = code_base + probe.symbols["target"];
    let out = Assembler::new(mode).assemble(&template(target)).unwrap();
    assert_eq!(out.symbols, probe.symbols, "layout must be immediate-independent");
    let build = || {
        let mut m = Machine::new(MachineConfig::m3_like());
        m.load_sram(code_base, &out.bytes);
        m.set_pc(code_base);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair_blocks(build);
    let r = run_both_blocks(on, off, 1_000_000, "mid_block_smc");
    assert_eq!(r.reason, StopReason::Bkpt(0));
    // Alternating +5 / +1, starting with the freshly stored +5.
    let expect = (passes / 2) * 5 + (passes / 2);
    let mut check = build();
    let rc = check.run(1_000_000);
    assert_eq!(rc.reason, StopReason::Bkpt(0));
    assert_eq!(check.cpu.regs[6], expect, "stale block served an old encoding");
}

#[test]
fn blocks_flash_patch_toggle_mid_block_identical() {
    // Host toggles a flash-patch remap while execution is split
    // mid-block by a `run_until` bound: resuming must refetch under the
    // new generation, with cycles identical to per-step execution. The
    // odd bounds deliberately land inside the loop body's block.
    let template = |addr: u32| {
        format!(
            "movw r2, #{}
             movt r2, #{}
             mov r0, #0
             mov r6, #0
             loop: ldr r1, [r2, #0]
             add r6, r6, r1
             add r0, r0, #1
             cmp r0, #60
             bne loop
             bkpt #0
             .align 4
             lit: .word 0x00000001",
            addr & 0xFFFF,
            addr >> 16
        )
    };
    let config = MachineConfig::m3_like();
    let probe = Assembler::new(config.mode).assemble(&template(0)).unwrap();
    let lit_addr = 0x100 + probe.symbols["lit"];
    let out = Assembler::new(config.mode).assemble(&template(lit_addr)).unwrap();
    let build = || {
        let mut m = Machine::new(config.clone());
        m.load_flash(0x100, &out.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (mut on, mut off) = pair_blocks(build);
    for (i, bound) in [137u64, 421, 703, 997].iter().enumerate() {
        let a = on.run_until(*bound);
        let b = off.run_until(*bound);
        assert_eq!(a, b, "bounded run {i} diverged");
        assert_state_eq(&on, &off, &format!("bound {bound}"));
        if i % 2 == 0 {
            on.patch.set(0, lit_addr, PatchKind::Remap(0x40)).unwrap();
            off.patch.set(0, lit_addr, PatchKind::Remap(0x40)).unwrap();
        } else {
            on.patch.clear(0).unwrap();
            off.patch.clear(0).unwrap();
        }
    }
    let a = on.run(1_000_000);
    let b = off.run(1_000_000);
    assert_eq!(a, b, "final run diverged");
    assert_state_eq(&on, &off, "final");
    assert_eq!(a.reason, StopReason::Bkpt(0));
    assert!(on.cpu.regs[6] > 60, "some loads must have seen the remapped value");
}

#[test]
fn blocks_irq_storm_with_precise_timer_identical() {
    // A periodic compare-match timer hammers the hot loop with
    // interrupts stamped at exact cycles; the handler pops frames of
    // work. Block dispatch must split at every due compare match and
    // reproduce identical pend/entry stamps for all of them.
    use alia_sim::{DeviceSpec, TimerConfig, TIMER_BASE};
    let build = || {
        let mut config = MachineConfig::m3_like();
        config.devices = vec![DeviceSpec::Timer(TimerConfig {
            base: TIMER_BASE,
            irq: 0,
            compare: 97, // prime, so boundaries wander through the block
        })];
        let main = Assembler::new(config.mode)
            .assemble(
                "movw r0, #0x1000
                 movt r0, #0x4000
                 movw r1, #97
                 str r1, [r0, #4]
                 mov r1, #3
                 str r1, [r0, #0]
                 loop: add r2, r2, #1
                 add r3, r3, r2
                 eor r4, r4, r3
                 cmp r5, #50
                 blt loop
                 bkpt #0",
            )
            .unwrap();
        let handler = Assembler::new(config.mode)
            .assemble("add r5, r5, #1\n bx lr")
            .unwrap();
        let mut m = Machine::new(config);
        m.load_flash(0x100, &main.bytes);
        m.load_flash(0x300, &handler.bytes);
        m.load_flash(0, &0x300u32.to_le_bytes());
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (on, off) = pair_blocks(build);
    let (mut on2, _) = pair_blocks(build);
    let r = run_both_blocks(on, off, 10_000_000, "irq_storm");
    assert_eq!(r.reason, StopReason::Bkpt(0));
    // The storm really interacted with block dispatch: re-run the
    // blocks-on machine and check budget splits fired.
    let r2 = on2.run(10_000_000);
    assert_eq!(r2, r);
    assert!(
        on2.predecode_stats().budget_splits > 10,
        "timer events must split blocks at their exact cycles"
    );
}

#[test]
fn blocks_randomized_programs_identical() {
    // The randomized straight-line ALU corpus from the predecode
    // differential, replayed against the block engine.
    let mut state = 0xFEED_FACE_CAFE_BEEFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ops = ["add", "sub", "and", "orr", "eor"];
    for trial in 0..6 {
        let mut src = String::from(
            "mov r0, #1\nmov r1, #2\nmov r2, #3\nmov r3, #4\nmov r7, #4\nloop:\n",
        );
        for _ in 0..90 {
            let op = ops[(next() % ops.len() as u64) as usize];
            let rd = next() % 7;
            let rn = next() % 7;
            if next() % 2 == 0 {
                let imm = next() % 256;
                let imm_op = if next() % 2 == 0 { "add" } else { "sub" };
                src.push_str(&format!("{imm_op} r{rd}, r{rd}, #{imm}\n"));
                let _ = (op, rn);
            } else {
                src.push_str(&format!("{op} r{rd}, r{rd}, r{rn}\n"));
            }
        }
        src.push_str("sub r7, r7, #1\ncmp r7, #0\nbne loop\nbkpt #0");
        for (name, config) in presets() {
            let (on, off) = pair_blocks(|| machine_with(&config, &src));
            let what = format!("blocks random[{trial}] on {name}");
            let r = run_both_blocks(on, off, 1_000_000, &what);
            assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
        }
    }
}

#[test]
fn predecode_stats_report_hits() {
    let src = "mov r0, #0
         mov r1, #50
         loop: add r0, r0, #1
         sub r1, r1, #1
         cmp r1, #0
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();

    // Blocks off: every retired instruction consults the instruction
    // cache, and the steady-state loop mostly hits.
    let mut m = machine_with(&config, src);
    m.set_block_cache_enabled(false);
    let r = m.run(1_000_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    let stats = m.predecode_stats();
    assert!(stats.hits > stats.misses, "steady-state loop must mostly hit");
    assert!(
        stats.hits + stats.misses >= r.instructions,
        "every retired instruction consults the cache"
    );
    assert_eq!(stats.block_hits, 0, "disabled block engine must not dispatch");

    // Blocks on: the loop body is recorded once, then dispatched
    // block-to-block through its chain link; the instruction cache only
    // serves the recording prefix.
    let mut m = machine_with(&config, src);
    let r2 = m.run(1_000_000);
    assert_eq!(r2, r, "block engine changed the run result");
    let stats = m.predecode_stats();
    assert!(stats.blocks_built >= 1, "loop body never recorded");
    assert!(stats.block_hits > 2, "steady-state loop must dispatch blocks");
    assert!(
        stats.chain_follows > 0,
        "the loop's back edge must chain cache-to-cache"
    );
    assert!(
        stats.hits + stats.misses < r.instructions,
        "block dispatch must bypass per-instruction probes"
    );
}
