//! Property tests on simulator components: MPU planning invariants, cache
//! behaviour, flash streaming accounting and TCM repair.

use alia_sim::{
    Access, Cache, CacheConfig, Flash, FlashConfig, Lookup, Mpu, MpuKind, Tcm,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn mpu_plans_always_cover_the_request(
        base in 0x2000_0000u32..0x2010_0000,
        size in 1u32..16384,
        fine in any::<bool>(),
    ) {
        let kind = if fine { MpuKind::FineGrain } else { MpuKind::Classic };
        let mpu = Mpu::new(kind);
        let (b, s) = mpu.plan_region(base, size);
        prop_assert!(b <= base, "base {b:#x} above request {base:#x}");
        prop_assert!(u64::from(b) + u64::from(s) >= u64::from(base) + u64::from(size));
        match kind {
            MpuKind::Classic => {
                prop_assert!(s.is_power_of_two() && s >= 4096);
                prop_assert_eq!(b % s, 0, "classic base aligned to size");
            }
            MpuKind::FineGrain => {
                prop_assert_eq!(s % 32, 0);
                prop_assert_eq!(b % 32, 0);
                // Fine-grain waste is bounded by two granules.
                prop_assert!(s <= (size + 63) / 32 * 32 + 32);
            }
        }
    }

    #[test]
    fn cache_repeated_access_always_hits(addrs in prop::collection::vec(0u32..0x8000, 1..40)) {
        let mut c = Cache::new(CacheConfig::default());
        for &a in &addrs {
            c.access(a);
            let (second, cy) = c.access(a);
            prop_assert_eq!(second, Lookup::Hit, "immediate re-access must hit");
            prop_assert_eq!(cy, 1);
        }
        let stats = c.stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * addrs.len() as u64);
    }

    #[test]
    fn cache_injection_then_access_detects_exactly_once(addr in 0u32..0x4000) {
        let mut c = Cache::new(CacheConfig::default());
        c.access(addr);
        prop_assert!(c.inject_data_error(addr));
        let (first, _) = c.access(addr);
        prop_assert_eq!(first, Lookup::DataError);
        // Recovery: refill then clean hit; no further errors.
        let (refill, _) = c.access(addr);
        prop_assert_eq!(refill, Lookup::Miss);
        let (clean, _) = c.access(addr);
        prop_assert_eq!(clean, Lookup::Hit);
        prop_assert_eq!(c.stats().parity_errors, 1);
    }

    #[test]
    fn flash_sequential_walk_pays_nonseq_once(
        start in 0u32..1024u32,
        steps in 1u32..64,
        nonseq in 1u32..8,
    ) {
        let start = start * 4;
        let mut f = Flash::new(FlashConfig {
            size: 1 << 20,
            seq_cycles: 1,
            nonseq_cycles: nonseq,
            width: 4,
        });
        let mut total = 0;
        for i in 0..steps {
            let (_, c) = f.access(start + 4 * i, 4, Access::Fetch);
            total += c;
        }
        prop_assert_eq!(total, nonseq + (steps - 1));
        prop_assert_eq!(f.stats().non_sequential, 1);
        prop_assert_eq!(f.stats().sequential, u64::from(steps) - 1);
    }

    #[test]
    fn tcm_repair_restores_any_corruption(
        word in 0u32..16,
        bit in 0u32..32,
        value in any::<u32>(),
    ) {
        let mut t = Tcm::new(64);
        t.write(word * 4, 4, value);
        t.inject_bit_flip(word * 4, bit);
        let (got, cycles) = t.read(word * 4, 4);
        prop_assert_eq!(got, value, "ECC must restore the original word");
        prop_assert!(cycles > 1, "a repair stall must be charged");
        let (again, fast) = t.read(word * 4, 4);
        prop_assert_eq!(again, value);
        prop_assert_eq!(fast, 1);
    }

    #[test]
    fn tcm_without_ecc_really_corrupts(word in 0u32..16, bit in 0u32..32) {
        let mut t = Tcm::new(64);
        t.ecc = false;
        t.write(word * 4, 4, 0);
        t.inject_bit_flip(word * 4, bit);
        let (got, _) = t.read(word * 4, 4);
        prop_assert_eq!(got, 1u32 << bit);
    }
}
