//! Region-boundary differential suite: the bus region-table classifier
//! must reproduce the seed's chain-of-range-compares classifier
//! byte-for-byte — every region edge swept ±4 bytes, all access widths,
//! fault behaviour included.
//!
//! The reference classifier below is a verbatim transcription of the
//! pre-bus `Machine::classify` if-chain (plus the fixed fault rules of
//! the old `data_read`/`data_write` match arms); the test drives the
//! real machine through its public classifier and host-driven bus
//! accessors and compares.

use alia_isa::IsaMode;
use alia_sim::{
    CanConfig, DeviceSpec, Machine, MachineConfig, Region, TimerConfig, BITBAND_BASE, CAN_BASE,
    FLASH_BASE, MMIO_BASE, SRAM_BASE, TCM_BASE, TIMER_BASE,
};

/// The seed's region classes (the instrumentation block was a dedicated
/// `Mmio` variant rather than a numbered device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefRegion {
    Flash,
    Tcm,
    Sram,
    BitBand,
    Mmio,
    Unmapped,
}

/// Verbatim transcription of the pre-bus `Machine::classify`.
fn reference_classify(config: &MachineConfig, addr: u32) -> RefRegion {
    if (FLASH_BASE..FLASH_BASE + config.flash.size).contains(&addr) {
        return RefRegion::Flash;
    }
    if (SRAM_BASE..SRAM_BASE + config.sram_size).contains(&addr) {
        return RefRegion::Sram;
    }
    if let Some(sz) = config.tcm_size {
        if (TCM_BASE..TCM_BASE + sz).contains(&addr) {
            return RefRegion::Tcm;
        }
    }
    if config.bitband
        && (BITBAND_BASE..BITBAND_BASE + config.sram_size.saturating_mul(8)).contains(&addr)
    {
        return RefRegion::BitBand;
    }
    if (MMIO_BASE..MMIO_BASE + 0x1000).contains(&addr) {
        return RefRegion::Mmio;
    }
    RefRegion::Unmapped
}

/// Maps the new classifier's answer onto the seed's classes. Device
/// index 0 is the instrumentation block (the seed's `Mmio` region);
/// higher indices did not exist in the seed and are handled separately.
fn as_ref_region(region: Region) -> RefRegion {
    match region {
        Region::Flash => RefRegion::Flash,
        Region::Tcm => RefRegion::Tcm,
        Region::Sram => RefRegion::Sram,
        Region::BitBand => RefRegion::BitBand,
        Region::Device(0) => RefRegion::Mmio,
        Region::Device(_) => panic!("seed-layout machine has exactly one device"),
        Region::Unmapped => RefRegion::Unmapped,
    }
}

fn presets() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("arm7_a32", MachineConfig::arm7_like(IsaMode::A32)),
        ("arm7_t16", MachineConfig::arm7_like(IsaMode::T16)),
        ("m3_t2", MachineConfig::m3_like()),
        ("high_end_t2", MachineConfig::high_end_like()),
    ]
}

/// Every region edge of a configuration: each `(label, boundary)` pair
/// is a first-byte-outside address; the sweep covers ±4 around it.
fn edges(config: &MachineConfig) -> Vec<(&'static str, u32)> {
    let mut e = vec![
        ("flash_start", FLASH_BASE),
        ("flash_end", FLASH_BASE + config.flash.size),
        ("sram_start", SRAM_BASE),
        ("sram_end", SRAM_BASE + config.sram_size),
        ("mmio_start", MMIO_BASE),
        ("mmio_end", MMIO_BASE + 0x1000),
    ];
    if let Some(sz) = config.tcm_size {
        e.push(("tcm_start", TCM_BASE));
        e.push(("tcm_end", TCM_BASE + sz));
    }
    if config.bitband {
        e.push(("bitband_start", BITBAND_BASE));
        e.push(("bitband_end", BITBAND_BASE + config.sram_size.saturating_mul(8)));
    }
    e
}

#[test]
fn classifier_matches_seed_chain_at_every_edge() {
    for (name, config) in presets() {
        let m = Machine::new(config.clone());
        for (label, boundary) in edges(&config) {
            for delta in -4i64..=4 {
                let addr = (i64::from(boundary) + delta) as u32;
                assert_eq!(
                    as_ref_region(m.classify(addr)),
                    reference_classify(&config, addr),
                    "{name}/{label}: classify({addr:#010x}) diverged from the seed chain"
                );
            }
        }
    }
}

#[test]
fn classifier_matches_seed_chain_across_the_map() {
    // Coarse full-map sweep: one probe per 64 KiB across the whole
    // 4 GiB space catches any mis-built table entry far from an edge.
    for (name, config) in presets() {
        let m = Machine::new(config.clone());
        let mut addr = 0u32;
        loop {
            assert_eq!(
                as_ref_region(m.classify(addr)),
                reference_classify(&config, addr),
                "{name}: classify({addr:#010x}) diverged"
            );
            let (next, overflow) = addr.overflowing_add(1 << 16);
            if overflow {
                break;
            }
            addr = next;
        }
    }
}

/// The seed's fault rules: which accesses succeed per region.
fn read_ok(region: RefRegion) -> bool {
    region != RefRegion::Unmapped
}

fn write_ok(region: RefRegion) -> bool {
    !matches!(region, RefRegion::Unmapped | RefRegion::Flash)
}

#[test]
fn fault_behaviour_matches_seed_rules_at_every_edge() {
    for (name, config) in presets() {
        for (label, boundary) in edges(&config) {
            for delta in -4i64..=4 {
                let addr = (i64::from(boundary) + delta) as u32;
                for len in [1u32, 2, 4] {
                    // Accesses straddling a region end indexed out of
                    // bounds in the seed (a host panic, not a fault);
                    // the contract is only defined within one region.
                    let last = match addr.checked_add(len - 1) {
                        Some(l) => l,
                        None => continue,
                    };
                    let region = reference_classify(&config, addr);
                    if reference_classify(&config, last) != region {
                        continue;
                    }
                    let mut m = Machine::new(config.clone());
                    let what = format!("{name}/{label}: {addr:#010x} len {len}");
                    assert_eq!(
                        m.bus_read(addr, len).is_ok(),
                        read_ok(region),
                        "{what}: read fault behaviour diverged"
                    );
                    let mut m = Machine::new(config.clone());
                    assert_eq!(
                        m.bus_write(addr, len, 0xA5).is_ok(),
                        write_ok(region),
                        "{what}: write fault behaviour diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn attached_device_windows_classify_as_devices() {
    // New devices occupy addresses the seed left unmapped; everything
    // outside their windows must stay exactly as the seed had it.
    let mut config = MachineConfig::m3_like();
    config.devices = vec![
        DeviceSpec::Timer(TimerConfig::default()),
        DeviceSpec::Can(CanConfig { irq: 1, loopback: true, ..CanConfig::default() }),
    ];
    let m = Machine::new(config.clone());
    assert_eq!(m.classify(TIMER_BASE), Region::Device(1));
    assert_eq!(m.classify(TIMER_BASE + 0xFF), Region::Device(1));
    assert_eq!(m.classify(CAN_BASE), Region::Device(2));
    for (label, boundary) in [
        ("timer_start", TIMER_BASE),
        ("timer_end", TIMER_BASE + 0x100),
        ("can_start", CAN_BASE),
        ("can_end", CAN_BASE + 0x100),
    ] {
        for delta in -4i64..=4 {
            let addr = (i64::from(boundary) + delta) as u32;
            match m.classify(addr) {
                Region::Device(i @ 1..) => assert!(
                    (1..=2).contains(&i)
                        && (TIMER_BASE..TIMER_BASE + 0x100).contains(&addr) == (i == 1)
                        && (CAN_BASE..CAN_BASE + 0x100).contains(&addr) == (i == 2),
                    "{label}: {addr:#010x} resolved to wrong device {i}"
                ),
                other => assert_eq!(
                    as_ref_region(other),
                    reference_classify(&config, addr),
                    "{label}: {addr:#010x} diverged outside device windows"
                ),
            }
        }
    }
}
