//! Differential tests: the tier-3 threaded-code engine must be
//! invisible.
//!
//! Every scenario runs across the full 2^3 matrix of host-acceleration
//! tiers — predecode cache × block engine × threaded lowering — and
//! asserts bit-identical architectural outcomes against the all-off
//! interpreter: `StopReason`, cycles, instruction counts, registers,
//! flags, flash streaming statistics, flash-patch accounting and the
//! exact per-interrupt pend/entry cycle stamps. Scenarios target the
//! threaded engine's sharp edges specifically: superinstruction fusion
//! patterns, IRQ storms landing *between* the two halves of fused
//! pairs, self-modifying code rewriting the inside of a fused pair of
//! an already-promoted block, `run_until` bounds splitting threaded
//! blocks mid-flight, flash-patch toggles demoting promoted blocks,
//! and device-revision stamps moving between a block's recording and
//! its chained successor dispatch.

use std::any::Any;

use alia_isa::{Assembler, IsaMode};
use alia_sim::{
    Device, DeviceCtx, Machine, MachineConfig, PatchKind, RunResult, StopReason, MMIO_BASE,
    SRAM_BASE,
};

/// Asserts both machines are architecturally identical right now,
/// including exact IRQ pend/entry stamps.
fn assert_state_eq(on: &Machine, off: &Machine, what: &str) {
    assert_eq!(on.cycles(), off.cycles(), "{what}: cycles diverged");
    assert_eq!(on.instructions(), off.instructions(), "{what}: instret diverged");
    assert_eq!(on.cpu.pc, off.cpu.pc, "{what}: pc diverged");
    assert_eq!(on.cpu.regs, off.cpu.regs, "{what}: registers diverged");
    assert_eq!(on.cpu.flags, off.cpu.flags, "{what}: flags diverged");
    assert_eq!(on.patch.hits, off.patch.hits, "{what}: patch hits diverged");
    assert_eq!(on.flash.stats(), off.flash.stats(), "{what}: flash stats diverged");
    assert_eq!(on.svc_count(), off.svc_count(), "{what}: svc count diverged");
    assert_eq!(on.latencies(), off.latencies(), "{what}: IRQ stamps diverged");
}

/// Applies one tier combination (bit 0 = predecode, bit 1 = blocks,
/// bit 2 = threaded).
fn set_tiers(m: &mut Machine, mask: u32) {
    m.set_predecode_enabled(mask & 1 != 0);
    m.set_block_cache_enabled(mask & 2 != 0);
    m.set_threaded_enabled(mask & 4 != 0);
}

/// Runs every tier combination to completion against the all-off
/// baseline, asserting bit-identity for each. Returns the baseline
/// result and the all-on machine (for stats assertions).
fn run_matrix(build: &dyn Fn() -> Machine, limit: u64, what: &str) -> (RunResult, Machine) {
    let mut base = build();
    set_tiers(&mut base, 0);
    let r0 = base.run(limit);
    let mut all_on = None;
    for mask in 1u32..8 {
        let mut m = build();
        set_tiers(&mut m, mask);
        let r = m.run(limit);
        let tag = format!("{what} [combo {mask:03b}]");
        assert_eq!(r, r0, "{tag}: RunResult diverged");
        assert_state_eq(&m, &base, &tag);
        if mask == 7 {
            all_on = Some(m);
        }
    }
    let all_on = all_on.unwrap();
    (r0, all_on)
}

fn presets() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("arm7_a32", MachineConfig::arm7_like(IsaMode::A32)),
        ("arm7_t16", MachineConfig::arm7_like(IsaMode::T16)),
        ("m3_t2", MachineConfig::m3_like()),
        ("high_end_t2", MachineConfig::high_end_like()),
    ]
}

fn machine_with(config: &MachineConfig, src: &str) -> Machine {
    let out = Assembler::new(config.mode).assemble(src).expect("program assembles");
    let mut m = Machine::new(config.clone());
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m
}

// ---------------------------------------------------------------------
// Fusion-pattern programs
// ---------------------------------------------------------------------

/// `add`+`cmp` fusion (the loop-counter idiom) with a terminal `bne`.
const ALU_CMP_SRC: &str = "mov r0, #0
     mov r2, #200
     loop: add r0, r0, #1
     cmp r0, r2
     bne loop
     bkpt #0";

/// `cmp`+branch fusion: a `mov` spacer keeps the compare off the even
/// pair boundary the greedy fuser would otherwise give to `add`+`cmp`.
const CMP_B_SRC: &str = "mov r0, #0
     mov r2, #200
     loop: add r0, r0, #1
     mov r7, r7
     cmp r0, r2
     bne loop
     bkpt #0";

/// ALU+branch fusion: the loop body ends `add` + unconditional `b`
/// backedge, with the exit test fused `cmp`+`beq` at the head.
const ALU_B_SRC: &str = "mov r0, #0
     mov r2, #200
     head: cmp r0, r2
     beq done
     add r0, r0, #1
     b head
     done: bkpt #0";

/// `ldr`+ALU fusion (load-accumulate). Needs `movw`/`movt`, so it only
/// runs on the T2 presets.
fn ldr_alu_src() -> String {
    let template = |addr: u32| {
        format!(
            "movw r1, #{}
             movt r1, #{}
             mov r0, #0
             mov r6, #0
             loop: ldr r3, [r1, #0]
             add r6, r6, r3
             add r0, r0, #1
             cmp r0, #150
             bne loop
             bkpt #0
             .align 4
             lit: .word 7",
            addr & 0xFFFF,
            addr >> 16
        )
    };
    let probe = Assembler::new(IsaMode::T2).assemble(&template(0)).unwrap();
    let lit = 0x100 + probe.symbols["lit"];
    let out = template(lit);
    let check = Assembler::new(IsaMode::T2).assemble(&out).unwrap();
    assert_eq!(check.symbols, probe.symbols, "layout must be immediate-independent");
    out
}

#[test]
fn matrix_fusion_loops_identical_across_presets() {
    for (name, config) in presets() {
        for (pat, src) in
            [("alu_cmp", ALU_CMP_SRC), ("cmp_b", CMP_B_SRC), ("alu_b", ALU_B_SRC)]
        {
            let what = format!("{pat} on {name}");
            let (r, all_on) = run_matrix(&|| machine_with(&config, src), 1_000_000, &what);
            assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
            let stats = all_on.predecode_stats();
            assert!(stats.blocks_promoted > 0, "{what}: hot loop never promoted");
            assert!(stats.threaded_dispatches > 0, "{what}: threaded engine never ran");
            assert!(stats.fused_pairs > 0, "{what}: no pair fused");
        }
    }
}

#[test]
fn matrix_ldr_alu_fusion_identical() {
    let src = ldr_alu_src();
    for (name, config) in presets() {
        if config.mode != IsaMode::T2 {
            continue; // movw/movt address materialization is T2-only
        }
        let what = format!("ldr_alu on {name}");
        let (r, all_on) = run_matrix(&|| machine_with(&config, &src), 1_000_000, &what);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
        let stats = all_on.predecode_stats();
        assert!(stats.threaded_dispatches > 0, "{what}: threaded engine never ran");
        assert!(stats.fused_pairs > 0, "{what}: no pair fused");
        assert_eq!(all_on.cpu.regs[6], 150 * 7, "{what}: load-accumulate checksum");
    }
}

#[test]
fn matrix_generic_fallback_instructions_identical() {
    // Instructions the specializer leaves on the generic handler —
    // multiplies, bitfields, shifts, IT blocks — mixed into a hot loop:
    // the threaded block carries them via `h_generic` and must stay
    // bit-identical.
    let src = "mov r0, #0
         mov r2, #120
         mov r4, #3
         loop: add r0, r0, #1
         mul r5, r0, r4
         ubfx r6, r5, #1, #7
         lsl r7, r6, #2
         it eq
         add r8, r8, #1
         cmp r0, r2
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();
    let (r, all_on) = run_matrix(&|| machine_with(&config, src), 1_000_000, "generic mix");
    assert_eq!(r.reason, StopReason::Bkpt(0));
    assert!(all_on.predecode_stats().threaded_dispatches > 0);
}

// ---------------------------------------------------------------------
// IRQ storms landing between fused-pair halves
// ---------------------------------------------------------------------

/// Schedules a dense sweep of precise-cycle interrupts across a
/// fusion-pattern loop and asserts the pend/entry stamps are identical
/// with the threaded tier on and off. The prime strides walk the pend
/// cycle through every phase of the loop period, so interrupts land
/// between the two halves of every fused pair.
fn irq_sweep(src: &str, what: &str) {
    for stride in [7u64, 11, 37] {
        let build = || {
            let main = Assembler::new(IsaMode::T2).assemble(src).unwrap();
            let handler =
                Assembler::new(IsaMode::T2).assemble("add r5, r5, #1\n bx lr").unwrap();
            let mut m = Machine::new(MachineConfig::m3_like());
            m.load_flash(0x100, &main.bytes);
            m.load_flash(0x300, &handler.bytes);
            m.load_flash(0, &0x300u32.to_le_bytes());
            m.set_pc(0x100);
            m.cpu.set_sp(SRAM_BASE + 0x8000);
            for k in 0..64u64 {
                m.schedule_irq(150 + stride * k, 0);
            }
            m
        };
        let what = format!("{what} stride {stride}");
        let (r, all_on) = run_matrix(&build, 10_000_000, &what);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
        let stats = all_on.predecode_stats();
        assert!(stats.threaded_dispatches > 0, "{what}: threaded engine never ran");
        // Same-line pends coalesce while the handler runs, so fewer
        // observations than schedules is expected — but the sweep must
        // have really stormed the loop.
        assert!(all_on.latencies().len() >= 16, "{what}: too few interrupts observed");
    }
}

#[test]
fn fused_alu_cmp_irq_storm_identical() {
    irq_sweep(ALU_CMP_SRC, "irq alu_cmp");
}

#[test]
fn fused_cmp_b_irq_storm_identical() {
    irq_sweep(CMP_B_SRC, "irq cmp_b");
}

#[test]
fn fused_alu_b_irq_storm_identical() {
    irq_sweep(ALU_B_SRC, "irq alu_b");
}

#[test]
fn fused_ldr_alu_irq_storm_identical() {
    irq_sweep(&ldr_alu_src(), "irq ldr_alu");
}

// ---------------------------------------------------------------------
// Self-modifying code inside a fused pair of a promoted block
// ---------------------------------------------------------------------

#[test]
fn smc_inside_fused_pair_of_promoted_block_identical() {
    // Two-phase SRAM program. Phase 1 (the first 12 passes) stores to a
    // scratch word, so the loop block stays valid, accumulates heat and
    // is promoted to threaded code. At pass 12 the store target flips
    // to the `patched` instruction — the *first half of the fused
    // `add`+`cmp` pair* later in the same block. The armed store runs
    // inside the threaded block, moves the code-write generation, and
    // the engine must split before the now-stale fused pair executes;
    // the stored halfword alternates between `add r6, r6, #1` and
    // `add r6, r6, #5`, so a single stale execution shows in r6.
    let code_base = SRAM_BASE + 0x400;
    let scratch = SRAM_BASE + 0x100;
    let mode = IsaMode::T2;
    let enc = |src: &str| {
        let out = Assembler::new(mode).assemble(&format!("{src}\n nop")).unwrap();
        u32::from(u16::from_le_bytes([out.bytes[0], out.bytes[1]]))
    };
    let h0 = enc("add r6, r6, #1"); // the assembled original
    let h1 = enc("add r6, r6, #5");
    let passes = 28u32;
    let arm_at = 12u32;
    let template = |patched: u32| {
        format!(
            "movw r1, #{scratch_lo}
             movt r1, #{scratch_hi}
             movw r10, #{patched_lo}
             movt r10, #{patched_hi}
             movw r2, #{h1}
             movw r4, #{mask}
             mov r0, #0
             mov r6, #0
             b mloop
             arm: mov r1, r10
             b mloop
             mloop: strh r2, [r1, #0]
             eor r2, r2, r4
             add r0, r0, #1
             patched: add r6, r6, #1
             cmp r0, #{passes}
             beq done
             cmp r0, #{arm_at}
             beq arm
             b mloop
             done: bkpt #0",
            scratch_lo = scratch & 0xFFFF,
            scratch_hi = scratch >> 16,
            patched_lo = patched & 0xFFFF,
            patched_hi = patched >> 16,
            mask = h0 ^ h1,
        )
    };
    let probe = Assembler::new(mode).assemble(&template(0)).unwrap();
    let patched = code_base + probe.symbols["patched"];
    let out = Assembler::new(mode).assemble(&template(patched)).unwrap();
    assert_eq!(out.symbols, probe.symbols, "layout must be immediate-independent");
    let build = || {
        let mut m = Machine::new(MachineConfig::m3_like());
        m.load_sram(code_base, &out.bytes);
        m.set_pc(code_base);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        m
    };
    let (r, all_on) = run_matrix(&build, 1_000_000, "smc_fused");
    assert_eq!(r.reason, StopReason::Bkpt(0));
    let stats = all_on.predecode_stats();
    assert!(stats.blocks_promoted > 0, "loop block never promoted");
    assert!(stats.threaded_dispatches > 0, "threaded engine never ran");
    assert!(stats.demotions > 0, "the armed store must demote the promoted block");
    // Phase 1 runs the original +1; phase 2 alternates the two
    // encodings — at least one +5 must have executed.
    assert!(
        all_on.cpu.regs[6] > passes,
        "no rewritten encoding ever executed (r6 = {})",
        all_on.cpu.regs[6]
    );
}

// ---------------------------------------------------------------------
// run_until splits and flash-patch toggles mid-threaded-block
// ---------------------------------------------------------------------

#[test]
fn run_until_splits_and_patch_toggles_mid_threaded_block_identical() {
    // Bounded runs park execution mid-block (including mid-fused-pair
    // budget splits); between bounds the host toggles a flash-patch
    // remap over the loop's literal, which moves the generation stamp
    // and demotes the promoted block. Resuming must refetch under the
    // new generation with cycles identical to the all-off interpreter.
    let template = |addr: u32| {
        format!(
            "movw r2, #{}
             movt r2, #{}
             mov r0, #0
             mov r6, #0
             loop: ldr r1, [r2, #0]
             add r6, r6, r1
             add r0, r0, #1
             cmp r0, #200
             bne loop
             bkpt #0
             .align 4
             lit: .word 0x00000001",
            addr & 0xFFFF,
            addr >> 16
        )
    };
    let config = MachineConfig::m3_like();
    let probe = Assembler::new(config.mode).assemble(&template(0)).unwrap();
    let lit_addr = 0x100 + probe.symbols["lit"];
    let out = Assembler::new(config.mode).assemble(&template(lit_addr)).unwrap();
    let build = |mask: u32| {
        let mut m = Machine::new(config.clone());
        m.load_flash(0x100, &out.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8000);
        set_tiers(&mut m, mask);
        m
    };
    let mut base = build(0);
    let mut machines: Vec<Machine> = (1..8).map(build).collect();
    let bounds: Vec<u64> = (1..40).map(|i| 83 * i + (i % 7)).collect();
    for (i, bound) in bounds.iter().enumerate() {
        let want = base.run_until(*bound);
        for (j, m) in machines.iter_mut().enumerate() {
            let got = m.run_until(*bound);
            let tag = format!("bound[{i}]={bound} combo {:03b}", j + 1);
            assert_eq!(got, want, "{tag}: RunResult diverged");
            assert_state_eq(m, &base, &tag);
        }
        if want.reason != StopReason::CycleLimit {
            break;
        }
        // Toggle only every 8th bound: each toggle moves the stamp and
        // demotes, so the loop block needs quiet stretches to re-heat
        // and re-promote between them.
        if i % 8 == 7 {
            let toggle = |m: &mut Machine| {
                if i % 16 == 7 {
                    m.patch.set(0, lit_addr, PatchKind::Remap(0x40)).unwrap();
                } else {
                    m.patch.clear(0).unwrap();
                }
            };
            toggle(&mut base);
            machines.iter_mut().for_each(toggle);
        }
    }
    let want = base.run(1_000_000);
    assert_eq!(want.reason, StopReason::Bkpt(0));
    for (j, m) in machines.iter_mut().enumerate() {
        let got = m.run(1_000_000);
        assert_eq!(got, want, "final run combo {:03b}", j + 1);
        assert_state_eq(m, &base, "final");
    }
    let stats = machines[6].predecode_stats(); // combo 111
    assert!(stats.threaded_dispatches > 0, "threaded engine never ran");
    assert!(stats.demotions > 0, "patch toggles must demote promoted blocks");
}

#[test]
fn toggling_threaded_mid_run_matches_disabled() {
    // Flipping the tier on/off between bounded runs (heat re-warms
    // after every disable, promoted blocks demote on every disable)
    // must stay identical to a reference with the tier off for good.
    // `step()` never enters the block engine, so the toggling is
    // driven through `run_until` bounds instead.
    let src = "mov r0, #0
         mov r2, #2000
         loop: add r0, r0, #1
         cmp r0, r2
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();
    let mut toggler = machine_with(&config, src);
    let mut reference = machine_with(&config, src);
    reference.set_threaded_enabled(false);
    let mut stop = None;
    for chunk in 0..10_000u64 {
        toggler.set_threaded_enabled(chunk % 3 != 2);
        let bound = 211 * (chunk + 1);
        let a = toggler.run_until(bound);
        let b = reference.run_until(bound);
        assert_eq!(a, b, "diverged at chunk {chunk}");
        assert_state_eq(&toggler, &reference, &format!("chunk {chunk}"));
        if a.reason != StopReason::CycleLimit {
            stop = Some(a.reason);
            break;
        }
    }
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
    let stats = toggler.predecode_stats();
    assert!(stats.threaded_dispatches > 0, "on-chunks must dispatch threaded blocks");
    assert!(stats.demotions > 0, "every disable must demote the hot block");
}

// ---------------------------------------------------------------------
// Device-revision stamps vs block chaining (satellite regression)
// ---------------------------------------------------------------------

/// A device whose revision counter moves on every register write — the
/// stand-in for any device state that can change what instruction
/// fetches observe.
#[derive(Debug, Clone, Default)]
struct RevDevice {
    rev: u64,
    last: u32,
    writes: u64,
}

const REV_DEVICE_BASE: u32 = MMIO_BASE + 0x8000;

impl Device for RevDevice {
    fn name(&self) -> &'static str {
        "revdev"
    }
    fn read32(&mut self, _off: u32, _ctx: &mut DeviceCtx<'_>) -> u32 {
        self.last
    }
    fn write32(&mut self, _off: u32, value: u32, _ctx: &mut DeviceCtx<'_>) {
        self.last = value;
        self.writes += 1;
        self.rev = self.rev.wrapping_add(1);
    }
    fn revision(&self) -> u64 {
        self.rev
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn rev_device_machine(src: &str) -> Machine {
    let out = Assembler::new(IsaMode::T2).assemble(src).unwrap();
    let mut m = Machine::new(MachineConfig::m3_like());
    m.bus.attach(REV_DEVICE_BASE, 0x100, Box::new(RevDevice::default()));
    m.bus.refresh_next_event();
    m.load_flash(0x100, &out.bytes);
    m.set_pc(0x100);
    m.cpu.set_sp(SRAM_BASE + 0x8000);
    m
}

#[test]
fn device_revision_bump_between_record_and_chained_dispatch_identical() {
    // The guest bumps a device revision on every loop pass: each
    // chained successor dispatch happens under a stamp older than the
    // one its block was recorded with, so the chain hint must be
    // re-validated (split + re-record), never followed into a stale
    // block. All tier combinations must agree bit-for-bit, including
    // the device's own observed write stream.
    let src = format!(
        "movw r1, #{lo}
         movt r1, #{hi}
         mov r0, #0
         loop: str r0, [r1, #0]
         add r0, r0, #1
         ldr r3, [r1, #0]
         add r6, r6, r3
         cmp r0, #40
         bne loop
         bkpt #0",
        lo = REV_DEVICE_BASE & 0xFFFF,
        hi = REV_DEVICE_BASE >> 16,
    );
    let (r, all_on) = run_matrix(&|| rev_device_machine(&src), 1_000_000, "revdev");
    assert_eq!(r.reason, StopReason::Bkpt(0));
    let dev = all_on.bus.device::<RevDevice>().expect("device attached");
    assert_eq!(dev.writes, 40, "every pass must reach the device");
    assert_eq!(all_on.cpu.regs[6], (0..40).sum::<u32>(), "read-back checksum");
    // The revision moves mid-block, so blocks re-record every pass and
    // heat never reaches the promotion threshold — the differential
    // would be vacuous if the engine *did* promote here.
    let stats = all_on.predecode_stats();
    assert!(stats.blocks_built > 2, "revision churn must force re-records");
    assert_eq!(
        stats.threaded_dispatches, 0,
        "a block whose stamp moves every pass must never get hot"
    );
}

#[test]
fn host_side_revision_bump_demotes_promoted_block_identical() {
    // Host-side variant: the loop touches no device, promotes, and
    // *then* the host moves the device revision between steps — exactly
    // the window between a block's recording and its next chained
    // dispatch. The promoted block must be invalidated, not chained.
    let src = "mov r0, #0
         mov r2, #400
         loop: add r0, r0, #1
         cmp r0, r2
         bne loop
         bkpt #0";
    let build = || rev_device_machine(src);
    let mut on = build();
    let mut off = build();
    off.set_threaded_enabled(false);
    off.set_block_cache_enabled(false);
    let bump = |m: &mut Machine| {
        let d = m.bus.device_mut::<RevDevice>().expect("device attached");
        d.rev = d.rev.wrapping_add(1);
        m.bus.refresh_next_event();
    };
    let mut stop = None;
    for chunk in 0..10_000u64 {
        // Long quiet stretches let the loop promote; each bump then
        // lands between a recording and its next chained dispatch.
        let bound = 449 * (chunk + 1);
        let a = on.run_until(bound);
        let b = off.run_until(bound);
        assert_eq!(a, b, "diverged at chunk {chunk}");
        assert_state_eq(&on, &off, &format!("chunk {chunk}"));
        if a.reason != StopReason::CycleLimit {
            stop = Some(a.reason);
            break;
        }
        bump(&mut on);
        bump(&mut off);
    }
    assert_eq!(stop, Some(StopReason::Bkpt(0)));
    let stats = on.predecode_stats();
    assert!(stats.blocks_promoted > 0, "loop must promote before the first bump");
    assert!(stats.threaded_dispatches > 0, "threaded engine never ran");
}

// ---------------------------------------------------------------------
// Randomized corpus across the full matrix
// ---------------------------------------------------------------------

#[test]
fn matrix_randomized_programs_identical() {
    // The deterministic xorshift ALU corpus from the earlier
    // differential suites, replayed across all 8 tier combinations.
    let mut state = 0x0DDB_A11C_0FFE_E000u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let ops = ["add", "sub", "and", "orr", "eor"];
    let config = MachineConfig::m3_like();
    for trial in 0..4 {
        let mut src = String::from(
            "mov r0, #1\nmov r1, #2\nmov r2, #3\nmov r3, #4\nmov r7, #12\nloop:\n",
        );
        for _ in 0..60 {
            let op = ops[(next() % ops.len() as u64) as usize];
            let rd = next() % 7;
            let rn = next() % 7;
            if next() % 2 == 0 {
                let imm = next() % 256;
                let imm_op = if next() % 2 == 0 { "add" } else { "sub" };
                src.push_str(&format!("{imm_op} r{rd}, r{rd}, #{imm}\n"));
                let _ = (op, rn);
            } else {
                src.push_str(&format!("{op} r{rd}, r{rd}, r{rn}\n"));
            }
        }
        src.push_str("sub r7, r7, #1\ncmp r7, #0\nbne loop\nbkpt #0");
        let what = format!("matrix random[{trial}]");
        let (r, all_on) = run_matrix(&|| machine_with(&config, &src), 2_000_000, &what);
        assert_eq!(r.reason, StopReason::Bkpt(0), "{what}");
        assert!(
            all_on.predecode_stats().threaded_dispatches > 0,
            "{what}: 12 passes must promote the body"
        );
    }
}

// ---------------------------------------------------------------------
// Stats and lifecycle
// ---------------------------------------------------------------------

#[test]
fn threaded_stats_report_promotion_and_demotion() {
    let src = "mov r0, #0
         mov r2, #300
         loop: add r0, r0, #1
         cmp r0, r2
         bne loop
         bkpt #0";
    let config = MachineConfig::m3_like();
    let mut m = machine_with(&config, src);
    assert!(m.threaded_enabled(), "presets enable the tier by default");
    let r = m.run(1_000_000);
    assert_eq!(r.reason, StopReason::Bkpt(0));
    let stats = m.predecode_stats();
    assert!(stats.blocks_promoted >= 1, "hot loop must promote");
    assert!(stats.fused_pairs >= 1, "add+cmp must fuse at promotion");
    assert!(
        stats.threaded_dispatches > stats.blocks_promoted,
        "promoted blocks must dispatch threaded more than once"
    );
    assert_eq!(stats.demotions, 0, "nothing invalidated this run");

    // Disabling the tier demotes every promoted block.
    m.set_threaded_enabled(false);
    let stats = m.predecode_stats();
    assert!(stats.demotions >= 1, "disable must demote promoted blocks");

    // With the tier off, a fresh run dispatches zero threaded blocks.
    let mut m2 = machine_with(&config, src);
    m2.set_threaded_enabled(false);
    let r2 = m2.run(1_000_000);
    assert_eq!(r2, r, "tier off changed the run result");
    let s2 = m2.predecode_stats();
    assert_eq!(s2.threaded_dispatches, 0, "disabled tier must not dispatch");
    assert_eq!(s2.blocks_promoted, 0, "disabled tier must not promote");
}
