//! A fluent builder for TIR functions.

use crate::{
    AccessSize, BinOp, Block, BlockId, CmpKind, FuncId, Function, Inst, Operand, Terminator,
    UnOp, VReg,
};

/// Incrementally constructs a [`Function`].
///
/// Blocks are created with [`FunctionBuilder::new_block`] and selected with
/// [`FunctionBuilder::switch_to`]; instructions append to the current
/// block. Every block must be finished with exactly one terminator before
/// [`FunctionBuilder::build`].
///
/// # Examples
///
/// Build `fn triple(x) { return x * 3 }`:
///
/// ```
/// use alia_tir::{FunctionBuilder, BinOp};
/// let mut b = FunctionBuilder::new("triple", 1);
/// let x = b.param(0);
/// let r = b.bin(BinOp::Mul, x, 3u32);
/// b.ret(Some(r.into()));
/// let f = b.build();
/// assert_eq!(f.name, "triple");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<VReg>,
    next_vreg: u32,
    blocks: Vec<PendingBlock>,
    current: usize,
}

#[derive(Debug)]
struct PendingBlock {
    id: BlockId,
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl FunctionBuilder {
    /// Starts a function with `param_count` parameters (at most 4) and an
    /// entry block already selected.
    ///
    /// # Panics
    ///
    /// Panics if `param_count > 4` (the ALIA call convention passes
    /// arguments in `r0..r3`).
    #[must_use]
    pub fn new(name: impl Into<String>, param_count: usize) -> FunctionBuilder {
        assert!(param_count <= 4, "at most 4 parameters supported");
        let params: Vec<VReg> = (0..param_count as u32).map(VReg).collect();
        FunctionBuilder {
            name: name.into(),
            params,
            next_vreg: param_count as u32,
            blocks: vec![PendingBlock { id: BlockId(0), insts: Vec::new(), term: None }],
            current: 0,
        }
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn param(&self, i: usize) -> VReg {
        self.params[i]
    }

    /// Allocates a fresh virtual register.
    pub fn vreg(&mut self) -> VReg {
        let v = VReg(self.next_vreg);
        self.next_vreg += 1;
        v
    }

    /// Creates a new (unselected) block and returns its label.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock { id, insts: Vec::new(), term: None });
        id
    }

    /// Makes `block` the insertion point.
    ///
    /// # Panics
    ///
    /// Panics if the block is unknown or already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        let idx = block.0 as usize;
        assert!(idx < self.blocks.len(), "unknown block {block}");
        assert!(self.blocks[idx].term.is_none(), "{block} already terminated");
        self.current = idx;
    }

    /// The currently selected block.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.blocks[self.current].id
    }

    fn push(&mut self, inst: Inst) {
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "block {} already terminated", b.id);
        b.insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        let b = &mut self.blocks[self.current];
        assert!(b.term.is_none(), "block {} already terminated", b.id);
        b.term = Some(term);
    }

    /// `dst = value` into a fresh register.
    pub fn imm(&mut self, value: u32) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// Copies `src` into a fresh register.
    pub fn copy(&mut self, src: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Copy { dst, src: src.into() });
        dst
    }

    /// Reassigns an existing register: `dst = src`.
    pub fn assign(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.push(Inst::Copy { dst, src: src.into() });
    }

    /// `fresh = a <op> b`.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Bin { op, dst, a: a.into(), b: b.into() });
        dst
    }

    /// `dst = a <op> b` into an existing register.
    pub fn bin_into(
        &mut self,
        dst: VReg,
        op: BinOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.push(Inst::Bin { op, dst, a: a.into(), b: b.into() });
    }

    /// `fresh = <op> a`.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Un { op, dst, a: a.into() });
        dst
    }

    /// Bit-field extract into a fresh register.
    pub fn extract_bits(
        &mut self,
        src: impl Into<Operand>,
        lsb: u8,
        width: u8,
        signed: bool,
    ) -> VReg {
        let dst = self.vreg();
        self.push(Inst::ExtractBits { dst, src: src.into(), lsb, width, signed });
        dst
    }

    /// Bit-field insert (read-modify-write of `dst`).
    pub fn insert_bits(&mut self, dst: VReg, src: impl Into<Operand>, lsb: u8, width: u8) {
        self.push(Inst::InsertBits { dst, src: src.into(), lsb, width });
    }

    /// `fresh = cmp(a,b) ? t : f`.
    pub fn select(
        &mut self,
        kind: CmpKind,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        t: impl Into<Operand>,
        f: impl Into<Operand>,
    ) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Select {
            dst,
            kind,
            a: a.into(),
            b: b.into(),
            t: t.into(),
            f: f.into(),
        });
        dst
    }

    /// Word load into a fresh register.
    pub fn load(&mut self, base: VReg, offset: impl Into<Operand>) -> VReg {
        self.load_sized(AccessSize::Word, false, base, offset)
    }

    /// Sized load into a fresh register.
    pub fn load_sized(
        &mut self,
        size: AccessSize,
        signed: bool,
        base: VReg,
        offset: impl Into<Operand>,
    ) -> VReg {
        let dst = self.vreg();
        self.push(Inst::Load { dst, size, signed, base, offset: offset.into() });
        dst
    }

    /// Word store.
    pub fn store(&mut self, base: VReg, offset: impl Into<Operand>, src: impl Into<Operand>) {
        self.store_sized(AccessSize::Word, base, offset, src);
    }

    /// Sized store.
    pub fn store_sized(
        &mut self,
        size: AccessSize,
        base: VReg,
        offset: impl Into<Operand>,
        src: impl Into<Operand>,
    ) {
        self.push(Inst::Store { src: src.into(), size, base, offset: offset.into() });
    }

    /// Calls `func`, returning the result register (always allocated).
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> VReg {
        assert!(args.len() <= 4, "at most 4 call arguments supported");
        let dst = self.vreg();
        self.push(Inst::Call { dst: Some(dst), func, args: args.to_vec() });
        dst
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br { target });
    }

    /// Conditional branch terminator.
    pub fn cond_br(
        &mut self,
        kind: CmpKind,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        then_bb: BlockId,
        else_bb: BlockId,
    ) {
        self.terminate(Terminator::CondBr {
            kind,
            a: a.into(),
            b: b.into(),
            then_bb,
            else_bb,
        });
    }

    /// Switch terminator over `value - base` into `targets`.
    pub fn switch(&mut self, value: VReg, base: u32, targets: Vec<BlockId>, default: BlockId) {
        self.terminate(Terminator::Switch { value, base, targets, default });
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret { value });
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    #[must_use]
    pub fn build(self) -> Function {
        let blocks = self
            .blocks
            .into_iter()
            .map(|b| Block {
                id: b.id,
                insts: b.insts,
                term: b.term.unwrap_or_else(|| panic!("block {} has no terminator", b.id)),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            vreg_count: self.next_vreg,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_structure() {
        // fn sum(n) { s = 0; for i in 0..n { s += i }; return s }
        let mut b = FunctionBuilder::new("sum", 1);
        let n = b.param(0);
        let s = b.imm(0);
        let i = b.imm(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.cond_br(CmpKind::Ult, i, n, body, exit);
        b.switch_to(body);
        b.bin_into(s, BinOp::Add, s, i);
        b.bin_into(i, BinOp::Add, i, 1u32);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s.into()));
        let f = b.build();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.vreg_count, 3);
        assert!(matches!(f.blocks[1].term, Terminator::CondBr { .. }));
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let b = FunctionBuilder::new("broken", 0);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("double", 0);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "at most 4 parameters")]
    fn too_many_params_panics() {
        let _ = FunctionBuilder::new("many", 5);
    }
}
