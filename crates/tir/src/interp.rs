//! The golden-model interpreter.
//!
//! Executes TIR directly over a byte-addressed memory. The compiler and
//! the cycle-approximate simulator are both validated against this
//! interpreter: for every workload,
//! `interp(tir) == simulate(compile(tir))` must hold bit-for-bit.

use std::fmt;

use crate::{AccessSize, Function, FuncId, Inst, Module, Operand, Terminator, VReg};

/// Byte-addressed memory as seen by the interpreter.
pub trait TirMemory {
    /// Loads `size` bytes (little-endian, zero-extended) from `addr`.
    fn load(&mut self, addr: u32, size: AccessSize) -> u32;
    /// Stores the low `size` bytes of `value` to `addr`.
    fn store(&mut self, addr: u32, size: AccessSize, value: u32);
}

/// A flat RAM block starting at `base`.
///
/// # Examples
///
/// ```
/// use alia_tir::{FlatMemory, TirMemory, AccessSize};
/// let mut m = FlatMemory::new(0x2000_0000, 64);
/// m.store(0x2000_0004, AccessSize::Word, 0xAABBCCDD);
/// assert_eq!(m.load(0x2000_0004, AccessSize::Half), 0xCCDD);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatMemory {
    base: u32,
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// Allocates `len` zeroed bytes at `base`.
    #[must_use]
    pub fn new(base: u32, len: usize) -> FlatMemory {
        FlatMemory { base, bytes: vec![0; len] }
    }

    /// The base address.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Raw bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    fn index(&self, addr: u32, size: AccessSize) -> usize {
        let off = addr.wrapping_sub(self.base) as usize;
        assert!(
            off + size.bytes() as usize <= self.bytes.len(),
            "interpreter memory access out of range: {addr:#x} (base {:#x}, len {})",
            self.base,
            self.bytes.len()
        );
        off
    }
}

impl TirMemory for FlatMemory {
    fn load(&mut self, addr: u32, size: AccessSize) -> u32 {
        let i = self.index(addr, size);
        match size {
            AccessSize::Byte => u32::from(self.bytes[i]),
            AccessSize::Half => u32::from(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]])),
            AccessSize::Word => u32::from_le_bytes([
                self.bytes[i],
                self.bytes[i + 1],
                self.bytes[i + 2],
                self.bytes[i + 3],
            ]),
        }
    }

    fn store(&mut self, addr: u32, size: AccessSize, value: u32) {
        let i = self.index(addr, size);
        match size {
            AccessSize::Byte => self.bytes[i] = value as u8,
            AccessSize::Half => self.bytes[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            AccessSize::Word => self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
    }
}

/// An error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step budget ran out (probable infinite loop).
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
    /// A switch value fell outside `targets` and no default was sensible.
    BadSwitch {
        /// The observed value.
        value: u32,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::StepLimit { limit } => {
                write!(f, "step limit {limit} exhausted (infinite loop?)")
            }
            InterpError::BadSwitch { value } => write!(f, "switch value {value} out of range"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Interprets TIR functions against a [`TirMemory`].
#[derive(Debug)]
pub struct Interpreter<'m, M> {
    module: &'m Module,
    memory: M,
    step_limit: u64,
    steps: u64,
}

impl<'m, M: TirMemory> Interpreter<'m, M> {
    /// Creates an interpreter with a default budget of 100 million steps.
    pub fn new(module: &'m Module, memory: M) -> Interpreter<'m, M> {
        Interpreter { module, memory, step_limit: 100_000_000, steps: 0 }
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn with_step_limit(mut self, limit: u64) -> Interpreter<'m, M> {
        self.step_limit = limit;
        self
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Releases the memory.
    #[must_use]
    pub fn into_memory(self) -> M {
        self.memory
    }

    /// A view of the memory.
    pub fn memory(&mut self) -> &mut M {
        &mut self.memory
    }

    /// Runs `func` with `args`, returning its result (0 when the function
    /// returns nothing).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] if the step budget is exhausted or a switch
    /// misbehaves.
    pub fn run(&mut self, func: FuncId, args: &[u32]) -> Result<u32, InterpError> {
        let f = self.module.func(func);
        self.call(f, args)
    }

    fn call(&mut self, f: &Function, args: &[u32]) -> Result<u32, InterpError> {
        let mut regs = vec![0u32; f.vreg_count as usize];
        for (p, a) in f.params.iter().zip(args) {
            regs[p.0 as usize] = *a;
        }
        let mut block = &f.blocks[0];
        loop {
            for inst in &block.insts {
                self.steps += 1;
                if self.steps > self.step_limit {
                    return Err(InterpError::StepLimit { limit: self.step_limit });
                }
                self.exec(inst, &mut regs)?;
            }
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(InterpError::StepLimit { limit: self.step_limit });
            }
            match &block.term {
                Terminator::Br { target } => block = f.block(*target),
                Terminator::CondBr { kind, a, b, then_bb, else_bb } => {
                    let av = read(&regs, *a);
                    let bv = read(&regs, *b);
                    block = f.block(if kind.eval(av, bv) { *then_bb } else { *else_bb });
                }
                Terminator::Switch { value, base, targets, default } => {
                    let v = regs[value.0 as usize].wrapping_sub(*base);
                    let id = targets.get(v as usize).copied().unwrap_or(*default);
                    block = f.block(id);
                }
                Terminator::Ret { value } => {
                    return Ok(value.map_or(0, |v| read(&regs, v)));
                }
            }
        }
    }

    fn exec(&mut self, inst: &Inst, regs: &mut [u32]) -> Result<(), InterpError> {
        match inst {
            Inst::Const { dst, value } => regs[dst.0 as usize] = *value,
            Inst::Copy { dst, src } => regs[dst.0 as usize] = read(regs, *src),
            Inst::Bin { op, dst, a, b } => {
                regs[dst.0 as usize] = op.eval(read(regs, *a), read(regs, *b));
            }
            Inst::Un { op, dst, a } => regs[dst.0 as usize] = op.eval(read(regs, *a)),
            Inst::ExtractBits { dst, src, lsb, width, signed } => {
                let v = read(regs, *src) >> lsb;
                let mask = mask_of(*width);
                let mut r = v & mask;
                if *signed && *width < 32 && r >> (width - 1) & 1 != 0 {
                    r |= !mask;
                }
                regs[dst.0 as usize] = r;
            }
            Inst::InsertBits { dst, src, lsb, width } => {
                let mask = mask_of(*width) << lsb;
                let cur = regs[dst.0 as usize];
                let v = read(regs, *src) << lsb & mask;
                regs[dst.0 as usize] = cur & !mask | v;
            }
            Inst::Select { dst, kind, a, b, t, f } => {
                let cond = kind.eval(read(regs, *a), read(regs, *b));
                regs[dst.0 as usize] = if cond { read(regs, *t) } else { read(regs, *f) };
            }
            Inst::Load { dst, size, signed, base, offset } => {
                let addr = regs[base.0 as usize].wrapping_add(read(regs, *offset));
                let mut v = self.memory.load(addr, *size);
                if *signed {
                    v = match size {
                        AccessSize::Byte => v as u8 as i8 as i32 as u32,
                        AccessSize::Half => v as u16 as i16 as i32 as u32,
                        AccessSize::Word => v,
                    };
                }
                regs[dst.0 as usize] = v;
            }
            Inst::Store { src, size, base, offset } => {
                let addr = regs[base.0 as usize].wrapping_add(read(regs, *offset));
                self.memory.store(addr, *size, read(regs, *src));
            }
            Inst::Call { dst, func, args } => {
                let vals: Vec<u32> = args.iter().map(|a| read(regs, *a)).collect();
                let callee = self.module.func(*func);
                let r = self.call(callee, &vals)?;
                if let Some(d) = dst {
                    regs[d.0 as usize] = r;
                }
            }
        }
        Ok(())
    }
}

fn read(regs: &[u32], op: Operand) -> u32 {
    match op {
        Operand::Reg(VReg(i)) => regs[i as usize],
        Operand::Imm(v) => v,
    }
}

fn mask_of(width: u8) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, CmpKind, FunctionBuilder, UnOp};

    fn run1(f: crate::Function, args: &[u32]) -> u32 {
        let mut m = Module::new();
        let id = m.add_function(f);
        let mem = FlatMemory::new(0, 1024);
        Interpreter::new(&m, mem).run(id, args).unwrap()
    }

    #[test]
    fn loop_sum() {
        let mut b = FunctionBuilder::new("sum", 1);
        let n = b.param(0);
        let s = b.imm(0);
        let i = b.imm(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.cond_br(CmpKind::Ult, i, n, body, exit);
        b.switch_to(body);
        b.bin_into(s, BinOp::Add, s, i);
        b.bin_into(i, BinOp::Add, i, 1u32);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s.into()));
        assert_eq!(run1(b.build(), &[10]), 45);
    }

    #[test]
    fn select_and_bitfields() {
        let mut b = FunctionBuilder::new("bits", 1);
        let x = b.param(0);
        let field = b.extract_bits(x, 4, 8, false);
        let clamped = b.select(CmpKind::Ugt, field, 100u32, 100u32, field);
        let mut out = b.imm(0);
        b.insert_bits(out, clamped, 8, 8);
        out = b.un(UnOp::ByteRev, out);
        b.ret(Some(out.into()));
        // x = 0xFFF0 -> field = 0xFF -> clamped = 100 = 0x64 -> out = 0x6400
        // -> byte-reversed = 0x00640000
        assert_eq!(run1(b.build(), &[0xFFF0]), 0x0064_0000);
    }

    #[test]
    fn memory_round_trip_via_loads_stores() {
        let mut b = FunctionBuilder::new("memcpy4", 2);
        let dst = b.param(0);
        let src = b.param(1);
        let v = b.load(src, 0u32);
        b.store(dst, 0u32, v);
        let v2 = b.load_sized(AccessSize::Half, true, src, 4u32);
        b.store_sized(AccessSize::Word, dst, 4u32, v2);
        b.ret(None);
        let mut m = Module::new();
        let id = m.add_function(b.build());
        let mut mem = FlatMemory::new(0x1000, 64);
        mem.store(0x1020, AccessSize::Word, 0x1234_5678);
        mem.store(0x1024, AccessSize::Half, 0x8001);
        let mut interp = Interpreter::new(&m, mem);
        interp.run(id, &[0x1000, 0x1020]).unwrap();
        let mem = interp.into_memory();
        let mut mem = mem;
        assert_eq!(mem.load(0x1000, AccessSize::Word), 0x1234_5678);
        // sign-extended halfword
        assert_eq!(mem.load(0x1004, AccessSize::Word), 0xFFFF_8001);
    }

    #[test]
    fn cross_function_calls() {
        let mut m = Module::new();
        let mut sq = FunctionBuilder::new("square", 1);
        let x = sq.param(0);
        let r = sq.bin(BinOp::Mul, x, x);
        sq.ret(Some(r.into()));
        let sq_id = m.add_function(sq.build());

        let mut main = FunctionBuilder::new("main", 1);
        let a = main.param(0);
        let s = main.call(sq_id, &[a.into()]);
        let s2 = main.bin(BinOp::Add, s, 1u32);
        main.ret(Some(s2.into()));
        let main_id = m.add_function(main.build());

        let mem = FlatMemory::new(0, 16);
        let got = Interpreter::new(&m, mem).run(main_id, &[9]).unwrap();
        assert_eq!(got, 82);
    }

    #[test]
    fn switch_dispatch() {
        let mut b = FunctionBuilder::new("sw", 1);
        let x = b.param(0);
        let c0 = b.new_block();
        let c1 = b.new_block();
        let dfl = b.new_block();
        b.switch(x, 10, vec![c0, c1], dfl);
        b.switch_to(c0);
        b.ret(Some(100u32.into()));
        b.switch_to(c1);
        b.ret(Some(200u32.into()));
        b.switch_to(dfl);
        b.ret(Some(0u32.into()));
        let f = b.build();
        let mut m = Module::new();
        let id = m.add_function(f);
        for (arg, want) in [(10u32, 100u32), (11, 200), (12, 0), (9, 0)] {
            let mem = FlatMemory::new(0, 16);
            assert_eq!(Interpreter::new(&m, mem).run(id, &[arg]).unwrap(), want, "arg={arg}");
        }
    }

    #[test]
    fn step_limit_detects_infinite_loops() {
        let mut b = FunctionBuilder::new("spin", 0);
        let header = b.new_block();
        b.br(header);
        b.switch_to(header);
        b.br(header);
        let f = b.build();
        let mut m = Module::new();
        let id = m.add_function(f);
        let mem = FlatMemory::new(0, 16);
        let err = Interpreter::new(&m, mem).with_step_limit(1000).run(id, &[]).unwrap_err();
        assert!(matches!(err, InterpError::StepLimit { .. }));
    }
}
