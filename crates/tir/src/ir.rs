//! TIR data structures: modules, functions, blocks and instructions.
//!
//! TIR is a small, non-SSA three-address IR over 32-bit words. Virtual
//! registers are mutable variables; control flow is explicit basic blocks
//! with a single terminator each. It is deliberately close to what a C
//! compiler front-end of the paper's era would hand to a code generator.

use std::fmt;

/// A virtual register (mutable 32-bit variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function reference within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// An instruction operand: a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a virtual register.
    Reg(VReg),
    /// A 32-bit immediate.
    Imm(u32),
}

impl From<VReg> for Operand {
    fn from(v: VReg) -> Operand {
        Operand::Reg(v)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(v) => write!(f, "{v}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// Two-operand arithmetic/logical operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Signed divide (defined result 0 for division by zero, like the
    /// paper's cores' `SDIV` with `DIV_0_TRP` off).
    Sdiv,
    /// Unsigned divide (0 on division by zero).
    Udiv,
    /// Signed remainder (`a - (a/b)*b`, 0-divisor gives `a`).
    Srem,
    /// Unsigned remainder.
    Urem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (amount taken mod 256, shifts ≥ 32 give 0).
    Shl,
    /// Logical shift right.
    Lshr,
    /// Arithmetic shift right.
    Ashr,
    /// Rotate right (amount mod 32).
    Rotr,
}

impl BinOp {
    /// Evaluates the operation on concrete values (the golden semantics).
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Sdiv => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b) as u32
                }
            }
            BinOp::Udiv => {
                a.checked_div(b).unwrap_or(0)
            }
            BinOp::Srem => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    a as u32
                } else {
                    a.wrapping_rem(b) as u32
                }
            }
            BinOp::Urem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                let amt = b & 0xFF;
                if amt >= 32 {
                    0
                } else {
                    a << amt
                }
            }
            BinOp::Lshr => {
                let amt = b & 0xFF;
                if amt >= 32 {
                    0
                } else {
                    a >> amt
                }
            }
            BinOp::Ashr => {
                let amt = (b & 0xFF).min(31);
                ((a as i32) >> amt) as u32
            }
            BinOp::Rotr => a.rotate_right(b & 31),
        }
    }

    /// The mnemonic used by [`fmt::Display`].
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Udiv => "udiv",
            BinOp::Srem => "srem",
            BinOp::Urem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Lshr => "lshr",
            BinOp::Ashr => "ashr",
            BinOp::Rotr => "rotr",
        }
    }
}

/// One-operand operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Two's-complement negate.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Byte-reverse a 32-bit word.
    ByteRev,
    /// Bit-reverse a 32-bit word.
    BitRev,
    /// Sign-extend the low 8 bits.
    SignExt8,
    /// Sign-extend the low 16 bits.
    SignExt16,
}

impl UnOp {
    /// Evaluates the operation (golden semantics).
    #[must_use]
    pub fn eval(self, a: u32) -> u32 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::ByteRev => a.swap_bytes(),
            UnOp::BitRev => a.reverse_bits(),
            UnOp::SignExt8 => a as u8 as i8 as i32 as u32,
            UnOp::SignExt16 => a as u16 as i16 as i32 as u32,
        }
    }

    /// The mnemonic used by [`fmt::Display`].
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::ByteRev => "brev",
            UnOp::BitRev => "bitrev",
            UnOp::SignExt8 => "sext8",
            UnOp::SignExt16 => "sext16",
        }
    }
}

/// Comparison kind for conditional branches and selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
}

impl CmpKind {
    /// Evaluates the comparison.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Slt => sa < sb,
            CmpKind::Sle => sa <= sb,
            CmpKind::Sgt => sa > sb,
            CmpKind::Sge => sa >= sb,
            CmpKind::Ult => a < b,
            CmpKind::Ule => a <= b,
            CmpKind::Ugt => a > b,
            CmpKind::Uge => a >= b,
        }
    }

    /// The logically inverted comparison.
    #[must_use]
    pub fn inverted(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
            CmpKind::Slt => CmpKind::Sge,
            CmpKind::Sle => CmpKind::Sgt,
            CmpKind::Sgt => CmpKind::Sle,
            CmpKind::Sge => CmpKind::Slt,
            CmpKind::Ult => CmpKind::Uge,
            CmpKind::Ule => CmpKind::Ugt,
            CmpKind::Ugt => CmpKind::Ule,
            CmpKind::Uge => CmpKind::Ult,
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 8-bit.
    Byte,
    /// 16-bit.
    Half,
    /// 32-bit.
    Word,
}

impl AccessSize {
    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// A non-terminator TIR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given in each variant's doc line
pub enum Inst {
    /// `dst = value`.
    Const { dst: VReg, value: u32 },
    /// `dst = src` (register copy).
    Copy { dst: VReg, src: Operand },
    /// `dst = a <op> b`.
    Bin { op: BinOp, dst: VReg, a: Operand, b: Operand },
    /// `dst = <op> a`.
    Un { op: UnOp, dst: VReg, a: Operand },
    /// `dst = (src >> lsb) & mask(width)`, optionally sign-extended —
    /// the bit-field extract the paper's §2.1 motivates.
    ExtractBits { dst: VReg, src: Operand, lsb: u8, width: u8, signed: bool },
    /// Insert the low `width` bits of `src` into `dst` at `lsb`
    /// (read-modify-write of `dst`).
    InsertBits { dst: VReg, src: Operand, lsb: u8, width: u8 },
    /// `dst = cmp(a, b) ? t : f`.
    Select { dst: VReg, kind: CmpKind, a: Operand, b: Operand, t: Operand, f: Operand },
    /// `dst = mem[base + offset]` (zero- or sign-extended sub-word).
    Load { dst: VReg, size: AccessSize, signed: bool, base: VReg, offset: Operand },
    /// `mem[base + offset] = src` (truncated to `size`).
    Store { src: Operand, size: AccessSize, base: VReg, offset: Operand },
    /// Call another function in the module (up to 4 arguments).
    Call { dst: Option<VReg>, func: FuncId, args: Vec<Operand> },
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value:#x}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Bin { op, dst, a, b } => write!(f, "{dst} = {} {a}, {b}", op.mnemonic()),
            Inst::Un { op, dst, a } => write!(f, "{dst} = {} {a}", op.mnemonic()),
            Inst::ExtractBits { dst, src, lsb, width, signed } => {
                write!(f, "{dst} = extract{} {src}, {lsb}, {width}", if *signed { "s" } else { "u" })
            }
            Inst::InsertBits { dst, src, lsb, width } => {
                write!(f, "{dst} = insert {src}, {lsb}, {width}")
            }
            Inst::Select { dst, kind, a, b, t, f: fv } => {
                write!(f, "{dst} = select {kind:?} {a}, {b} ? {t} : {fv}")
            }
            Inst::Load { dst, size, signed, base, offset } => write!(
                f,
                "{dst} = load.{}{} [{base} + {offset}]",
                size.bytes(),
                if *signed { "s" } else { "" }
            ),
            Inst::Store { src, size, base, offset } => {
                write!(f, "store.{} [{base} + {offset}], {src}", size.bytes())
            }
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call f{}(", func.0)?;
                } else {
                    write!(f, "call f{}(", func.0)?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given in each variant's doc line
pub enum Terminator {
    /// Unconditional jump.
    Br { target: BlockId },
    /// Conditional branch on a comparison.
    CondBr { kind: CmpKind, a: Operand, b: Operand, then_bb: BlockId, else_bb: BlockId },
    /// Multi-way branch on a dense value; lowered to a table branch in
    /// `T2`, a jump table in `A32` and a compare chain in `T16`.
    Switch { value: VReg, base: u32, targets: Vec<BlockId>, default: BlockId },
    /// Return (optionally with a value in `r0`).
    Ret { value: Option<Operand> },
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Br { target } => write!(f, "br {target}"),
            Terminator::CondBr { kind, a, b, then_bb, else_bb } => {
                write!(f, "br.{kind:?} {a}, {b} ? {then_bb} : {else_bb}")
            }
            Terminator::Switch { value, base, targets, default } => {
                write!(f, "switch {value} - {base} -> [")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "] else {default}")
            }
            Terminator::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Ret { value: None } => write!(f, "ret"),
        }
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's label.
    pub id: BlockId,
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// The single terminator.
    pub term: Terminator,
}

/// A TIR function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter registers (at most 4, passed in `r0..r3`).
    pub params: Vec<VReg>,
    /// Total virtual registers used (ids `0..vreg_count`).
    pub vreg_count: u32,
    /// Basic blocks; entry is `blocks[0]`.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown (validated modules never do this).
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        self.blocks
            .iter()
            .find(|b| b.id == id)
            .unwrap_or_else(|| panic!("unknown block {id} in {}", self.name))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for b in &self.blocks {
            writeln!(f, "{}:", b.id)?;
            for i in &b.insts {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "    {}", b.term)?;
        }
        write!(f, "}}")
    }
}

/// A TIR module: a set of functions that may call one another.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// The functions; [`FuncId`] indexes this vector.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, func: Function) -> FuncId {
        self.funcs.push(func);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Finds a function by name.
    #[must_use]
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The function behind `id`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_golden_semantics() {
        assert_eq!(BinOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(BinOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(BinOp::Sdiv.eval((-7i32) as u32, 2), (-3i32) as u32);
        assert_eq!(BinOp::Sdiv.eval(7, 0), 0);
        assert_eq!(BinOp::Udiv.eval(7, 2), 3);
        assert_eq!(BinOp::Srem.eval((-7i32) as u32, 2), (-1i32) as u32);
        assert_eq!(BinOp::Urem.eval(7, 0), 7);
        assert_eq!(BinOp::Shl.eval(1, 33), 0);
        assert_eq!(BinOp::Ashr.eval(0x8000_0000, 40), 0xFFFF_FFFF);
        assert_eq!(BinOp::Rotr.eval(0b1011, 1), 0x8000_0005);
    }

    #[test]
    fn unop_golden_semantics() {
        assert_eq!(UnOp::Neg.eval(1), u32::MAX);
        assert_eq!(UnOp::ByteRev.eval(0x1122_3344), 0x4433_2211);
        assert_eq!(UnOp::BitRev.eval(1), 0x8000_0000);
        assert_eq!(UnOp::SignExt8.eval(0x80), 0xFFFF_FF80);
        assert_eq!(UnOp::SignExt16.eval(0x8000), 0xFFFF_8000);
    }

    #[test]
    fn cmp_inversion_complementary() {
        let kinds = [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::Slt,
            CmpKind::Sle,
            CmpKind::Sgt,
            CmpKind::Sge,
            CmpKind::Ult,
            CmpKind::Ule,
            CmpKind::Ugt,
            CmpKind::Uge,
        ];
        let samples =
            [(0u32, 0u32), (1, 2), (2, 1), (0x8000_0000, 1), (1, 0x8000_0000), (5, 5)];
        for k in kinds {
            for (a, b) in samples {
                assert_ne!(k.eval(a, b), k.inverted().eval(a, b), "{k:?} {a} {b}");
            }
        }
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let f = Function {
            name: "f".into(),
            params: vec![],
            vreg_count: 0,
            blocks: vec![Block {
                id: BlockId(0),
                insts: vec![],
                term: Terminator::Ret { value: None },
            }],
        };
        let id = m.add_function(f);
        assert_eq!(m.func_by_name("f").unwrap().0, id);
        assert!(m.func_by_name("g").is_none());
    }

    #[test]
    fn display_renders() {
        let f = Function {
            name: "demo".into(),
            params: vec![VReg(0)],
            vreg_count: 2,
            blocks: vec![Block {
                id: BlockId(0),
                insts: vec![Inst::Bin {
                    op: BinOp::Add,
                    dst: VReg(1),
                    a: VReg(0).into(),
                    b: 3u32.into(),
                }],
                term: Terminator::Ret { value: Some(VReg(1).into()) },
            }],
        };
        let s = f.to_string();
        assert!(s.contains("fn demo(v0)"));
        assert!(s.contains("v1 = add v0, 3"));
        assert!(s.contains("ret v1"));
    }
}
