//! # TIR — the tiny IR of the ALIA reproduction
//!
//! A small, non-SSA three-address intermediate representation used as the
//! common source language for the reproduction's benchmark kernels. The
//! paper's Table 1 compares *compiled* code across three encodings of one
//! ISA; TIR plays the role of the C front-end output, and the
//! `alia-codegen` crate lowers it to each encoding.
//!
//! The crate also ships the **golden-model interpreter**
//! ([`Interpreter`]): the compiler and the cycle-approximate core
//! simulator are validated by checking
//! `interp(tir) == simulate(compile(tir))` for every workload.
//!
//! # Examples
//!
//! ```
//! use alia_tir::{FunctionBuilder, Module, Interpreter, FlatMemory, BinOp, CmpKind};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // fn gcd(a, b) { while b != 0 { t = a % b; a = b; b = t } return a }
//! let mut f = FunctionBuilder::new("gcd", 2);
//! let a = f.param(0);
//! let b = f.param(1);
//! let header = f.new_block();
//! let body = f.new_block();
//! let exit = f.new_block();
//! f.br(header);
//! f.switch_to(header);
//! f.cond_br(CmpKind::Ne, b, 0u32, body, exit);
//! f.switch_to(body);
//! let t = f.bin(BinOp::Urem, a, b);
//! f.assign(a, b);
//! f.assign(b, t);
//! f.br(header);
//! f.switch_to(exit);
//! f.ret(Some(a.into()));
//!
//! let mut module = Module::new();
//! let gcd = module.add_function(f.build());
//! let mut interp = Interpreter::new(&module, FlatMemory::new(0, 16));
//! assert_eq!(interp.run(gcd, &[54, 24])?, 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod interp;
mod ir;
mod validate;

pub use builder::FunctionBuilder;
pub use interp::{FlatMemory, InterpError, Interpreter, TirMemory};
pub use ir::{
    AccessSize, BinOp, Block, BlockId, CmpKind, FuncId, Function, Inst, Module, Operand,
    Terminator, UnOp, VReg,
};
pub use validate::{validate, ValidateError};
