//! Structural validation of TIR modules.

use std::collections::HashSet;
use std::fmt;

use crate::{Function, Inst, Module, Operand, Terminator, VReg};

/// A structural defect in a TIR module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function where the defect was found.
    pub func: String,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in `{}`: {}", self.func, self.msg)
    }
}

impl std::error::Error for ValidateError {}

/// Validates structural invariants of a module:
///
/// * every referenced block exists and block ids are dense and unique,
/// * every referenced virtual register is below `vreg_count`,
/// * every call target exists and receives at most 4 arguments,
/// * switch target lists are non-empty,
/// * bit-field ranges stay within 32 bits.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate(module: &Module) -> Result<(), ValidateError> {
    for f in &module.funcs {
        validate_function(module, f)?;
    }
    Ok(())
}

fn err(f: &Function, msg: impl Into<String>) -> ValidateError {
    ValidateError { func: f.name.clone(), msg: msg.into() }
}

fn validate_function(module: &Module, f: &Function) -> Result<(), ValidateError> {
    if f.blocks.is_empty() {
        return Err(err(f, "no blocks"));
    }
    let mut seen = HashSet::new();
    for (i, b) in f.blocks.iter().enumerate() {
        if b.id.0 as usize != i {
            return Err(err(f, format!("block ids must be dense, found {} at {i}", b.id)));
        }
        if !seen.insert(b.id) {
            return Err(err(f, format!("duplicate block {}", b.id)));
        }
    }
    let n_blocks = f.blocks.len() as u32;
    let check_block = |id: crate::BlockId| -> Result<(), ValidateError> {
        if id.0 >= n_blocks {
            return Err(err(f, format!("reference to unknown block {id}")));
        }
        Ok(())
    };
    let check_vreg = |v: VReg| -> Result<(), ValidateError> {
        if v.0 >= f.vreg_count {
            return Err(err(f, format!("vreg {v} out of range (count {})", f.vreg_count)));
        }
        Ok(())
    };
    let check_op = |o: Operand| -> Result<(), ValidateError> {
        if let Operand::Reg(v) = o {
            check_vreg(v)?;
        }
        Ok(())
    };
    for p in &f.params {
        check_vreg(*p)?;
    }
    for b in &f.blocks {
        for inst in &b.insts {
            match inst {
                Inst::Const { dst, .. } => check_vreg(*dst)?,
                Inst::Copy { dst, src } => {
                    check_vreg(*dst)?;
                    check_op(*src)?;
                }
                Inst::Bin { dst, a, b: bb, .. } => {
                    check_vreg(*dst)?;
                    check_op(*a)?;
                    check_op(*bb)?;
                }
                Inst::Un { dst, a, .. } => {
                    check_vreg(*dst)?;
                    check_op(*a)?;
                }
                Inst::ExtractBits { dst, src, lsb, width, .. }
                | Inst::InsertBits { dst, src, lsb, width } => {
                    check_vreg(*dst)?;
                    check_op(*src)?;
                    if *width == 0 || u32::from(*lsb) + u32::from(*width) > 32 {
                        return Err(err(f, format!("bit-field {lsb}+{width} out of range")));
                    }
                }
                Inst::Select { dst, a, b: bb, t, f: fv, .. } => {
                    check_vreg(*dst)?;
                    for o in [a, bb, t, fv] {
                        check_op(*o)?;
                    }
                }
                Inst::Load { dst, base, offset, .. } => {
                    check_vreg(*dst)?;
                    check_vreg(*base)?;
                    check_op(*offset)?;
                }
                Inst::Store { src, base, offset, .. } => {
                    check_op(*src)?;
                    check_vreg(*base)?;
                    check_op(*offset)?;
                }
                Inst::Call { dst, func, args } => {
                    if let Some(d) = dst {
                        check_vreg(*d)?;
                    }
                    if func.0 as usize >= module.funcs.len() {
                        return Err(err(f, format!("call to unknown function f{}", func.0)));
                    }
                    if args.len() > 4 {
                        return Err(err(f, "more than 4 call arguments"));
                    }
                    let callee = module.func(*func);
                    if args.len() != callee.params.len() {
                        return Err(err(
                            f,
                            format!(
                                "call to `{}` passes {} args, expects {}",
                                callee.name,
                                args.len(),
                                callee.params.len()
                            ),
                        ));
                    }
                    for a in args {
                        check_op(*a)?;
                    }
                }
            }
        }
        match &b.term {
            Terminator::Br { target } => check_block(*target)?,
            Terminator::CondBr { a, b: bb, then_bb, else_bb, .. } => {
                check_op(*a)?;
                check_op(*bb)?;
                check_block(*then_bb)?;
                check_block(*else_bb)?;
            }
            Terminator::Switch { value, targets, default, .. } => {
                check_vreg(*value)?;
                if targets.is_empty() {
                    return Err(err(f, "switch with no targets"));
                }
                for t in targets {
                    check_block(*t)?;
                }
                check_block(*default)?;
            }
            Terminator::Ret { value } => {
                if let Some(v) = value {
                    check_op(*v)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Block, BlockId, FunctionBuilder};

    #[test]
    fn valid_function_passes() {
        let mut b = FunctionBuilder::new("ok", 2);
        let x = b.param(0);
        let y = b.param(1);
        let z = b.bin(BinOp::Add, x, y);
        b.ret(Some(z.into()));
        let mut m = Module::new();
        m.add_function(b.build());
        assert!(validate(&m).is_ok());
    }

    #[test]
    fn detects_bad_vreg() {
        let f = Function {
            name: "bad".into(),
            params: vec![],
            vreg_count: 1,
            blocks: vec![Block {
                id: BlockId(0),
                insts: vec![Inst::Copy { dst: VReg(5), src: Operand::Imm(0) }],
                term: Terminator::Ret { value: None },
            }],
        };
        let mut m = Module::new();
        m.add_function(f);
        let e = validate(&m).unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn detects_bad_block_ref() {
        let f = Function {
            name: "bad".into(),
            params: vec![],
            vreg_count: 0,
            blocks: vec![Block {
                id: BlockId(0),
                insts: vec![],
                term: Terminator::Br { target: BlockId(7) },
            }],
        };
        let mut m = Module::new();
        m.add_function(f);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn detects_arity_mismatch() {
        let mut m = Module::new();
        let mut callee = FunctionBuilder::new("callee", 2);
        let p = callee.param(0);
        callee.ret(Some(p.into()));
        let callee_id = m.add_function(callee.build());
        let mut caller = FunctionBuilder::new("caller", 0);
        let r = caller.call(callee_id, &[Operand::Imm(1)]);
        caller.ret(Some(r.into()));
        m.add_function(caller.build());
        let e = validate(&m).unwrap_err();
        assert!(e.to_string().contains("expects 2"));
    }

    #[test]
    fn detects_bad_bitfield() {
        let mut b = FunctionBuilder::new("bf", 1);
        let x = b.param(0);
        let v = b.extract_bits(x, 30, 8, false);
        b.ret(Some(v.into()));
        let mut m = Module::new();
        m.add_function(b.build());
        assert!(validate(&m).is_err());
    }
}
