//! The [`Kernel`] abstraction: a TIR benchmark plus its input generator
//! and a pure-Rust reference implementation.

use alia_tir::{AccessSize, FlatMemory, Interpreter, Module, TirMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where kernel data lives in the simulated address space (inside SRAM).
pub const DATA_BASE: u32 = 0x2000_1000;

/// One automotive benchmark kernel.
///
/// Kernels follow a single calling convention:
/// `fn <name>(input_ptr, output_ptr, n) -> checksum`, with `n` elements of
/// input starting at `input_ptr` and outputs written from `output_ptr`.
pub struct Kernel {
    /// Kernel name (matches the entry function).
    pub name: &'static str,
    /// One-line description of the automotive function modelled.
    pub description: &'static str,
    /// The TIR module holding the entry function (and helpers).
    pub module: Module,
    /// Default element count for benchmarking.
    pub default_elems: u32,
    /// Input generator: `(seed, elems)` to little-endian input words.
    pub gen_input: fn(u64, u32) -> Vec<u32>,
    /// Reference implementation: `(input, elems)` to
    /// `(checksum, output words)`.
    pub reference: fn(&[u32], u32) -> (u32, Vec<u32>),
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("default_elems", &self.default_elems)
            .finish_non_exhaustive()
    }
}

impl Kernel {
    /// Generates the input block for `seed`/`elems` as bytes.
    #[must_use]
    pub fn input_bytes(&self, seed: u64, elems: u32) -> Vec<u8> {
        (self.gen_input)(seed, elems).iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// The size of the input block in bytes.
    #[must_use]
    pub fn input_len(&self, elems: u32) -> u32 {
        (self.gen_input)(0, elems).len() as u32 * 4
    }

    /// The address outputs are written to (input rounded up, plus slack).
    #[must_use]
    pub fn output_base(&self, elems: u32) -> u32 {
        DATA_BASE + ((self.input_len(elems) + 63) & !63)
    }

    /// The arguments to pass in `r0..r2`.
    #[must_use]
    pub fn args(&self, elems: u32) -> [u32; 3] {
        [DATA_BASE, self.output_base(elems), elems]
    }

    /// Runs the kernel in the golden interpreter; returns the checksum.
    ///
    /// # Panics
    ///
    /// Panics if the module is malformed (kernels are library-provided, so
    /// this indicates a bug).
    #[must_use]
    pub fn run_interp(&self, seed: u64, elems: u32) -> u32 {
        let (fid, _) = self.module.func_by_name(self.name).expect("entry exists");
        let input = self.input_bytes(seed, elems);
        let out_base = self.output_base(elems);
        let total = (out_base - DATA_BASE) as usize + (elems as usize + 8) * 16;
        let mut mem = FlatMemory::new(DATA_BASE, total);
        mem.bytes_mut()[..input.len()].copy_from_slice(&input);
        let args = self.args(elems);
        let mut interp = Interpreter::new(&self.module, mem);
        interp.run(fid, &args).expect("kernel interprets")
    }

    /// Runs the Rust reference; returns the checksum.
    #[must_use]
    pub fn run_reference(&self, seed: u64, elems: u32) -> u32 {
        let input = (self.gen_input)(seed, elems);
        (self.reference)(&input, elems).0
    }

    /// Cross-checks the interpreter against the Rust reference, including
    /// output memory.
    ///
    /// # Panics
    ///
    /// Panics when they disagree.
    pub fn verify(&self, seed: u64, elems: u32) {
        let (fid, _) = self.module.func_by_name(self.name).expect("entry exists");
        alia_tir::validate(&self.module).expect("kernel module valid");
        let input_words = (self.gen_input)(seed, elems);
        let input = self.input_bytes(seed, elems);
        let out_base = self.output_base(elems);
        let total = (out_base - DATA_BASE) as usize + (elems as usize + 8) * 16;
        let mut mem = FlatMemory::new(DATA_BASE, total);
        mem.bytes_mut()[..input.len()].copy_from_slice(&input);
        let args = self.args(elems);
        let mut interp = Interpreter::new(&self.module, mem);
        let got = interp.run(fid, &args).expect("kernel interprets");
        let (want, want_out) = (self.reference)(&input_words, elems);
        assert_eq!(got, want, "{}: checksum mismatch (seed {seed}, n {elems})", self.name);
        let mut mem = interp.into_memory();
        for (i, w) in want_out.iter().enumerate() {
            let got_w = mem.load(out_base + 4 * i as u32, AccessSize::Word);
            assert_eq!(
                got_w, *w,
                "{}: output word {i} mismatch (seed {seed})",
                self.name
            );
        }
    }
}

/// A deterministic RNG for input generation.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xA11A_5EED)
}

/// Uniform word with the given mask applied.
pub fn masked(rng: &mut StdRng, mask: u32) -> u32 {
    rng.gen::<u32>() & mask
}
