//! `a2time` — angle-to-time conversion.
//!
//! Models the EEMBC automotive `a2time` kernel: converting crankshaft
//! angle ticks into time values, one division per sample — the workload
//! class the paper's hardware-divide argument (§2.1) targets.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `2n` words — `(angle, period)` pairs.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..2 * n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let angle = input[2 * i] & 0xFFFF;
        let period = (input[2 * i + 1] & 0x3FFF) | 1;
        let time = (angle << 10) / period;
        // Tooth-train analysis: walk eight teeth, tracking the filtered
        // inter-tooth time and a tolerance-window checksum.
        let mut x = time;
        let mut acc = 0u32;
        for t in 0..8u32 {
            x = x.wrapping_mul(3).wrapping_add(period) >> 1;
            acc = acc.wrapping_add(x & 0xFF);
            x ^= angle.rotate_right(t);
        }
        let v = time.wrapping_add(acc & 0xFFF);
        sum = sum.wrapping_add(v);
        out.push(v);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("a2time", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Shl, i, 3u32); // 2 words per element
    let raw_angle = b.load(inp, off);
    let angle = b.bin(BinOp::And, raw_angle, 0xFFFFu32);
    let off2 = b.bin(BinOp::Add, off, 4u32);
    let raw_period = b.load(inp, off2);
    let masked = b.bin(BinOp::And, raw_period, 0x3FFFu32);
    let period = b.bin(BinOp::Or, masked, 1u32);
    let scaled = b.bin(BinOp::Shl, angle, 10u32);
    let time = b.bin(BinOp::Udiv, scaled, period);
    // tooth-train analysis (8 teeth)
    let x = b.copy(time);
    let acc = b.imm(0);
    let t = b.imm(0);
    let tooth_hdr = b.new_block();
    let tooth_body = b.new_block();
    let tooth_done = b.new_block();
    b.br(tooth_hdr);
    b.switch_to(tooth_hdr);
    b.cond_br(CmpKind::Ult, t, 8u32, tooth_body, tooth_done);
    b.switch_to(tooth_body);
    let x3 = b.bin(BinOp::Mul, x, 3u32);
    let xp = b.bin(BinOp::Add, x3, period);
    b.bin_into(x, BinOp::Lshr, xp, 1u32);
    let low = b.bin(BinOp::And, x, 0xFFu32);
    b.bin_into(acc, BinOp::Add, acc, low);
    let rot = b.bin(BinOp::Rotr, angle, t);
    b.bin_into(x, BinOp::Xor, x, rot);
    b.bin_into(t, BinOp::Add, t, 1u32);
    b.br(tooth_hdr);
    b.switch_to(tooth_done);
    let accm = b.bin(BinOp::And, acc, 0xFFFu32);
    let v = b.bin(BinOp::Add, time, accm);
    b.bin_into(sum, BinOp::Add, sum, v);
    let out_off = b.bin(BinOp::Shl, i, 2u32);
    b.store(outp, out_off, v);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);
    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `a2time` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "a2time",
        description: "crank-angle to time conversion (one divide per sample)",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
