//! `bitmnp` — bit manipulation.
//!
//! Models the EEMBC automotive `bitmnp` kernel: bit reversal, field
//! shuffling and rotation — exactly the workload the paper's §2.1 uses to
//! motivate the `T2` bit-field and `RBIT` instructions.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module, UnOp};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `n` words.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    for w in &input[..n as usize] {
        let v = *w;
        let r = v.reverse_bits();
        let x = r >> 8 & 0xFFFF;
        let mut y = 0u32;
        y = y & !0xFFFF | x;
        y = y & !0xFF_0000 | ((v & 0xFF) << 16);
        let z = y ^ v.rotate_right(13);
        sum = sum.wrapping_add(z);
        out.push(z);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("bitmnp", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Shl, i, 2u32);
    let v = b.load(inp, off);
    let r = b.un(UnOp::BitRev, v);
    let x = b.extract_bits(r, 8, 16, false);
    let y = b.imm(0);
    b.insert_bits(y, x, 0, 16);
    let low = b.extract_bits(v, 0, 8, false);
    b.insert_bits(y, low, 16, 8);
    let rot = b.bin(BinOp::Rotr, v, 13u32);
    let z = b.bin(BinOp::Xor, y, rot);
    b.bin_into(sum, BinOp::Add, sum, z);
    b.store(outp, off, z);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);
    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `bitmnp` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "bitmnp",
        description: "bit reversal and field shuffling (RBIT/BFI territory)",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
