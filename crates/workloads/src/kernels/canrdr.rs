//! `canrdr` — CAN message processing.
//!
//! Models the EEMBC automotive `canrdr` kernel: decoding CAN frames
//! (identifier field extraction, payload handling dispatched on a message
//! class) — the deeply-embedded I/O bit-extraction workload §2.1 describes.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module, UnOp};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `3n` words per frame: `(id, data0, data1)`.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..3 * n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n as usize {
        let id = input[3 * i];
        let d0 = input[3 * i + 1];
        let d1 = input[3 * i + 2];
        let pri = id >> 21 & 0xFF;
        let dlc = id & 0xF;
        let class = id >> 4 & 0x7;
        let v = match class {
            0 => d0.wrapping_add(d1),
            1 => d0.swap_bytes(),
            2 => d0 & d1,
            3 => d0 | d1,
            4 => d0 ^ d1,
            _ => dlc,
        };
        sum = sum.wrapping_add(v).wrapping_add(pri);
        out.push(v);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("canrdr", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let v = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let c0 = b.new_block();
    let c1 = b.new_block();
    let c2 = b.new_block();
    let c3 = b.new_block();
    let c4 = b.new_block();
    let dfl = b.new_block();
    let join = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let three_i = b.bin(BinOp::Mul, i, 3u32);
    let off = b.bin(BinOp::Shl, three_i, 2u32);
    let id = b.load(inp, off);
    let off1 = b.bin(BinOp::Add, off, 4u32);
    let d0 = b.load(inp, off1);
    let off2 = b.bin(BinOp::Add, off, 8u32);
    let d1 = b.load(inp, off2);
    let pri = b.extract_bits(id, 21, 8, false);
    let dlc = b.extract_bits(id, 0, 4, false);
    let class = b.extract_bits(id, 4, 3, false);
    b.switch(class, 0, vec![c0, c1, c2, c3, c4], dfl);

    b.switch_to(c0);
    b.bin_into(v, BinOp::Add, d0, d1);
    b.br(join);
    b.switch_to(c1);
    let rev = b.un(UnOp::ByteRev, d0);
    b.assign(v, rev);
    b.br(join);
    b.switch_to(c2);
    b.bin_into(v, BinOp::And, d0, d1);
    b.br(join);
    b.switch_to(c3);
    b.bin_into(v, BinOp::Or, d0, d1);
    b.br(join);
    b.switch_to(c4);
    b.bin_into(v, BinOp::Xor, d0, d1);
    b.br(join);
    b.switch_to(dfl);
    b.assign(v, dlc);
    b.br(join);

    b.switch_to(join);
    b.bin_into(sum, BinOp::Add, sum, v);
    b.bin_into(sum, BinOp::Add, sum, pri);
    let ooff = b.bin(BinOp::Shl, i, 2u32);
    b.store(outp, ooff, v);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);

    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `canrdr` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "canrdr",
        description: "CAN frame decode: id bit-fields and class dispatch",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
