//! `matrix` — fixed-point matrix arithmetic.
//!
//! Models the EEMBC automotive `matrix01` kernel: small fixed-point
//! matrix products of the kind used in sensor fusion and chassis control.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

const DIM: u32 = 4;

/// Input layout: two 4×4 matrices (32 words), row-major.
fn gen_input(seed: u64, _n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..2 * DIM * DIM).map(|_| r.gen::<u32>() & 0xFFFF).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let a = &input[..16];
    let b = &input[16..32];
    let mut sum = 0u32;
    let mut out = vec![0u32; 16];
    for rep in 0..n {
        for i in 0..4usize {
            for j in 0..4usize {
                let mut acc = 0u32;
                for k in 0..4usize {
                    let av = a[i * 4 + k].wrapping_add(rep);
                    acc = acc.wrapping_add(av.wrapping_mul(b[k * 4 + j]));
                }
                out[i * 4 + j] = acc >> 4;
            }
        }
        sum = sum.wrapping_add(out[(rep % 4) as usize * 4 + (rep % 4) as usize]);
    }
    (sum, out)
}

#[allow(clippy::many_single_char_names)]
fn build() -> Module {
    let mut b = FunctionBuilder::new("matrix", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let rep = b.imm(0);
    let i = b.imm(0);
    let j = b.imm(0);
    let k = b.imm(0);
    let acc = b.imm(0);

    let rep_hdr = b.new_block();
    let i_hdr = b.new_block();
    let j_hdr = b.new_block();
    let k_hdr = b.new_block();
    let k_body = b.new_block();
    let j_done = b.new_block();
    let i_done = b.new_block();
    let rep_done = b.new_block();
    let exit = b.new_block();

    b.br(rep_hdr);
    b.switch_to(rep_hdr);
    b.cond_br(CmpKind::Ult, rep, n, i_hdr, exit);

    b.switch_to(i_hdr);
    b.assign(i, 0u32);
    b.br(j_hdr); // j loop is re-entered per i via i_done

    b.switch_to(j_hdr);
    b.assign(j, 0u32);
    b.br(k_hdr);

    b.switch_to(k_hdr);
    b.assign(k, 0u32);
    b.assign(acc, 0u32);
    b.br(k_body);

    b.switch_to(k_body);
    // av = a[i*4+k] + rep
    let i4 = b.bin(BinOp::Shl, i, 2u32);
    let aidx = b.bin(BinOp::Add, i4, k);
    let aoff = b.bin(BinOp::Shl, aidx, 2u32);
    let a_v = b.load(inp, aoff);
    let av = b.bin(BinOp::Add, a_v, rep);
    // bv = b[k*4+j] (matrix B starts at word 16)
    let k4 = b.bin(BinOp::Shl, k, 2u32);
    let bidx = b.bin(BinOp::Add, k4, j);
    let boff0 = b.bin(BinOp::Shl, bidx, 2u32);
    let boff = b.bin(BinOp::Add, boff0, 64u32);
    let b_v = b.load(inp, boff);
    let prod = b.bin(BinOp::Mul, av, b_v);
    b.bin_into(acc, BinOp::Add, acc, prod);
    b.bin_into(k, BinOp::Add, k, 1u32);
    b.cond_br(CmpKind::Ult, k, 4u32, k_body, j_done);

    b.switch_to(j_done);
    // out[i*4+j] = acc >> 4
    let scaled = b.bin(BinOp::Lshr, acc, 4u32);
    let oidx = b.bin(BinOp::Add, i4, j);
    let ooff = b.bin(BinOp::Shl, oidx, 2u32);
    b.store(outp, ooff, scaled);
    b.bin_into(j, BinOp::Add, j, 1u32);
    let back_k = b.new_block();
    b.cond_br(CmpKind::Ult, j, 4u32, back_k, i_done);
    b.switch_to(back_k);
    b.assign(k, 0u32);
    b.assign(acc, 0u32);
    b.br(k_body);

    b.switch_to(i_done);
    b.bin_into(i, BinOp::Add, i, 1u32);
    let back_j = b.new_block();
    b.cond_br(CmpKind::Ult, i, 4u32, back_j, rep_done);
    b.switch_to(back_j);
    b.br(j_hdr);

    b.switch_to(rep_done);
    // sum += out[(rep%4)*4 + rep%4]
    let rm = b.bin(BinOp::And, rep, 3u32);
    let rm4 = b.bin(BinOp::Shl, rm, 2u32);
    let didx = b.bin(BinOp::Add, rm4, rm);
    let doff = b.bin(BinOp::Shl, didx, 2u32);
    let diag = b.load(outp, doff);
    b.bin_into(sum, BinOp::Add, sum, diag);
    b.bin_into(rep, BinOp::Add, rep, 1u32);
    b.br(rep_hdr);

    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `matrix` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "matrix",
        description: "4x4 fixed-point matrix product (multiply-accumulate loops)",
        module: build(),
        default_elems: 64,
        gen_input,
        reference,
    }
}
