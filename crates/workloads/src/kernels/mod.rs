//! The kernel collection.

pub mod a2time;
pub mod bitmnp;
pub mod canrdr;
pub mod matrix;
pub mod puwmod;
pub mod rspeed;
pub mod tblook;
pub mod ttsprk;

use crate::kernel::Kernel;

/// The six kernels used for the Table 1 reproduction — our stand-in for
/// the "6 available AutoIndy benchmarks" the paper's geometric mean is
/// computed over.
#[must_use]
pub fn autoindy() -> Vec<Kernel> {
    vec![
        a2time::kernel(),
        tblook::kernel(),
        ttsprk::kernel(),
        puwmod::kernel(),
        rspeed::kernel(),
        canrdr::kernel(),
    ]
}

/// Every kernel in the suite (the AutoIndy six plus `bitmnp` and
/// `matrix`).
#[must_use]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        a2time::kernel(),
        tblook::kernel(),
        ttsprk::kernel(),
        puwmod::kernel(),
        rspeed::kernel(),
        canrdr::kernel(),
        bitmnp::kernel(),
        matrix::kernel(),
    ]
}

/// Looks a suite kernel up by entry-function name (e.g. `"rspeed"`) —
/// the handle task-set builders use to name task bodies.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}
