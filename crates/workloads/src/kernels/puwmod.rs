//! `puwmod` — pulse-width modulation.
//!
//! Models the EEMBC automotive `puwmod` kernel: computing on/off times for
//! a PWM output and packing them into a control word — bit-field
//! insertion territory (§2.1).

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `n` words: `duty[7:0] period[15:8]`.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    for w in &input[..n as usize] {
        let duty = w & 0xFF;
        let period = (w >> 8 & 0xFF) | 1;
        let on = duty.wrapping_mul(period) >> 8;
        let off = period.wrapping_sub(on) & 0xFF;
        let mut ctrl = 0u32;
        ctrl = ctrl & !0xFF | (on & 0xFF);
        ctrl = ctrl & !0xFF00 | (off << 8 & 0xFF00);
        if on > period / 2 {
            ctrl |= 1 << 16;
        }
        sum = sum.wrapping_add(ctrl);
        out.push(ctrl);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("puwmod", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Shl, i, 2u32);
    let w = b.load(inp, off);
    let duty = b.extract_bits(w, 0, 8, false);
    let p_raw = b.extract_bits(w, 8, 8, false);
    let period = b.bin(BinOp::Or, p_raw, 1u32);
    let prod = b.bin(BinOp::Mul, duty, period);
    let on = b.bin(BinOp::Lshr, prod, 8u32);
    let toff = b.bin(BinOp::Sub, period, on);
    let ctrl = b.imm(0);
    b.insert_bits(ctrl, on, 0, 8);
    b.insert_bits(ctrl, toff, 8, 8);
    let half = b.bin(BinOp::Lshr, period, 1u32);
    let flag = b.select(CmpKind::Ugt, on, half, 1u32, 0u32);
    b.insert_bits(ctrl, flag, 16, 1);
    b.bin_into(sum, BinOp::Add, sum, ctrl);
    b.store(outp, off, ctrl);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);
    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `puwmod` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "puwmod",
        description: "PWM on/off-time computation with bit-field packing",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
