//! `rspeed` — road-speed calculation.
//!
//! Models the EEMBC automotive `rspeed` kernel: exponential smoothing of
//! wheel-pulse intervals followed by a reciprocal (divide) to speed.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `n` pulse-interval words.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    let mut avg = 1000u32;
    for w in &input[..n as usize] {
        let interval = (w & 0xF_FFFF) | 1;
        avg = (avg.wrapping_mul(7).wrapping_add(interval)) >> 3;
        let speed = 3_600_000 / (avg | 1);
        // Pulse-train smoothing: eight debounce/filter steps per sample.
        let mut s = speed;
        let mut acc = 0u32;
        for t in 0..8u32 {
            s = s.wrapping_mul(7).wrapping_add(interval) >> 3;
            acc = acc.wrapping_add(s & 0x3F);
            s ^= interval.rotate_right(t + 3);
        }
        let v = speed.wrapping_add(acc & 0x7FF);
        sum = sum.wrapping_add(v);
        out.push(v);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("rspeed", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let avg = b.imm(1000);
    let hdr = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Shl, i, 2u32);
    let w = b.load(inp, off);
    let masked = b.bin(BinOp::And, w, 0xF_FFFFu32);
    let interval = b.bin(BinOp::Or, masked, 1u32);
    let scaled = b.bin(BinOp::Mul, avg, 7u32);
    let mixed = b.bin(BinOp::Add, scaled, interval);
    b.bin_into(avg, BinOp::Lshr, mixed, 3u32);
    let divisor = b.bin(BinOp::Or, avg, 1u32);
    let speed = b.bin(BinOp::Udiv, 3_600_000u32, divisor);
    // pulse-train smoothing (8 steps)
    let s = b.copy(speed);
    let acc = b.imm(0);
    let t = b.imm(0);
    let f_hdr = b.new_block();
    let f_body = b.new_block();
    let f_done = b.new_block();
    b.br(f_hdr);
    b.switch_to(f_hdr);
    b.cond_br(CmpKind::Ult, t, 8u32, f_body, f_done);
    b.switch_to(f_body);
    let s7 = b.bin(BinOp::Mul, s, 7u32);
    let sp = b.bin(BinOp::Add, s7, interval);
    b.bin_into(s, BinOp::Lshr, sp, 3u32);
    let low = b.bin(BinOp::And, s, 0x3Fu32);
    b.bin_into(acc, BinOp::Add, acc, low);
    let t3 = b.bin(BinOp::Add, t, 3u32);
    let rot = b.bin(BinOp::Rotr, interval, t3);
    b.bin_into(s, BinOp::Xor, s, rot);
    b.bin_into(t, BinOp::Add, t, 1u32);
    b.br(f_hdr);
    b.switch_to(f_done);
    let accm = b.bin(BinOp::And, acc, 0x7FFu32);
    let v = b.bin(BinOp::Add, speed, accm);
    b.bin_into(sum, BinOp::Add, sum, v);
    b.store(outp, off, v);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);
    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `rspeed` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "rspeed",
        description: "road-speed from smoothed pulse intervals (divide per sample)",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
