//! `tblook` — table lookup and interpolation.
//!
//! Models the EEMBC automotive `tblook` kernel: linear interpolation into
//! a calibration table (fuel/ignition maps), signed fixed-point arithmetic.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

const TABLE_LEN: usize = 33;

/// Input layout: 33 signed table entries, then `n` query words.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    let mut v: Vec<u32> = Vec::with_capacity(TABLE_LEN + n as usize);
    // A plausible monotone-ish calibration curve with noise.
    let mut level = -20_000i32;
    for _ in 0..TABLE_LEN {
        v.push(level as u32);
        level += r.gen_range(0..2500);
    }
    for _ in 0..n {
        v.push(r.gen());
    }
    v
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let tab = &input[..TABLE_LEN];
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    for q in &input[TABLE_LEN..TABLE_LEN + n as usize] {
        let x = q & 0xFFFF;
        let idx = (x >> 11) as usize; // 0..=31
        let frac = (x & 0x7FF) as i32;
        let a = tab[idx] as i32;
        let b2 = tab[idx + 1] as i32;
        let y = a.wrapping_add((b2.wrapping_sub(a)).wrapping_mul(frac) >> 11) as u32;
        sum = sum.wrapping_add(y);
        out.push(y);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("tblook", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    // q = in[33 + i]
    let qoff = b.bin(BinOp::Shl, i, 2u32);
    let qoff = b.bin(BinOp::Add, qoff, TABLE_LEN as u32 * 4);
    let q = b.load(inp, qoff);
    let x = b.bin(BinOp::And, q, 0xFFFFu32);
    let idx = b.bin(BinOp::Lshr, x, 11u32);
    let frac = b.bin(BinOp::And, x, 0x7FFu32);
    let aoff = b.bin(BinOp::Shl, idx, 2u32);
    let a = b.load(inp, aoff);
    let boff = b.bin(BinOp::Add, aoff, 4u32);
    let b2 = b.load(inp, boff);
    let diff = b.bin(BinOp::Sub, b2, a);
    let scaled = b.bin(BinOp::Mul, diff, frac);
    let adj = b.bin(BinOp::Ashr, scaled, 11u32);
    let y = b.bin(BinOp::Add, a, adj);
    b.bin_into(sum, BinOp::Add, sum, y);
    let ooff = b.bin(BinOp::Shl, i, 2u32);
    b.store(outp, ooff, y);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);
    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `tblook` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "tblook",
        description: "calibration-table lookup with linear interpolation",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
