//! `ttsprk` — tooth-to-spark timing.
//!
//! Models the EEMBC automotive `ttsprk` kernel the paper's §3.1.2 names
//! explicitly: computing spark advance from tooth-wheel events, with a
//! mode switch (cranking / idle / run / overrun) and per-event division.

use alia_tir::{BinOp, CmpKind, FunctionBuilder, Module};
use rand::Rng;

use crate::kernel::{rng, Kernel};

/// Input layout: `n` packed words: `rpm[13:0] load[21:14] mode[23:22]`.
fn gen_input(seed: u64, n: u32) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen()).collect()
}

fn reference(input: &[u32], n: u32) -> (u32, Vec<u32>) {
    let mut sum = 0u32;
    let mut out = Vec::with_capacity(n as usize);
    let mut prev = 10u32;
    for w in &input[..n as usize] {
        let rpm = (w & 0x3FFF) | 1;
        let load = w >> 14 & 0xFF;
        let mode = w >> 22 & 3;
        let adv = match mode {
            0 => 10u32.wrapping_add(load / 4),
            1 => (600_000 / rpm).wrapping_add(load),
            2 => load.wrapping_sub(rpm / 64),
            _ => prev,
        };
        // clamp to [0, 60] treating the value as signed
        let clamped = if (adv as i32) < 0 {
            0
        } else if adv > 60 {
            60
        } else {
            adv
        };
        prev = clamped;
        // Dwell-time shaping: six coil-charge steps per event.
        let mut dwell = clamped;
        let mut dacc = 0u32;
        for t in 0..6u32 {
            dwell = dwell.wrapping_mul(5).wrapping_add(load) >> 2;
            dacc = dacc.wrapping_add(dwell & 0x1F);
            dwell ^= rpm.rotate_right(t + 1);
        }
        let v = clamped.wrapping_add(dacc & 0x3FF);
        sum = sum.wrapping_add(v);
        out.push(v);
    }
    (sum, out)
}

fn build() -> Module {
    let mut b = FunctionBuilder::new("ttsprk", 3);
    let inp = b.param(0);
    let outp = b.param(1);
    let n = b.param(2);
    let sum = b.imm(0);
    let i = b.imm(0);
    let prev = b.imm(10);
    let adv = b.imm(0);
    let hdr = b.new_block();
    let body = b.new_block();
    let m0 = b.new_block();
    let m1 = b.new_block();
    let m2 = b.new_block();
    let m3 = b.new_block();
    let join = b.new_block();
    let exit = b.new_block();
    b.br(hdr);
    b.switch_to(hdr);
    b.cond_br(CmpKind::Ult, i, n, body, exit);
    b.switch_to(body);
    let off = b.bin(BinOp::Shl, i, 2u32);
    let w = b.load(inp, off);
    let rpm_raw = b.bin(BinOp::And, w, 0x3FFFu32);
    let rpm = b.bin(BinOp::Or, rpm_raw, 1u32);
    let load = b.extract_bits(w, 14, 8, false);
    let mode = b.extract_bits(w, 22, 2, false);
    b.switch(mode, 0, vec![m0, m1, m2], m3);

    b.switch_to(m0);
    let q0 = b.bin(BinOp::Udiv, load, 4u32);
    b.bin_into(adv, BinOp::Add, q0, 10u32);
    b.br(join);

    b.switch_to(m1);
    let q1 = b.bin(BinOp::Udiv, 600_000u32, rpm);
    b.bin_into(adv, BinOp::Add, q1, load);
    b.br(join);

    b.switch_to(m2);
    let q2 = b.bin(BinOp::Udiv, rpm, 64u32);
    b.bin_into(adv, BinOp::Sub, load, q2);
    b.br(join);

    b.switch_to(m3);
    b.assign(adv, prev);
    b.br(join);

    b.switch_to(join);
    let nonneg = b.select(CmpKind::Slt, adv, 0u32, 0u32, adv);
    let clamped = b.select(CmpKind::Ugt, nonneg, 60u32, 60u32, nonneg);
    b.assign(prev, clamped);
    // dwell-time shaping (6 coil-charge steps)
    let dwell = b.copy(clamped);
    let dacc = b.imm(0);
    let t = b.imm(0);
    let d_hdr = b.new_block();
    let d_body = b.new_block();
    let d_done = b.new_block();
    b.br(d_hdr);
    b.switch_to(d_hdr);
    b.cond_br(CmpKind::Ult, t, 6u32, d_body, d_done);
    b.switch_to(d_body);
    let d5 = b.bin(BinOp::Mul, dwell, 5u32);
    let dl = b.bin(BinOp::Add, d5, load);
    b.bin_into(dwell, BinOp::Lshr, dl, 2u32);
    let low = b.bin(BinOp::And, dwell, 0x1Fu32);
    b.bin_into(dacc, BinOp::Add, dacc, low);
    let t1 = b.bin(BinOp::Add, t, 1u32);
    let rot = b.bin(BinOp::Rotr, rpm, t1);
    b.bin_into(dwell, BinOp::Xor, dwell, rot);
    b.assign(t, t1);
    b.br(d_hdr);
    b.switch_to(d_done);
    let daccm = b.bin(BinOp::And, dacc, 0x3FFu32);
    let v = b.bin(BinOp::Add, clamped, daccm);
    b.bin_into(sum, BinOp::Add, sum, v);
    let ooff = b.bin(BinOp::Shl, i, 2u32);
    b.store(outp, ooff, v);
    b.bin_into(i, BinOp::Add, i, 1u32);
    b.br(hdr);

    b.switch_to(exit);
    b.ret(Some(sum.into()));
    let mut m = Module::new();
    m.add_function(b.build());
    m
}

/// The `ttsprk` kernel.
#[must_use]
pub fn kernel() -> Kernel {
    Kernel {
        name: "ttsprk",
        description: "tooth-to-spark advance with mode switch and divides",
        module: build(),
        default_elems: 256,
        gen_input,
        reference,
    }
}
