//! # alia-workloads — AutoIndy-like automotive benchmark kernels
//!
//! The paper's Table 1 reports the geometric mean of "the 6 available
//! AutoIndy benchmarks". The EEMBC sources are licensed, so this crate
//! implements the *documented function* of each kernel from scratch in
//! TIR: angle-to-time conversion, calibration-table interpolation,
//! tooth-to-spark timing, PWM, road speed and CAN frame decoding, plus
//! `bitmnp` and `matrix` as extras. Each kernel ships a deterministic
//! input generator and a pure-Rust reference implementation; the TIR is
//! validated against the reference in this crate's tests, and the
//! compiled machine code is validated against the TIR downstream.
//!
//! # Examples
//!
//! ```
//! use alia_workloads::{autoindy, all_kernels};
//! let suite = autoindy();
//! assert_eq!(suite.len(), 6);
//! for k in &suite {
//!     // interpreter and reference agree
//!     assert_eq!(k.run_interp(1, 32), k.run_reference(1, 32));
//! }
//! assert_eq!(all_kernels().len(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kernel;
mod kernels;

pub use kernel::{masked, rng, Kernel, DATA_BASE};
pub use kernels::{all_kernels, autoindy, kernel_by_name};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_matches_its_reference() {
        for k in all_kernels() {
            for seed in [0u64, 1, 42, 0xDEAD] {
                k.verify(seed, 64);
            }
        }
    }

    #[test]
    fn kernels_are_seed_deterministic() {
        for k in all_kernels() {
            assert_eq!(k.run_interp(7, 32), k.run_interp(7, 32), "{}", k.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Sanity: the generators actually vary with the seed.
        let k = all_kernels().remove(0);
        assert_ne!(k.run_interp(1, 64), k.run_interp(2, 64));
    }

    #[test]
    fn edge_element_counts() {
        for k in all_kernels() {
            k.verify(5, 1);
            if k.name != "matrix" {
                k.verify(5, 2);
            }
        }
    }

    #[test]
    fn autoindy_is_subset_of_all() {
        let all: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        for k in autoindy() {
            assert!(all.contains(&k.name));
        }
    }

    #[test]
    fn kernel_metadata_consistent() {
        for k in all_kernels() {
            assert!(!k.description.is_empty());
            assert!(k.default_elems > 0);
            assert!(k.module.func_by_name(k.name).is_some(), "{} entry missing", k.name);
            assert!(k.input_len(4) > 0);
            assert!(k.output_base(4) > DATA_BASE);
        }
    }
}
