//! Body-control network scenario: many small modules, one CAN bus.
//!
//! The paper's low-cost end: window lifts, seats and mirrors on
//! M3-class nodes. This example plans MPU isolation for the module set
//! (Figure 2), processes CAN traffic with the `canrdr` kernel, runs the
//! bus simulator against the analytic bounds, boots two real ECUs on a
//! shared CAN wire (producer/consumer plus a watchdog stall detector),
//! and finishes with the §1/§4 "virtual multi-core" allocation
//! comparison.
//!
//! Run with: `cargo run -p alia-core --example body_network`

use alia_core::prelude::*;
use alia_core::run_kernel;
use can::{can_response_times, CanBus, CanFrame, CanId, CanMessage};
use codegen::CodegenOptions;
use rtos::{body_control_footprints, plan_isolation};
use sim::{MachineConfig, MpuKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Module isolation on the two MPU generations. ------------
    let modules = body_control_footprints(16);
    for kind in [MpuKind::Classic, MpuKind::FineGrain] {
        let plan = plan_isolation(kind, &modules, 0x2000_0000);
        println!(
            "{:?} MPU: {}/{} modules individually isolated, {:.2}x RAM waste",
            kind,
            plan.isolated_tasks,
            modules.len(),
            plan.waste_ratio
        );
    }

    // --- 2. Decode CAN traffic with the canrdr kernel on an M3. -----
    let kernels = workloads::autoindy();
    let canrdr = kernels.iter().find(|k| k.name == "canrdr").expect("kernel");
    let run = run_kernel(canrdr, MachineConfig::m3_like(), &CodegenOptions::default(), 5, 128)?;
    println!(
        "\ncanrdr on the M3-class node: 128 frames decoded in {} cycles ({:.1}/frame)",
        run.cycles,
        run.cycles as f64 / 128.0
    );

    // --- 3. Bus traffic: simulation vs analysis. ---------------------
    let streams = [
        CanMessage { id: 0x110, dlc: 2, extended: false, period: 2_000, jitter: 0, deadline: 2_000 },
        CanMessage { id: 0x220, dlc: 4, extended: false, period: 5_000, jitter: 0, deadline: 5_000 },
        CanMessage { id: 0x330, dlc: 8, extended: false, period: 10_000, jitter: 0, deadline: 10_000 },
    ];
    let rta = can_response_times(&streams);
    let mut bus = CanBus::new();
    for (node, s) in streams.iter().enumerate() {
        let frame = CanFrame::new(CanId::Standard(s.id as u16), &vec![0xA5; s.dlc as usize]);
        let mut t = 0;
        while t < 200_000 {
            bus.enqueue(t, node, frame);
            t += s.period;
        }
    }
    bus.run(200_000);
    println!("\nbus @ {:.1}% utilization:", bus.utilization() * 100.0);
    for (s, r) in streams.iter().zip(&rta) {
        let worst = bus.worst_latency(CanId::Standard(s.id as u16)).unwrap_or(0);
        println!(
            "  id {:#05x}: simulated worst {:>4} bit-times, analytic bound {:>4} -> {}",
            s.id,
            worst,
            r.response.unwrap_or(0),
            if u64::from(worst as u32) <= r.response.unwrap_or(0) { "holds" } else { "VIOLATED" }
        );
    }

    // --- 4. Guest-driven devices: the node's firmware talks to its ---
    // CAN controller and pacing timer purely through loads and stores
    // (the memory-mapped device bus), not host-side calls.
    let x = alia_core::experiments::guest_can_exchange(8)?;
    println!("\n{x}");

    // --- 5. Two real ECUs on one shared wire. ------------------------
    // A producer ECU samples its timer and ships frames; a consumer ECU
    // checksums them — two `Machine`s under the deterministic
    // multi-node scheduler (`alia_sim::System`), frames arbitrated on a
    // `SharedCanBus`.
    let m = alia_core::experiments::multi_ecu_exchange(64)?;
    println!("\n{m}");
    assert_eq!(
        m.checksum,
        alia_core::experiments::guest_can_exchange_checksum(64),
        "the consumer's checksum is deterministic"
    );

    // And the classic failure mode: the producer goes silent after 10
    // of 32 frames, and the consumer's watchdog (NMI) detects it.
    let w = alia_core::experiments::multi_ecu_watchdog(32, 10)?;
    println!("{w}");

    // --- 6. The harmonized virtual multi-core. -----------------------
    let e = alia_core::experiments::network_experiment(8, 4)?;
    println!("\n{e}");
    Ok(())
}
