//! Engine-control scenario: the paper's "tooth-to-spark" world.
//!
//! Puts the pieces together the way an engine-management ECU would:
//! the `ttsprk` kernel compiled and timed on the high-end core, an
//! OSEK task set for the engine domain checked with response-time
//! analysis *and* by simulation, and the crank-wheel interrupt serviced
//! under the NMI-capable fast-interrupt scheme of §3.1.2.
//!
//! Run with: `cargo run -p alia-core --example engine_control`

use alia_core::prelude::*;
use alia_core::run_kernel;
use codegen::CodegenOptions;
use rtos::{response_time_analysis, AlarmSpec, AnalysisTask, Kernel as Osek, TaskSpec};
use sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The tooth-to-spark kernel on the high-end core. ---------
    let kernels = workloads::all_kernels();
    let ttsprk = kernels.iter().find(|k| k.name == "ttsprk").expect("kernel");
    let opts = CodegenOptions::default();
    let run = run_kernel(ttsprk, MachineConfig::high_end_like(), &opts, 9, 256)?;
    println!(
        "ttsprk on the high-end core: {} events in {} cycles ({:.1} cycles/event)",
        256,
        run.cycles,
        run.cycles as f64 / 256.0
    );

    // --- 2. The engine OSEK task set: analysis... -------------------
    // Periods in microseconds at 6000 rpm: spark every 2.5 ms per
    // cylinder group, injection 5 ms, knock filter 10 ms, diagnostics
    // 100 ms.
    let set = [
        AnalysisTask::new(8, 300, 2_500),
        AnalysisTask::new(6, 900, 5_000),
        AnalysisTask::new(4, 1_500, 10_000),
        AnalysisTask::new(2, 9_000, 100_000),
    ];
    let names = ["spark", "inject", "knock", "diag"];
    let rta = response_time_analysis(&set);
    println!("\nOSEK engine task set (response-time analysis):");
    for ((name, task), resp) in names.iter().zip(&set).zip(&rta) {
        println!(
            "  {:<8} C={:<6} T={:<7} R={:<6} {}",
            name,
            task.wcet,
            task.period,
            resp.response.map_or_else(|| "-".into(), |r| r.to_string()),
            if resp.schedulable { "ok" } else { "MISS" }
        );
    }

    // --- ...and the same set under the discrete-event kernel. -------
    let mut osek = Osek::new();
    let ids: Vec<_> = names
        .iter()
        .zip(&set)
        .map(|(n, t)| {
            osek.add_task(TaskSpec::simple(*n, t.priority, t.wcet).with_deadline(t.deadline))
        })
        .collect();
    for (id, t) in ids.iter().zip(&set) {
        osek.add_alarm(AlarmSpec { task: *id, offset: 0, period: t.period });
    }
    osek.run(1_000_000);
    println!("simulated over 1s of engine time:");
    for (name, id) in names.iter().zip(&ids) {
        let st = osek.task_stats(*id);
        println!(
            "  {:<8} {} activations, worst response {}, {} deadline misses",
            name, st.completed, st.worst_response, st.deadline_misses
        );
    }

    // --- 3. The crank sensor as an NMI-capable fast interrupt. ------
    let e = alia_core::experiments::interrupt_experiment()?;
    println!(
        "\ncrank-interrupt service (hardware scheme): {} cycles to useful work, \
         {} for two back-to-back events ({} tail-chained)",
        e.hardware.useful_latency, e.hardware.back_to_back_total, e.hardware.tail_chained
    );
    Ok(())
}
