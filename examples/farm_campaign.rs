//! E12 — the simulation farm: a 1000-run soft-error Monte Carlo and a
//! fault-seed sweep over forked gateway snapshots.
//!
//! The base 3-wire / 5-node gateway topology is built and warmed once;
//! every campaign run `fork()`s it (copy-on-write memory, detached
//! wires) and fans out over a worker pool. The merged summary is a
//! pure function of the run keys — bit-identical at any worker count —
//! which this example cross-checks before trusting the big campaign.
//!
//! Run with: `cargo run --release -p alia-core --example farm_campaign`

use alia_core::experiments::farm_experiment;
use alia_core::prelude::can::ErrorState;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Determinism cross-check first, on a small campaign: one worker
    // and eight workers must merge to the same summary, digest and all.
    let one = farm_experiment(64, 8, 1)?;
    let eight = farm_experiment(64, 8, 8)?;
    assert_eq!(one, eight, "the campaign summary must not depend on the worker pool");
    println!("warm-up: 64+8 runs merge identically at 1 and 8 workers\n");

    // The capstone campaign: 1000 soft-error runs and a 48-seed fault
    // sweep, fanned over four workers.
    let e = farm_experiment(1000, 48, 4)?;
    println!("{e}");

    assert_eq!(e.flip.total(), 1000);
    assert!(e.flip.masked > 0, "benign and pad flips must be masked");
    assert!(e.flip.corrupted + e.flip.hung > 0, "code flips must break some missions");
    assert_eq!(e.incidence.iter().sum::<u32>(), 48);
    assert!(
        e.incidence.iter().all(|&n| n > 0),
        "the sweep must populate all three confinement bands"
    );
    assert!(e.losses_only_at_bus_off, "only a bus-off purge may shed mission frames");
    assert_eq!(e.e11_band, ErrorState::BusOff);

    println!("\n1000 forked soft-error runs classified; the fault-seed sweep walked");
    println!("the sensors through all three confinement bands, and every lost");
    println!("mission frame is explained by a bus-off purge — E11's single storm");
    println!("is the degenerate bus-off point of this population.");
    Ok(())
}
