//! CAN fault injection: the degradation study on the gateway network.
//!
//! The clean gateway topology (`gateway_network` example) validates
//! executed traffic against analytic response bounds. This example
//! breaks the sensor wire on purpose, twice:
//!
//! 1. **Transient error burst** — seeded bit errors corrupt in-flight
//!    frames; every corruption costs an error frame and a
//!    retransmission. Latencies degrade but stay within Tindell's
//!    error-extended bounds, no frame is lost, and traffic released
//!    after the burst meets the clean bounds again.
//! 2. **Babbling idiot** — a rogue station floods the wire with a
//!    top-priority id. Its corrupted attempts drive it through
//!    error-passive to bus-off (fault confinement removes it), a
//!    second rogue's valid garbage is stopped by guest-programmed
//!    acceptance filters and the gateway routing table, and the victim
//!    streams still meet their clean-traffic bounds.
//!
//! Run with: `cargo run -p alia-core --example faulty_network`

use alia_can::ErrorState;
use alia_core::experiments::{
    babbling_idiot_experiment, error_burst_experiment, error_burst_experiment_with,
};
use alia_core::prelude::sim::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Transient error burst: degrade, then recover. ------------
    let burst = error_burst_experiment(8, 11)?;
    println!("{burst}\n");
    assert!(burst.consumed >= 1, "the burst must corrupt at least one frame");
    assert!(burst.graceful(), "degradation must respect the error-extended bounds");

    // --- 2. Babbling idiot: confinement and containment. -------------
    let babble = babbling_idiot_experiment(4)?;
    println!("{babble}\n");
    assert_eq!(babble.babbler_state, ErrorState::BusOff, "fault confinement fires");
    assert!(babble.contained(), "victims and checksum must ride out the storm");

    // --- 3. Faults are schedule-independent. -------------------------
    let other = error_burst_experiment_with(
        8,
        11,
        SystemConfig { quantum: Some(53), rotate_order: true, idle_stretch: false, threads: 2 },
    )?;
    assert_eq!(other, burst);
    println!(
        "schedule-independence: quantum 53 + rotated order + no idle-stretch \
         reproduced every error frame, retransmission stamp and state \
         transition bit-identically"
    );
    Ok(())
}
