//! Multi-bus gateway network: the executed-guest allocation study.
//!
//! The paper's §1/§4 describes the vehicle as a network of ECUs on
//! several buses joined by gateways. This example runs that topology
//! for real: two sensor ECUs on a sensor wire, a DMA-gateway ECU onto a
//! faster backbone, a second gateway onto the actuator wire, and a sink
//! ECU — five nodes, three wires, every frame produced by executed
//! guest code and forwarded by guest-programmed DMA routing tables.
//! Each wire's executed worst latencies and utilization are
//! cross-checked against the `can::rta` analytic bounds, composed hop
//! by hop in the holistic style (downstream release jitter = upstream
//! response bound + store-and-forward latency).
//!
//! Run with: `cargo run -p alia-core --example gateway_network`

use alia_core::experiments::{gateway_checksum, gateway_experiment, gateway_experiment_with};
use alia_core::prelude::sim::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The 3-wire / 5-node topology with executed guests. -------
    let e = gateway_experiment(16)?;
    println!("{e}");
    assert_eq!(e.checksum, gateway_checksum(16), "the sink's checksum is deterministic");

    // --- 2. Executed vs analytic, per wire. --------------------------
    for w in &e.wires {
        assert!(w.schedulable, "wire {}: stream set must be schedulable", w.name);
        assert!(
            w.within_bounds(),
            "wire {}: executed latency exceeded its analytic bound",
            w.name
        );
    }
    println!("\nevery wire's executed worst latency is within its analytic bound");

    // --- 3. Determinism: the same topology under a different schedule.
    let other = gateway_experiment_with(
        16,
        SystemConfig { quantum: Some(53), rotate_order: true, idle_stretch: false, threads: 2 },
    )?;
    assert_eq!(other.checksum, e.checksum);
    assert_eq!(other.delivery_logs, e.delivery_logs);
    assert_eq!(other.end_to_end, e.end_to_end);
    println!(
        "schedule-independence: quantum 53 + rotated order + no idle-stretch \
         reproduced every wire's delivery log bit-identically \
         ({} vs {} quanta)",
        other.quanta, e.quanta
    );
    Ok(())
}
