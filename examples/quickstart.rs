//! Quickstart: the three-encodings-one-ISA story in fifty lines.
//!
//! Builds one small TIR function, compiles it for the `A32`, `T16` and
//! `T2` encodings, runs each on the matching simulated core and prints
//! code size and cycles — Table 1 in miniature.
//!
//! Run with: `cargo run -p alia-core --example quickstart`

use alia_core::prelude::*;
use alia_core::run_kernel;
use codegen::CodegenOptions;
use isa::IsaMode;
use sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Hand-written assembly on the M3-class core.
    let program = isa::Assembler::new(IsaMode::T2).assemble(
        "mov r0, #0
         mov r1, #10
         loop: add r0, r0, r1
         sub r1, r1, #1
         cmp r1, #0
         bne loop
         bkpt #0",
    )?;
    let mut m = sim::Machine::m3_like();
    m.load_flash(0x100, &program.bytes);
    m.set_pc(0x100);
    let result = m.run(10_000);
    println!(
        "assembly demo: r0 = {} after {} cycles ({:?})",
        m.cpu.regs[0], result.cycles, result.reason
    );

    // 2. One benchmark kernel across the three configurations.
    let kernels = workloads::autoindy();
    let kernel = kernels.iter().find(|k| k.name == "puwmod").expect("kernel");
    let opts = CodegenOptions::default();
    println!("\n{:<22} {:>10} {:>12}", "configuration", "bytes", "cycles");
    let configs: [(&str, MachineConfig); 3] = [
        ("ARM7-class / A32", MachineConfig::arm7_like(IsaMode::A32)),
        ("ARM7-class / T16", MachineConfig::arm7_like(IsaMode::T16)),
        ("M3-class   / T2", MachineConfig::m3_like()),
    ];
    for (label, config) in configs {
        let run = run_kernel(kernel, config, &opts, 42, 64)?;
        println!("{label:<22} {:>10} {:>12}", run.code_size, run.cycles);
    }
    println!("\nThe blended T2 encoding is both the smallest and the fastest —");
    println!("the paper's Table 1 claim, regenerated in full by:");
    println!("    cargo run -p alia-bench --bin table1");
    Ok(())
}
