//! The executed RTOS tier: a preemptive guest kernel on a simulated
//! ECU inside the gateway network.
//!
//! Four workload-kernel tasks run under timer-driven fixed-priority
//! preemption on one ECU; one of them ships a CAN frame per completion
//! through both gateways to the sink. Every scheduling event is
//! cycle-stamped, and validation closes the loop at both layers: each
//! task's executed worst-case response stays within its
//! `rtos::analysis` RTA bound, and the TX stream's executed wire
//! latency stays within the `can::rta` bound with the CPU-level bound
//! inherited as release jitter (holistic composition).
//!
//! Run with: `cargo run -p alia-core --example rtos_network`

use alia_core::experiments::{
    rtos_exec_checksum, rtos_exec_experiment, rtos_exec_experiment_with, rtos_jitter_study,
};
use alia_core::prelude::sim::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The preemptive ECU inside the 3-wire network. ------------
    let e = rtos_exec_experiment(8)?;
    println!("{e}");
    assert_eq!(e.checksum, rtos_exec_checksum(8, e.tx_frames), "sink checksum is closed-form");
    assert!(e.preemptions() > 0, "the mission must exercise real preemption");

    // --- 2. Executed vs analytic, both layers. -----------------------
    assert!(e.within_bounds(), "executed responses exceeded analytic bounds");
    println!("\nevery executed WCRT and wire latency is within its analytic bound");

    // --- 3. Determinism: the preemption trace across schedules. ------
    let other = rtos_exec_experiment_with(
        8,
        SystemConfig { quantum: Some(53), rotate_order: true, idle_stretch: false, threads: 2 },
    )?;
    assert_eq!(other.stats, e.stats, "preemption trace must be schedule-independent");
    assert_eq!(other.checksum, e.checksum);
    println!("preemption trace bit-identical across scheduler configurations");

    // --- 4. The activation-phasing jitter study. ---------------------
    let seeds: Vec<u64> = (0..4).map(|k| 0xBEEF + 13 * k).collect();
    let study = rtos_jitter_study(&seeds, 2)?;
    println!("\n{study}");
    assert!(study.within_bounds(), "no phasing may cross the critical-instant bound");
    Ok(())
}
