//! Soft-error campaign: §3.1.3 as a safety-engineering workflow.
//!
//! Runs the full fault-injection campaign against the high-end core's
//! fault-tolerant RAM, then demonstrates the calibration-time flash
//! patching of §3.2.2 — the two "dependability" features the paper gives
//! the high-end automotive core.
//!
//! Run with: `cargo run -p alia-core --example soft_error_campaign`

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = alia_core::experiments::soft_error_experiment(8)?;
    println!("{campaign}");
    for arm in &campaign.arms {
        assert!(arm.checksum_ok, "protected arm must stay correct");
    }
    println!("\nEvery injected error was detected; every run finished with the");
    println!("correct checksum; the unprotected control arm corrupted silently.");

    let patch = alia_core::experiments::flash_patch_experiment()?;
    println!("\n{patch}");
    println!("Calibration engineers change constants and plant breakpoints");
    println!("without reflashing — the paper's 'dynamic download' workflow.");
    Ok(())
}
