//! Unified tracing end to end: the E10 gateway mission recorded as one
//! cycle-stamped structured event stream and exported for standard
//! viewers.
//!
//! Runs the 3-wire / 5-node gateway topology with every trace category
//! enabled, then:
//!
//! * exports the Chrome trace-event JSON (`gateway.trace.json`) — open
//!   it at <https://ui.perfetto.dev> to see per-node tracks of tier
//!   promotions, IRQ activity, WFI sleeps, DMA forwards and wire
//!   arbitration wins on one zoomable timeline;
//! * derives the signal-shaped slice as a VCD waveform (`gateway.vcd`)
//!   for GTKWave/Surfer;
//! * validates both files structurally by parsing them back, and
//!   cross-checks the semantic trace hash against a differently
//!   scheduled run (the recorded stream obeys the same determinism
//!   contract as the simulation itself).
//!
//! Run with: `cargo run -p alia-core --example trace_gateway`

use alia_core::experiments::{gateway_checksum, gateway_experiment_traced};
use alia_core::prelude::obs::{category, chrome, vcd};
use alia_core::prelude::sim::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The E10 mission, fully traced. ---------------------------
    let (e, trace) = gateway_experiment_traced(16, SystemConfig::default(), category::ALL)?;
    assert_eq!(e.checksum, gateway_checksum(16), "the traced run is still the E10 run");
    println!("{e}");
    println!(
        "\ntraced {} events over {} streams:",
        trace.total_events(),
        trace.streams.len()
    );
    for s in &trace.streams {
        println!("  {:<10} {:>6} events", s.label, s.events.len());
    }

    // --- 2. Chrome trace-event JSON (Perfetto / chrome://tracing). ---
    let json = chrome::export(&trace);
    std::fs::write("gateway.trace.json", &json)?;
    let summary = chrome::validate(&json).map_err(|e| format!("chrome trace invalid: {e}"))?;
    println!(
        "\ngateway.trace.json: {} processes, {} instants + {} spans — load it at ui.perfetto.dev",
        summary.processes.len(),
        summary.instants,
        summary.completes
    );

    // --- 3. VCD waveform (GTKWave / Surfer). -------------------------
    let signals = vcd::from_trace(&trace);
    let dump = vcd::export("1ns", "gateway", &signals);
    std::fs::write("gateway.vcd", &dump)?;
    let parsed = vcd::parse(&dump).map_err(|e| format!("vcd invalid: {e}"))?;
    assert_eq!(parsed, signals, "the VCD dump must round-trip exactly");
    println!(
        "gateway.vcd: {} signals, {} value changes",
        signals.len(),
        signals.iter().map(|s| s.changes.len()).sum::<usize>()
    );

    // --- 4. The trace is as deterministic as the simulation. ---------
    let semantic = trace.fnv_hash(category::SEMANTIC);
    let (_, other) = gateway_experiment_traced(
        16,
        SystemConfig { quantum: Some(53), rotate_order: true, idle_stretch: false, threads: 4 },
        category::ALL,
    )?;
    assert_eq!(
        other.fnv_hash(category::SEMANTIC),
        semantic,
        "semantic trace hash must be schedule-independent"
    );
    println!(
        "\nsemantic trace hash {semantic:#018x} is bit-identical under quantum 53, \
         rotated order, no idle-stretch, 4 threads"
    );
    Ok(())
}
