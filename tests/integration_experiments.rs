//! End-to-end experiment integration: every table/figure experiment runs
//! and reproduces the paper's qualitative shape (see EXPERIMENTS.md for
//! the quantitative record).

use alia_core::experiments;

#[test]
fn e1_table1_full_shape() {
    let t = experiments::table1(7, 64).expect("E1 runs");
    let a32 = &t.rows[0];
    let t16 = &t.rows[1];
    let t2 = &t.rows[2];
    // Performance ordering: T2 > A32 > T16 (paper: 137% / 100% / 79%).
    assert!(t2.gm_perf > a32.gm_perf);
    assert!(a32.gm_perf > t16.gm_perf);
    // Code density: both Thumb-class encodings well under A32 (paper: 57%).
    assert!(t16.size_pct < 80.0);
    assert!(t2.size_pct < 60.0);
    // T2 within the plausible band around the paper's 137%.
    assert!(
        t2.perf_pct > 110.0 && t2.perf_pct < 220.0,
        "T2 perf {:.0}% out of band",
        t2.perf_pct
    );
}

#[test]
fn e2_mpu_shape() {
    let e = experiments::mpu_experiment(24).expect("E2 runs");
    assert!(e.fine.isolated_tasks >= 2 * e.classic.isolated_tasks);
    assert!(e.classic.waste_ratio / e.fine.waste_ratio > 3.0);
}

#[test]
fn e3_interrupt_shape() {
    let e = experiments::interrupt_experiment().expect("E3 runs");
    assert!(e.hardware.useful_latency < e.software.useful_latency);
    // Back-to-back: tail-chaining must save a large fraction.
    assert!(e.hardware.back_to_back_total * 3 < e.software.back_to_back_total * 2);
    assert_eq!(e.hardware.tail_chained, 1);
}

#[test]
fn e4_bitband_shape() {
    let e = experiments::bitband_experiment(10_000).expect("E4 runs");
    assert!(e.speedup >= 3.0, "got {:.2}x", e.speedup);
}

#[test]
fn e5_flash_shape() {
    let e = experiments::flash_experiment(4, 200).expect("E5 runs");
    // The paper's '15% is possible' appears within the sweep.
    assert!(
        e.points.iter().any(|p| p.degradation_pct >= 10.0),
        "no point reached 10%: {:?}",
        e.points
    );
    // At zero extra wait states the strategies tie.
    assert!(e.points[0].degradation_pct.abs() < 2.0);
}

#[test]
fn e6_ldm_shape() {
    let e = experiments::ldm_experiment(96).expect("E6 runs");
    assert!(e.interruptible_worst < e.atomic_worst);
    assert!(e.interruptible_mean <= e.atomic_mean);
}

#[test]
fn e7_soft_error_shape() {
    let e = experiments::soft_error_experiment(6).expect("E7 runs");
    assert!(e.arms.iter().all(|a| a.checksum_ok));
    assert!(e.arms.iter().all(|a| a.detected >= u64::from(a.injected)));
    assert!(e.tcm_unprotected_corrupts);
}

#[test]
fn e8_network_shape() {
    let e = experiments::network_experiment(8, 4).expect("E8 runs");
    assert!(e.harmonized.placed > e.dedicated.placed);
    // Code reuse: the harmonized fleet ships one binary per function.
    assert!(e.harmonized.code_bytes < e.dedicated.code_bytes);
    assert!(e.harmonized.bus_schedulable);
}

#[test]
fn e8_guest_can_exchange_is_pure_load_store() {
    // The memory-mapped CAN controller + timer path: a guest program
    // exchanges frames and takes timer IRQs with no host-side bus calls.
    let e = experiments::guest_can_exchange(12).expect("exchange completes");
    assert_eq!(e.frames_sent, 12);
    assert_eq!(e.frames_received, 12);
    assert_eq!(e.checksum, experiments::guest_can_exchange_checksum(12));
    assert!(e.timer_fires >= 12);
}

#[test]
fn e9_flash_patch_shape() {
    let e = experiments::flash_patch_experiment().expect("E9 runs");
    assert_ne!(e.baseline_output, e.patched_output);
    assert!(e.breakpoint_hit);
}

#[test]
fn every_experiment_renders_a_table() {
    // Each Display impl must produce non-trivial printable output.
    assert!(experiments::table1(1, 16).unwrap().to_string().lines().count() >= 4);
    assert!(experiments::mpu_experiment(8).unwrap().to_string().len() > 80);
    assert!(experiments::interrupt_experiment().unwrap().to_string().len() > 80);
    assert!(experiments::bitband_experiment(1000).unwrap().to_string().len() > 60);
    assert!(experiments::flash_experiment(2, 50).unwrap().to_string().len() > 60);
    assert!(experiments::ldm_experiment(16).unwrap().to_string().len() > 60);
    assert!(experiments::network_experiment(4, 2).unwrap().to_string().len() > 60);
    assert!(experiments::flash_patch_experiment().unwrap().to_string().len() > 60);
}
