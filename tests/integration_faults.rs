//! Fault-injection integration: the CAN fault layer (error frames,
//! bus-off confinement, babbling-idiot arms) against the whole stack —
//! executed guests, gateways, acceptance filters — and the determinism
//! contract under faults: every fault-driven artifact (error-state
//! transitions, retransmission stamps, wire logs with error frames,
//! checksums) must be bit-identical across scheduler configurations.

use alia_can::ErrorState;
use alia_core::experiments::{
    babbling_idiot_experiment, babbling_idiot_experiment_with, error_burst_experiment,
    error_burst_experiment_with, recovery_experiment, recovery_experiment_with,
};
use alia_core::prelude::sim::SystemConfig;

/// The scheduler sweep: quantum sizes through the middle of guest hot
/// loops, rotated service orders, idle-stretch on and off, and worker
/// thread counts for the parallel node-advance phase — fault artifacts
/// must be bit-identical across all of it.
const SWEEP: [(Option<u64>, bool, bool, usize); 6] = [
    (None, true, true, 1),
    (None, false, false, 4),
    (Some(41), false, true, 2),
    (Some(97), true, false, 8),
    (Some(131), false, true, 3),
    (Some(1_000_000), false, true, 2), // clamped to the min wire lookahead
];

#[test]
fn error_burst_is_deterministic_across_schedules() {
    // The full report — wire log with error frames and per-attempt
    // stamps, injection counters, latency-vs-bound tables — is one
    // deep signature; any scheduler dependence in the fault path shows
    // up as a field mismatch.
    let baseline = error_burst_experiment(8, 11).expect("completes");
    assert!(baseline.consumed >= 1, "the sweep must exercise real error frames");
    assert!(baseline.sensor_log.iter().any(|(_, _, _, data)| !data), "log shows error frames");
    assert!(baseline.sensor_log.iter().any(|(_, _, attempt, data)| *data && *attempt > 1));
    for (quantum, rotate, stretch, threads) in SWEEP {
        let run = error_burst_experiment_with(
            8,
            11,
            SystemConfig { quantum, rotate_order: rotate, idle_stretch: stretch, threads },
        )
        .expect("completes");
        assert_eq!(run, baseline, "q={quantum:?} r={rotate} s={stretch} t={threads}");
    }
}

#[test]
fn babbling_idiot_is_deterministic_across_schedules() {
    // Bus-off is reached through 32 wire-time-stamped transitions and a
    // queue purge — all of it must be schedule-independent, including
    // the exact transition stamps in the state log.
    let baseline = babbling_idiot_experiment(4).expect("completes");
    assert_eq!(baseline.babbler_state, ErrorState::BusOff);
    assert_eq!(baseline.transitions.len(), 2);
    for (quantum, rotate, stretch, threads) in SWEEP {
        let run = babbling_idiot_experiment_with(
            4,
            SystemConfig { quantum, rotate_order: rotate, idle_stretch: stretch, threads },
        )
        .expect("completes");
        assert_eq!(run, baseline, "q={quantum:?} r={rotate} s={stretch} t={threads}");
    }
}

#[test]
fn mid_mission_recovery_is_deterministic_across_schedules() {
    // The recovery arc — error IRQ wakes, the guest's ERR_RECOVER
    // write, the 128 x 11-bit rejoin stamp, the held-back mission —
    // involves guest time, wire time and the scheduler at once; the
    // whole report must still be schedule-independent.
    let baseline = recovery_experiment(6).expect("completes");
    assert!(baseline.recovered(), "baseline must recover: {baseline}");
    for (quantum, rotate, stretch, threads) in SWEEP {
        let run = recovery_experiment_with(
            6,
            SystemConfig { quantum, rotate_order: rotate, idle_stretch: stretch, threads },
        )
        .expect("completes");
        assert_eq!(run, baseline, "q={quantum:?} r={rotate} s={stretch} t={threads}");
    }
}

#[test]
fn burst_seeds_vary_but_never_break_the_contract() {
    // Different seeds land different bursts — placement varies, but
    // graceful degradation (extended bounds, recovery, checksum) is
    // seed-independent.
    let mut distinct = std::collections::HashSet::new();
    for seed in [3, 11, 29] {
        let r = error_burst_experiment(8, seed).expect("completes");
        assert!(r.graceful(), "seed {seed} broke graceful degradation: {r}");
        distinct.insert(r.sensor_log.clone());
    }
    assert!(distinct.len() > 1, "seeds must actually move the burst");
}
