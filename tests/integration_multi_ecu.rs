//! Multi-ECU integration: the `System` scheduler, the shared CAN wire
//! and the watchdog against the whole stack — guest programs, the
//! interrupt machinery, and the analytic side (RTA bounds over the
//! traffic the exchange actually produced).

use alia_core::experiments::{
    gateway_checksum, gateway_experiment, gateway_experiment_with, guest_can_exchange_checksum,
    multi_ecu_exchange, multi_ecu_watchdog,
};
use alia_core::prelude::*;
use can::{can_response_times, CanMessage};

#[test]
fn two_ecus_exchange_64_frames_guest_to_guest() {
    // The PR's acceptance scenario: >= 64 frames over the shared wire,
    // deterministic checksum, both nodes halting cleanly.
    let e = multi_ecu_exchange(64).expect("exchange completes");
    assert_eq!(e.frames_sent, 64);
    assert_eq!(e.frames_received, 64);
    assert_eq!(e.checksum, guest_can_exchange_checksum(64));
    assert_eq!(e.delivery_log.len(), 64);
    // Deliveries complete in time order and strictly after their
    // predecessors (one wire, non-preemptive frames).
    assert!(e.delivery_log.windows(2).all(|w| w[0].1 < w[1].1));
}

// Scheduler determinism (quantum sizes, node orderings) is covered by
// the six-configuration sweep in
// `alia_core::experiments::network::tests::multi_ecu_schedule_is_deterministic`.

#[test]
fn block_engine_keeps_quantum_size_independence() {
    // The block engine must never execute past a quantum boundary: with
    // chaining on (the default), per-node cycles, registers, IRQ stamps
    // and the delivery log must stay bit-identical across quantum sizes
    // — and identical to per-step execution (blocks disabled on every
    // node). The quantum sweep moves the `run_until` bounds through the
    // middle of the guests' hot blocks.
    use alia_core::prelude::sim::{
        CanConfig, DeviceSpec, Machine, MachineConfig, SharedCanBus, System, SystemConfig,
        SystemStop, TimerConfig, CAN_BASE, SRAM_BASE, TIMER_BASE,
    };
    use isa::{Assembler, IsaMode};

    let asm = |src: &str| Assembler::new(IsaMode::T2).assemble(src).unwrap().bytes;
    let build = |quantum: Option<u64>, blocks: bool| -> System {
        let mut sys = System::with_config(SystemConfig {
            quantum,
            ..SystemConfig::default()
        });
        let wire: SharedCanBus = sys.shared_can_bus(4);
        let mut pconf = MachineConfig::m3_like();
        pconf.block_cache = blocks;
        pconf.devices = vec![
            DeviceSpec::Timer(TimerConfig { base: TIMER_BASE, irq: 0, compare: 700 }),
            DeviceSpec::SharedCan(
                CanConfig { base: CAN_BASE, irq: 1, node: 0, ..CanConfig::default() },
                wire.clone(),
            ),
        ];
        let main_p = asm(
            "movw r0, #0x1000
             movt r0, #0x4000
             movw r1, #700
             str r1, [r0, #4]
             mov r1, #3
             str r1, [r0, #0]
             spin: add r3, r3, #1
             eor r5, r5, r3
             cmp r4, #8
             blt spin
             movw r0, #0
             movt r0, #0x4000
             str r4, [r0, #0]
             halt: b halt",
        );
        let tx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             cmp r4, #8
             bge done
             movw r1, #0x80
             add r1, r1, r4
             str r1, [r0, #0]
             mov r1, #4
             str r1, [r0, #4]
             str r3, [r0, #8]
             mov r1, #0
             str r1, [r0, #16]
             add r4, r4, #1
             done: bx lr",
        );
        let mut p = Machine::new(pconf);
        p.load_flash(0x100, &main_p);
        p.load_flash(0x200, &tx_handler);
        p.load_flash(0, &0x200u32.to_le_bytes());
        p.set_pc(0x100);
        p.cpu.set_sp(SRAM_BASE + 0x8000);
        sys.add_node("producer", p);

        let mut cconf = MachineConfig::m3_like();
        cconf.block_cache = blocks;
        cconf.devices = vec![DeviceSpec::SharedCan(
            CanConfig { base: CAN_BASE, irq: 1, node: 1, ..CanConfig::default() },
            wire.clone(),
        )];
        let main_c = asm(
            "spin: add r3, r3, #1
             cmp r7, #8
             blt spin
             movw r0, #0
             movt r0, #0x4000
             str r6, [r0, #0]
             halt: b halt",
        );
        let rx_handler = asm(
            "movw r0, #0x2000
             movt r0, #0x4000
             rxloop: ldr r1, [r0, #20]
             cmp r1, #0
             beq rxdone
             ldr r1, [r0, #24]
             add r6, r6, r1
             ldr r1, [r0, #32]
             add r6, r6, r1
             str r1, [r0, #40]
             add r7, r7, #1
             b rxloop
             rxdone: bx lr",
        );
        let mut c = Machine::new(cconf);
        c.load_flash(0x100, &main_c);
        c.load_flash(0x200, &rx_handler);
        c.load_flash(4, &0x200u32.to_le_bytes());
        c.set_pc(0x100);
        c.cpu.set_sp(SRAM_BASE + 0x8000);
        sys.add_node("consumer", c);
        sys
    };

    let mut baseline = build(None, false); // per-step, default quanta
    let rb = baseline.run(10_000_000);
    assert_eq!(rb.reason, SystemStop::AllHalted);
    for (quantum, blocks) in [
        (None, true),
        (Some(41), true),
        (Some(97), true),
        (Some(150), true),
        (Some(1_000_000), true), // clamped to the wire lookahead
        (Some(97), false),
    ] {
        let mut sys = build(quantum, blocks);
        let r = sys.run(10_000_000);
        let what = format!("quantum={quantum:?} blocks={blocks}");
        assert_eq!(r.reason, rb.reason, "{what}");
        for i in 0..2 {
            assert_eq!(
                sys.node(i).halted(),
                baseline.node(i).halted(),
                "{what}: node {i} verdict"
            );
            assert_eq!(
                sys.node(i).cycles(),
                baseline.node(i).cycles(),
                "{what}: node {i} cycles"
            );
            assert_eq!(
                sys.node(i).machine().cpu.regs,
                baseline.node(i).machine().cpu.regs,
                "{what}: node {i} registers"
            );
            assert_eq!(
                sys.node(i).machine().latencies(),
                baseline.node(i).machine().latencies(),
                "{what}: node {i} IRQ stamps"
            );
        }
        assert_eq!(
            sys.wire().unwrap().delivery_log(),
            baseline.wire().unwrap().delivery_log(),
            "{what}: delivery log"
        );
        if blocks {
            let stats = sys.node(0).machine().predecode_stats();
            assert!(
                stats.block_hits > 0,
                "{what}: the producer's spin must dispatch blocks"
            );
        }
    }
}

#[test]
fn exchange_traffic_stays_within_its_analytic_bound() {
    // The producer ships one 4-byte frame every 600 cycles = 150 bit
    // times; CAN RTA for that single stream must bound the worst
    // latency the simulated wire actually produced.
    let e = multi_ecu_exchange(64).expect("completes");
    let stream = [CanMessage {
        id: 0x100,
        dlc: 4,
        extended: false,
        period: 150,
        jitter: 0,
        deadline: 150,
    }];
    let rta = can_response_times(&stream);
    assert!(rta[0].schedulable);
    let bound = rta[0].response.expect("bounded");
    // Per-frame wire latency from the delivery log: completion spacing
    // never exceeds the analytic response time plus the period.
    for pair in e.delivery_log.windows(2) {
        let gap_bits = (pair[1].1 - pair[0].1) / 4; // cycles -> bit times
        assert!(
            gap_bits <= bound + 150,
            "delivery gap {gap_bits} exceeds bound {bound} + period"
        );
    }
}

#[test]
fn gateway_topology_crosses_three_wires_cycle_exactly() {
    // The multi-bus acceptance scenario: frames originate on the sensor
    // wire and arrive on the actuator wire, DMA-forwarded twice and
    // id-rewritten per hop, with cycle-exact delivery stamps on every
    // wire.
    let e = gateway_experiment(12).expect("topology completes");
    assert_eq!(e.frames_delivered, 24);
    assert_eq!(e.checksum, gateway_checksum(12));
    assert_eq!(e.forwards, [24, 24], "both gateways forwarded every frame");
    assert_eq!(e.delivery_logs.len(), 3);
    // Per-wire id bands prove the rewrite happened at each hop.
    for (log, band) in e.delivery_logs.iter().zip([0x100u32, 0x300, 0x500]) {
        assert_eq!(log.len(), 24);
        assert!(
            log.iter().all(|(id, _)| *id == band || *id == band + 0x40),
            "wire band {band:#x}: {log:?}"
        );
        // Stamps are strictly increasing on one non-preemptive wire.
        assert!(log.windows(2).all(|w| w[0].1 < w[1].1));
    }
    // Causality: each hop's completion stamps trail the previous wire's.
    for k in 0..24 {
        assert!(e.delivery_logs[0][k].1 < e.delivery_logs[1][k].1);
        assert!(e.delivery_logs[1][k].1 < e.delivery_logs[2][k].1);
    }
}

#[test]
fn gateway_topology_is_deterministic_across_schedules() {
    // Per-node clocks, the sink checksum, every wire's delivery log,
    // the forward counters and the end-to-end latencies must be
    // bit-identical across quantum sizes, node service orders and the
    // idle-stretch — the multi-wire extension of the single-wire
    // determinism sweep.
    use alia_core::prelude::sim::SystemConfig;
    let baseline = gateway_experiment(10).expect("completes");
    assert_eq!(baseline.checksum, gateway_checksum(10));
    // Every node's clock is part of the signature — including the
    // gateways, which settle as parked-idle: the scheduler normalizes
    // parked clocks to the architectural sleep-entry cycle at
    // quiescence, so no exclusions are needed.
    assert_eq!(baseline.node_cycles.len(), 5);
    assert!(baseline.node_cycles.iter().all(|&c| c > 0), "all clocks architectural");
    for (quantum, rotate, stretch, threads) in [
        (None, true, true, 1),
        (None, false, false, 4),
        (Some(41), false, true, 2),
        (Some(97), true, false, 8),
        (Some(131), false, true, 5),
        (Some(1_000_000), false, true, 2), // clamped to the min wire lookahead
    ] {
        let run = gateway_experiment_with(
            10,
            SystemConfig { quantum, rotate_order: rotate, idle_stretch: stretch, threads },
        )
        .expect("completes");
        let what = format!("q={quantum:?} r={rotate} s={stretch} t={threads}");
        assert_eq!(run.checksum, baseline.checksum, "{what}");
        assert_eq!(run.node_cycles, baseline.node_cycles, "{what}: node clocks");
        assert_eq!(run.delivery_logs, baseline.delivery_logs, "{what}: wire logs");
        assert_eq!(run.forwards, baseline.forwards, "{what}: forward counters");
        assert_eq!(run.end_to_end, baseline.end_to_end, "{what}: end-to-end");
        assert_eq!(run.frames_delivered, baseline.frames_delivered, "{what}");
    }
}

#[test]
fn gateway_traffic_stays_within_rta_bounds_on_every_wire() {
    // Executed worst latencies never exceed the per-wire analytic
    // response bounds (jitter inherited hop by hop), and executed
    // utilization lands within tolerance of the analytic offered load.
    let e = gateway_experiment(16).expect("completes");
    for w in &e.wires {
        assert!(w.schedulable, "wire {}: analytic set must be schedulable", w.name);
        assert!(
            w.within_bounds(),
            "wire {}: executed latency exceeded its bound: {:?}",
            w.name,
            w.worst_latencies
        );
        assert_eq!(w.worst_latencies.len(), 2, "wire {}: both streams observed", w.name);
        assert!(
            w.utilization >= 0.4 * w.analytic_utilization
                && w.utilization <= 1.5 * w.analytic_utilization,
            "wire {}: executed utilization {:.3} vs analytic {:.3}",
            w.name,
            w.utilization,
            w.analytic_utilization
        );
    }
    // The backbone runs twice as fast: its analytic utilization must be
    // about half the edge wires'.
    assert!(e.wires[1].analytic_utilization < e.wires[0].analytic_utilization);
}

#[test]
fn watchdog_scenarios_cover_both_verdicts() {
    let stalled = multi_ecu_watchdog(48, 9).expect("completes");
    assert!(stalled.stall_detected);
    assert_eq!(stalled.frames_received, 9);
    assert_eq!(stalled.consumer_code, 0xDEAD_0000 | 9);

    let healthy = multi_ecu_watchdog(48, 48).expect("completes");
    assert!(!healthy.stall_detected);
    assert_eq!(healthy.consumer_code, guest_can_exchange_checksum(48));
    assert_eq!(healthy.watchdog_bites, 0);
}
