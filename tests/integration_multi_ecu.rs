//! Multi-ECU integration: the `System` scheduler, the shared CAN wire
//! and the watchdog against the whole stack — guest programs, the
//! interrupt machinery, and the analytic side (RTA bounds over the
//! traffic the exchange actually produced).

use alia_core::experiments::{
    guest_can_exchange_checksum, multi_ecu_exchange, multi_ecu_watchdog,
};
use alia_core::prelude::*;
use can::{can_response_times, CanMessage};

#[test]
fn two_ecus_exchange_64_frames_guest_to_guest() {
    // The PR's acceptance scenario: >= 64 frames over the shared wire,
    // deterministic checksum, both nodes halting cleanly.
    let e = multi_ecu_exchange(64).expect("exchange completes");
    assert_eq!(e.frames_sent, 64);
    assert_eq!(e.frames_received, 64);
    assert_eq!(e.checksum, guest_can_exchange_checksum(64));
    assert_eq!(e.delivery_log.len(), 64);
    // Deliveries complete in time order and strictly after their
    // predecessors (one wire, non-preemptive frames).
    assert!(e.delivery_log.windows(2).all(|w| w[0].1 < w[1].1));
}

// Scheduler determinism (quantum sizes, node orderings) is covered by
// the six-configuration sweep in
// `alia_core::experiments::network::tests::multi_ecu_schedule_is_deterministic`.

#[test]
fn exchange_traffic_stays_within_its_analytic_bound() {
    // The producer ships one 4-byte frame every 600 cycles = 150 bit
    // times; CAN RTA for that single stream must bound the worst
    // latency the simulated wire actually produced.
    let e = multi_ecu_exchange(64).expect("completes");
    let stream = [CanMessage {
        id: 0x100,
        dlc: 4,
        extended: false,
        period: 150,
        jitter: 0,
        deadline: 150,
    }];
    let rta = can_response_times(&stream);
    assert!(rta[0].schedulable);
    let bound = rta[0].response.expect("bounded");
    // Per-frame wire latency from the delivery log: completion spacing
    // never exceeds the analytic response time plus the period.
    for pair in e.delivery_log.windows(2) {
        let gap_bits = (pair[1].1 - pair[0].1) / 4; // cycles -> bit times
        assert!(
            gap_bits <= bound + 150,
            "delivery gap {gap_bits} exceeds bound {bound} + period"
        );
    }
}

#[test]
fn watchdog_scenarios_cover_both_verdicts() {
    let stalled = multi_ecu_watchdog(48, 9).expect("completes");
    assert!(stalled.stall_detected);
    assert_eq!(stalled.frames_received, 9);
    assert_eq!(stalled.consumer_code, 0xDEAD_0000 | 9);

    let healthy = multi_ecu_watchdog(48, 48).expect("completes");
    assert!(!healthy.stall_detected);
    assert_eq!(healthy.consumer_code, guest_can_exchange_checksum(48));
    assert_eq!(healthy.watchdog_bites, 0);
}
