//! Observability integration: the unified trace layer against the
//! whole stack. The semantic trace hash (every architectural category
//! — IRQ, WFI, wire, error, DMA, RTOS) must be bit-identical across
//! scheduler configurations and worker thread counts, for the plain
//! gateway mission (E10), the fault-injected burst (E11), and the
//! executed-RTOS network (E13); the exporters must round-trip a real
//! mission trace; and campaign metrics must merge to the same snapshot
//! at any worker count.

use alia_core::experiments::{
    error_burst_experiment_traced, farm_experiment, gateway_experiment_traced,
    rtos_exec_experiment_traced,
};
use alia_core::prelude::obs::{category, chrome, vcd, EventKind, TraceSet};
use alia_core::prelude::sim::SystemConfig;

/// The scheduler sweep: quantum sizes through the middle of guest hot
/// loops, rotated service orders, idle-stretch on and off, and worker
/// thread counts 1/2/4/8 for the parallel node-advance phase — the
/// semantic trace stream must be bit-identical across all of it.
const SWEEP: [(Option<u64>, bool, bool, usize); 6] = [
    (None, true, true, 1),
    (None, false, false, 4),
    (Some(41), false, true, 2),
    (Some(97), true, false, 8),
    (Some(131), false, true, 3),
    (Some(1_000_000), false, true, 2), // clamped to the min wire lookahead
];

fn sweep_configs() -> impl Iterator<Item = SystemConfig> {
    SWEEP.into_iter().map(|(quantum, rotate_order, idle_stretch, threads)| SystemConfig {
        quantum,
        rotate_order,
        idle_stretch,
        threads,
    })
}

/// The categories a trace exercises (union over all streams).
fn categories(set: &TraceSet) -> u32 {
    set.streams
        .iter()
        .flat_map(|s| s.events.iter())
        .fold(0, |acc, e| acc | e.kind.category())
}

#[test]
fn gateway_trace_is_bit_identical_across_the_sweep() {
    let (_, baseline) =
        gateway_experiment_traced(16, SystemConfig::default(), category::ALL).expect("completes");
    // The mission must actually light up the architectural categories
    // the hash pins — an empty trace is trivially "deterministic".
    let cats = categories(&baseline);
    for bit in [category::IRQ, category::WFI, category::WIRE, category::DMA, category::TIER] {
        assert!(cats & bit != 0, "missing {} events", category::name(bit));
    }
    let hash = baseline.fnv_hash(category::SEMANTIC);
    for cfg in sweep_configs() {
        let (_, t) = gateway_experiment_traced(16, cfg, category::ALL).expect("completes");
        assert_eq!(t.fnv_hash(category::SEMANTIC), hash, "config {cfg:?}");
    }
    // Same configuration twice: even the engine-internal categories
    // (tier, block, sched) replay bit-identically.
    let (_, again) =
        gateway_experiment_traced(16, SystemConfig::default(), category::ALL).expect("completes");
    assert_eq!(again.fnv_hash(category::ALL), baseline.fnv_hash(category::ALL));
}

#[test]
fn error_burst_trace_is_bit_identical_across_the_sweep_with_faults_active() {
    let (report, baseline) =
        error_burst_experiment_traced(8, 11, SystemConfig::default(), category::ALL)
            .expect("completes");
    assert!(report.consumed >= 1, "the burst must exercise real error frames");
    // Fault artifacts ride the trace: error frames (FrameTx with
    // data = false) and at least the stamps that drive them.
    let wire_errors = baseline
        .streams
        .iter()
        .flat_map(|s| s.events.iter())
        .filter(|e| matches!(e.kind, EventKind::FrameTx { data: false, .. }))
        .count();
    assert!(wire_errors >= 1, "error frames must appear in the wire streams");
    let hash = baseline.fnv_hash(category::SEMANTIC);
    for cfg in sweep_configs() {
        let (_, t) = error_burst_experiment_traced(8, 11, cfg, category::ALL).expect("completes");
        assert_eq!(t.fnv_hash(category::SEMANTIC), hash, "config {cfg:?}");
    }
}

#[test]
fn rtos_exec_trace_is_bit_identical_across_the_sweep() {
    let (_, baseline) =
        rtos_exec_experiment_traced(8, SystemConfig::default(), category::ALL).expect("completes");
    let kernel = baseline
        .streams
        .iter()
        .find(|s| s.label == "rtos.kernel")
        .expect("executed kernel stream present");
    assert!(
        kernel.events.iter().any(|e| matches!(e.kind, EventKind::Rtos { .. })),
        "kernel stream carries RTOS events"
    );
    let hash = baseline.fnv_hash(category::SEMANTIC);
    for cfg in sweep_configs() {
        let (_, t) = rtos_exec_experiment_traced(8, cfg, category::ALL).expect("completes");
        assert_eq!(t.fnv_hash(category::SEMANTIC), hash, "config {cfg:?}");
    }
}

#[test]
fn exporters_round_trip_a_real_mission_trace() {
    let (_, trace) =
        gateway_experiment_traced(16, SystemConfig::default(), category::ALL).expect("completes");
    // Chrome trace-event JSON: structurally valid, one process per
    // stream, and every retained event accounted for.
    let json = chrome::export(&trace);
    let summary = chrome::validate(&json).expect("exported chrome trace validates");
    assert_eq!(summary.processes.len(), trace.streams.len());
    assert_eq!(summary.instants + summary.completes, trace.total_events());
    // VCD: the derived waves survive export → parse exactly, and the
    // mission actually produces waves (sleep lines, wire ids).
    let signals = vcd::from_trace(&trace);
    assert!(signals.iter().any(|s| s.name.ends_with(".sleep")));
    assert!(signals.iter().any(|s| s.name.ends_with(".tx_id")));
    let parsed = vcd::parse(&vcd::export("1ns", "mission", &signals)).expect("parses");
    assert_eq!(parsed, signals);
}

#[test]
fn campaign_metrics_merge_identically_at_any_worker_count() {
    // The farm's merged snapshot folds per-run registries in key
    // order; counters add and gauges keep the max, so the fold is
    // associative + commutative and the worker count must not leak
    // into the totals.
    let one = farm_experiment(6, 8, 1).expect("completes");
    let four = farm_experiment(6, 8, 4).expect("completes");
    assert_eq!(one.digest, four.digest, "outcome digest is worker-count-independent");
    assert_eq!(one.metrics, four.metrics, "merged metrics are worker-count-independent");
    // The snapshot carries real campaign totals.
    let deliveries: u64 = one
        .metrics
        .entries
        .iter()
        .filter(|(n, _)| n.starts_with("wire.") && n.ends_with(".deliveries"))
        .filter_map(|(n, _)| one.metrics.counter(n))
        .sum();
    assert!(deliveries > 0, "campaign snapshot records wire deliveries");
}
