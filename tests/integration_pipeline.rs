//! Cross-crate pipeline integration: every workload kernel, compiled for
//! every encoding, run on the matching core, must agree with the golden
//! TIR interpreter — the full toolchain exercised end to end.

use alia_core::prelude::*;
use alia_core::run_kernel;
use codegen::{CodegenOptions, ConstStrategy};
use isa::IsaMode;
use sim::MachineConfig;
use workloads::all_kernels;

fn config_for(mode: IsaMode) -> MachineConfig {
    match mode {
        IsaMode::T2 => MachineConfig::m3_like(),
        _ => MachineConfig::arm7_like(mode),
    }
}

#[test]
fn every_kernel_on_every_core_matches_the_interpreter() {
    let opts = CodegenOptions::default();
    for kernel in all_kernels() {
        for mode in IsaMode::ALL {
            // run_kernel cross-checks the checksum against the interpreter
            // internally and errors on mismatch.
            let run = run_kernel(&kernel, config_for(mode), &opts, 123, 32)
                .unwrap_or_else(|e| panic!("{} on {mode}: {e}", kernel.name));
            assert!(run.cycles > 0);
            assert!(run.code_size > 0);
        }
    }
}

#[test]
fn kernels_also_run_on_the_high_end_core() {
    let opts = CodegenOptions::default();
    for kernel in all_kernels() {
        let run = run_kernel(&kernel, MachineConfig::high_end_like(), &opts, 7, 16)
            .unwrap_or_else(|e| panic!("{} on high-end: {e}", kernel.name));
        assert!(run.cycles > 0, "{}", kernel.name);
    }
}

#[test]
fn literal_pool_strategy_is_equivalent_on_t2() {
    let opts =
        CodegenOptions { const_strategy: ConstStrategy::LiteralPool, ..CodegenOptions::default() };
    for kernel in all_kernels() {
        let run = run_kernel(&kernel, MachineConfig::m3_like(), &opts, 55, 16)
            .unwrap_or_else(|e| panic!("{} with pools: {e}", kernel.name));
        assert_eq!(run.checksum, kernel.run_interp(55, 16), "{}", kernel.name);
    }
}

#[test]
fn code_size_ordering_holds_across_the_suite() {
    let opts = CodegenOptions::default();
    for kernel in workloads::autoindy() {
        let a32 = alia_core::compile_kernel(&kernel, IsaMode::A32, &opts).unwrap().code_size();
        let t16 = alia_core::compile_kernel(&kernel, IsaMode::T16, &opts).unwrap().code_size();
        let t2 = alia_core::compile_kernel(&kernel, IsaMode::T2, &opts).unwrap().code_size();
        assert!(t16 < a32, "{}: T16 {t16} vs A32 {a32}", kernel.name);
        assert!(t2 < a32, "{}: T2 {t2} vs A32 {a32}", kernel.name);
    }
}

#[test]
fn determinism_across_runs() {
    let opts = CodegenOptions::default();
    let kernels = all_kernels();
    let k = kernels.iter().find(|k| k.name == "canrdr").unwrap();
    let a = run_kernel(k, MachineConfig::m3_like(), &opts, 9, 24).unwrap();
    let b = run_kernel(k, MachineConfig::m3_like(), &opts, 9, 24).unwrap();
    assert_eq!(a, b, "simulation must be fully deterministic");
}

#[test]
fn assembler_output_decodes_back() {
    // The assembler, encoder and decoder agree across a program that uses
    // every instruction class the examples rely on.
    let src = "start:
        movw r0, #0x1234
        movt r0, #0x2000
        mov r1, #7
        sdiv r2, r0, r1
        mul r3, r2, r1
        sub r4, r0, r3
        cbz r4, done
        add r4, r4, #1
        done:
        push {r4, r5, lr}
        pop {r4, r5, pc}";
    let out = isa::Assembler::new(IsaMode::T2).assemble(src).expect("assembles");
    let mut pc = 0usize;
    let mut count = 0;
    while pc < out.bytes.len() {
        let (_, len) = isa::decode(&out.bytes[pc..], IsaMode::T2)
            .unwrap_or_else(|e| panic!("decode at {pc}: {e}"));
        pc += len as usize;
        count += 1;
    }
    assert_eq!(count, 10);
}
