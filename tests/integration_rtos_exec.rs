//! Executed-RTOS integration: the preemptive guest kernel inside the
//! gateway network must be bit-identical across every scheduler knob,
//! and its standalone (bare-machine) missions must replay exactly.

use alia_core::experiments::{
    mission_tasks, rtos_exec_checksum, rtos_exec_experiment, rtos_exec_experiment_with,
};
use alia_core::prelude::rtos::exec::{build_guest_rtos, ExecStats, GuestRtosConfig, GuestTask};
use alia_core::prelude::sim::SystemConfig;

#[test]
fn preemption_traces_are_bit_identical_across_schedules() {
    // The RTOS ECU's cycle-stamped preemption trace (hash, spans,
    // responses), the sink checksum and every node clock must not move
    // across quantum sizes, node service orders, the idle-stretch and
    // 1/2/4/8 worker threads.
    let baseline = rtos_exec_experiment(8).expect("completes");
    assert_eq!(baseline.checksum, rtos_exec_checksum(8, baseline.tx_frames));
    assert!(baseline.stats.trace_len > 0);
    assert!(baseline.preemptions() > 0, "sweep must exercise preemption");
    assert_eq!(baseline.node_cycles.len(), 6);
    for (quantum, rotate, stretch, threads) in [
        (None, true, true, 1),
        (None, false, false, 2),
        (Some(41), false, true, 4),
        (Some(97), true, false, 8),
        (Some(131), false, true, 2),
        (Some(1_000_000), false, true, 8), // clamped to the min wire lookahead
    ] {
        let run = rtos_exec_experiment_with(
            8,
            SystemConfig { quantum, rotate_order: rotate, idle_stretch: stretch, threads },
        )
        .expect("completes");
        let what = format!("q={quantum:?} r={rotate} s={stretch} t={threads}");
        assert_eq!(run.stats, baseline.stats, "{what}: preemption trace moved");
        assert_eq!(run.bounds, baseline.bounds, "{what}: bound reports moved");
        assert_eq!(run.checksum, baseline.checksum, "{what}: sink checksum");
        assert_eq!(run.node_cycles, baseline.node_cycles, "{what}: node clocks");
        assert_eq!(run.frames_delivered, baseline.frames_delivered, "{what}");
        assert!(run.quanta > 0, "{what}: scheduler really quantized");
    }
}

#[test]
fn executed_bounds_hold_for_every_task_in_the_network() {
    let e = rtos_exec_experiment(8).expect("completes");
    assert!(e.stats.tasks.len() >= 3, "at least three preemptable tasks");
    for b in &e.bounds {
        assert!(
            b.margin >= 0,
            "{}: executed {} exceeds analytic bound {}",
            b.name,
            b.executed,
            b.bound
        );
    }
    for w in &e.wires {
        assert!(w.within_bounds(), "wire {}: {:?}", w.name, w.worst_latencies);
    }
}

#[test]
fn standalone_missions_replay_bit_identically() {
    // The same task set lowered twice onto bare machines (no network,
    // no system scheduler) produces byte-identical traces — and the
    // mission tasks E13 uses are themselves replayable without the
    // CAN-transmitting member.
    let tasks: Vec<GuestTask> =
        mission_tasks().into_iter().filter(|t| t.tx_id.is_none()).collect();
    let config = GuestRtosConfig { tick_cycles: 2_000, total_ticks: 30, can: None };
    let run = |tasks: &[GuestTask]| {
        let mut g = build_guest_rtos(tasks, &config).expect("build");
        g.machine.run(1_000_000);
        let stats = ExecStats::from_machine(&g.machine, &g.layout).expect("trace");
        (g.machine.mmio().trace.clone(), stats)
    };
    let (trace_a, stats_a) = run(&tasks);
    let (trace_b, stats_b) = run(&tasks);
    assert_eq!(trace_a, trace_b, "raw trace words diverged");
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.tasks.iter().all(|t| t.completions > 0));
}
