//! RTOS / network integration: the analytic tools (response-time
//! analysis, CAN RTA, isolation planning) against the executable models
//! (discrete-event kernel, bus simulator, MPU-enforcing machine).

use alia_core::prelude::*;
use can::{can_response_times, CanBus, CanFrame, CanId, CanMessage};
use rtos::{
    plan_isolation, response_time_analysis, AlarmSpec, AnalysisTask, Kernel, TaskSpec,
};
use sim::{Machine, MemFault, MpuKind, Perms, StopReason, SRAM_BASE};

#[test]
fn rta_bounds_hold_in_simulation_across_many_sets() {
    // Several task sets: the simulated worst response never exceeds the
    // analytic bound, and the synchronous-release bound is tight for the
    // lowest-priority task.
    let sets: Vec<Vec<AnalysisTask>> = vec![
        vec![
            AnalysisTask::new(3, 1, 5),
            AnalysisTask::new(2, 2, 12),
            AnalysisTask::new(1, 3, 30),
        ],
        vec![
            AnalysisTask::new(4, 2, 10),
            AnalysisTask::new(3, 3, 15),
            AnalysisTask::new(2, 5, 40),
            AnalysisTask::new(1, 7, 120),
        ],
    ];
    for set in sets {
        let rta = response_time_analysis(&set);
        assert!(rta.iter().all(|r| r.schedulable));
        let mut k = Kernel::new();
        let ids: Vec<_> = set
            .iter()
            .enumerate()
            .map(|(i, t)| {
                k.add_task(TaskSpec::simple(format!("t{i}"), t.priority, t.wcet)
                    .with_deadline(t.deadline))
            })
            .collect();
        for (id, t) in ids.iter().zip(&set) {
            k.add_alarm(AlarmSpec { task: *id, offset: 0, period: t.period });
        }
        k.run(20_000);
        for (i, id) in ids.iter().enumerate() {
            let sim = k.task_stats(*id).worst_response;
            let bound = rta[i].response.unwrap();
            assert!(sim <= bound, "task {i}: sim {sim} > bound {bound}");
        }
        let last = ids.len() - 1;
        assert_eq!(
            k.task_stats(ids[last]).worst_response,
            rta[last].response.unwrap(),
            "critical-instant bound must be tight for the lowest priority"
        );
    }
}

#[test]
fn can_rta_bounds_hold_in_simulation() {
    let set = [
        CanMessage { id: 0x08, dlc: 2, extended: false, period: 1500, jitter: 0, deadline: 1500 },
        CanMessage { id: 0x10, dlc: 8, extended: false, period: 2500, jitter: 0, deadline: 2500 },
        CanMessage { id: 0x18, dlc: 4, extended: false, period: 4000, jitter: 0, deadline: 4000 },
        CanMessage { id: 0x20, dlc: 8, extended: false, period: 8000, jitter: 0, deadline: 8000 },
    ];
    let rta = can_response_times(&set);
    assert!(rta.iter().all(|r| r.schedulable));
    let mut bus = CanBus::new();
    for (node, s) in set.iter().enumerate() {
        // Worst-stuffing payload (all zeros).
        let frame = CanFrame::new(CanId::Standard(s.id as u16), &vec![0u8; s.dlc as usize]);
        let mut t = 0;
        while t < 400_000 {
            bus.enqueue(t, node, frame);
            t += s.period;
        }
    }
    bus.run(400_000);
    for (i, s) in set.iter().enumerate() {
        let worst = bus.worst_latency(CanId::Standard(s.id as u16)).expect("delivered");
        let bound = rta[i].response.unwrap();
        assert!(worst <= bound, "msg {i}: sim {worst} > bound {bound}");
    }
}

#[test]
fn isolation_plan_is_enforced_by_the_machine() {
    // Program the fine-grain MPU per an isolation plan, then run code
    // that stays inside its region (ok) and code that strays (faults).
    let tasks = [
        rtos::TaskFootprint::new("window", 128),
        rtos::TaskFootprint::new("mirror", 96),
    ];
    let plan = plan_isolation(MpuKind::FineGrain, &tasks, SRAM_BASE + 0x1000);
    assert_eq!(plan.isolated_tasks, 2);

    let build = |touch_offset: u32| -> Machine {
        let src = format!(
            "movw r0, #0x1000
             movt r0, #0x2000
             mov r1, #0x5A
             str r1, [r0, #{touch_offset}]
             bkpt #0"
        );
        let prog = isa::Assembler::new(isa::IsaMode::T2).assemble(&src).expect("asm");
        let mut m = Machine::high_end_like();
        m.load_flash(0x100, &prog.bytes);
        m.set_pc(0x100);
        m.cpu.set_sp(SRAM_BASE + 0x8_0000);
        {
            let mpu = m.mpu.as_mut().expect("mpu fitted");
            mpu.background_allowed = false;
            mpu.add_region(0, 0x1000, Perms::RX).unwrap(); // code
            mpu.add_region(SRAM_BASE + 0x7_0000, 0x1_0000, Perms::RW).unwrap(); // stack
            // The window module's own region only.
            mpu.add_region(SRAM_BASE + 0x1000, 128, Perms::RW).unwrap();
        }
        m
    };

    // Inside the window region: runs to completion.
    let mut ok = build(0x10);
    assert_eq!(ok.run(100_000).reason, StopReason::Bkpt(0));
    // Straying into the mirror module's memory: MPU violation.
    let mut bad = build(0x90);
    match bad.run(100_000).reason {
        StopReason::Fault(MemFault::MpuViolation { write: true, .. }) => {}
        other => panic!("expected an MPU violation, got {other:?}"),
    }
}

#[test]
fn osek_kernel_with_shared_resource_and_events_runs_clean() {
    use rtos::{Action, ResourceId};
    let mut k = Kernel::new();
    let r = ResourceId(0);
    let logger = k.add_task(
        TaskSpec::simple("logger", 2, 0)
            .extended_task()
            .with_body(vec![Action::WaitEvent(1), Action::Compute(3)]),
    );
    let sensor = k.add_task(
        TaskSpec::simple("sensor", 5, 0).with_body(vec![
            Action::GetResource(r),
            Action::Compute(2),
            Action::ReleaseResource(r),
            Action::SetEvent(logger, 1),
        ]),
    );
    let control = k.add_task(
        TaskSpec::simple("control", 8, 0).with_body(vec![
            Action::GetResource(r),
            Action::Compute(1),
            Action::ReleaseResource(r),
        ]),
    );
    k.add_resource("adc");
    k.add_alarm(AlarmSpec { task: logger, offset: 0, period: 50 });
    k.add_alarm(AlarmSpec { task: sensor, offset: 0, period: 50 });
    k.add_alarm(AlarmSpec { task: control, offset: 1, period: 25 });
    k.run(5_000);
    assert_eq!(k.task_stats(sensor).completed, 100);
    assert_eq!(k.task_stats(control).completed, 200);
    assert_eq!(k.task_stats(logger).completed, 100);
    assert_eq!(k.required_conformance(), rtos::ConformanceClass::Ecc1);
}
